"""Simulated network substrate.

Provides per-(src, dst) channels with configurable latency, loss,
partitions, reordering, and duplication, under two transport modes:
UDP-like fire-and-forget (the default, and the paper's transport) and a
reliable mode (acks, retransmission with exponential backoff, dedup,
reorder buffering) that presents exactly-once FIFO delivery to the
application.  FIFO delivery matters: the paper's Chandy-Lamport
snapshot implementation assumes in-order channels, and both modes
guarantee it — UDP by clamping delivery times monotone per channel,
reliable by sequence numbers.
"""

from repro.net.address import Address, make_address
from repro.net.channel import Channel, ReliableChannel
from repro.net.network import Message, Network, NetworkStats, ReliableConfig
from repro.net.topology import (
    AsymmetricLatency,
    ConstantLatency,
    JitteredLatency,
    LatencyModel,
    UniformLatency,
)

__all__ = [
    "Address",
    "make_address",
    "Channel",
    "ReliableChannel",
    "Network",
    "NetworkStats",
    "ReliableConfig",
    "Message",
    "LatencyModel",
    "UniformLatency",
    "ConstantLatency",
    "JitteredLatency",
    "AsymmetricLatency",
]
