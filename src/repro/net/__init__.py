"""Simulated network substrate.

Provides per-(src, dst) FIFO channels with configurable latency, loss, and
partitions.  FIFO delivery matters: the paper's Chandy-Lamport snapshot
implementation assumes in-order channels, and this package guarantees it
even when latency is randomized (delivery times are made monotone per
channel).
"""

from repro.net.address import Address, make_address
from repro.net.channel import Channel
from repro.net.network import Network, Message
from repro.net.topology import LatencyModel, UniformLatency, ConstantLatency

__all__ = [
    "Address",
    "make_address",
    "Channel",
    "Network",
    "Message",
    "LatencyModel",
    "UniformLatency",
    "ConstantLatency",
]
