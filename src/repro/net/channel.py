"""A unidirectional FIFO channel between two addresses.

The channel tracks the latest scheduled delivery time and clamps each new
message's delivery to be no earlier, so even a randomized latency model
cannot reorder messages.  This is the property the Chandy-Lamport
snapshot rules rely on.
"""

from __future__ import annotations

from repro.net.address import Address


class Channel:
    """Delivery-time bookkeeping for one (src, dst) pair."""

    def __init__(self, src: Address, dst: Address) -> None:
        self.src = src
        self.dst = dst
        self._last_delivery = 0.0
        self.messages_sent = 0

    def next_delivery_time(self, now: float, delay: float) -> float:
        """Compute (and record) the FIFO-respecting delivery time."""
        when = max(now + delay, self._last_delivery)
        self._last_delivery = when
        self.messages_sent += 1
        return when
