"""Per-(src, dst) channel state for both transport modes.

:class:`Channel` is the UDP-mode bookkeeping: it tracks the latest
scheduled delivery time and clamps each new message's delivery to be no
earlier, so even a randomized latency model cannot reorder messages.
This is the property the Chandy-Lamport snapshot rules rely on.

:class:`ReliableChannel` extends it with the state of the reliable
transport mode: a sender window of unacknowledged sequence numbers and
a receiver-side reorder buffer that restores per-channel FIFO,
exactly-once delivery on top of a fabric that may drop, duplicate, and
reorder individual frames.  The ack/retransmit driving logic lives in
:class:`repro.net.network.Network` (which owns the clock and the random
streams); this module owns the pure state transitions so they can be
unit-tested without a simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.net.address import Address


class Channel:
    """Delivery-time bookkeeping for one (src, dst) pair."""

    def __init__(self, src: Address, dst: Address) -> None:
        self.src = src
        self.dst = dst
        self._last_delivery = 0.0
        self.messages_sent = 0

    def next_delivery_time(
        self, now: float, delay: float, fifo: bool = True
    ) -> float:
        """Compute (and record) the FIFO-respecting delivery time.

        With ``fifo=False`` the monotone clamp is bypassed (used by the
        reorder fault knob and by reliable-mode frames, whose ordering
        is restored by sequence numbers instead).
        """
        when = now + delay
        if fifo:
            when = max(when, self._last_delivery)
            self._last_delivery = when
        self.messages_sent += 1
        return when

    def obs_state(self) -> dict:
        """Snapshot for the telemetry plane's per-channel gauges."""
        return {"messages_sent": self.messages_sent}


@dataclass
class PendingSend:
    """One unacknowledged reliable-mode message at the sender."""

    seq: int
    message: Any  # repro.net.network.Message
    attempts: int = 0
    timer: Any = None  # ScheduledEvent for the next retransmit


class ReliableChannel(Channel):
    """Sender window + receiver reorder buffer for one (src, dst) pair.

    Sequence numbers are per-channel and start at 1.  The receiver
    delivers strictly in sequence order; frames arriving ahead of a gap
    are held in ``held`` until the gap fills (retransmission), the
    sender's advertised base moves past it (the missing send was
    abandoned — see :meth:`advance_base`), or the hold deadline passes,
    so a permanently lost message cannot deadlock the channel.
    """

    def __init__(self, src: Address, dst: Address) -> None:
        super().__init__(src, dst)
        # Sender side.  ``backlog`` holds messages waiting for window
        # space when ``ReliableConfig.window`` is set (otherwise unused).
        self.next_seq = 1
        self.pending: Dict[int, PendingSend] = {}
        self.backlog: deque = deque()
        # Receiver side.
        self.next_deliver = 1
        self.held: Dict[int, Any] = {}
        self.seen: Set[int] = set()
        self.gap_timer: Any = None  # ScheduledEvent for gap skip

    # ------------------------------------------------------------------
    # Sender transitions

    def open_send(self, message: Any) -> PendingSend:
        """Allocate the next sequence number and track the send."""
        seq = self.next_seq
        self.next_seq += 1
        entry = PendingSend(seq, message)
        self.pending[seq] = entry
        return entry

    @property
    def base(self) -> int:
        """The lowest unresolved sequence number (``next_seq`` when the
        window is empty).  Stamped onto every outgoing data frame so the
        receiver can skip gaps the sender has already given up on."""
        return min(self.pending) if self.pending else self.next_seq

    def ack(self, seq: int) -> Optional[PendingSend]:
        """Acknowledge ``seq``; returns the retired entry (None if the
        ack is stale — already acked or given up on)."""
        entry = self.pending.pop(seq, None)
        if entry is not None and entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        return entry

    def give_up(self, seq: int) -> Optional[PendingSend]:
        """Abandon retransmission of ``seq`` (max retries exhausted)."""
        return self.ack(seq)

    # ------------------------------------------------------------------
    # Receiver transitions

    def accept(self, seq: int, message: Any) -> List[Any]:
        """Record an arriving data frame; return messages now deliverable
        in FIFO order (empty for duplicates and out-of-order arrivals).
        """
        if seq in self.seen or seq < self.next_deliver:
            return []  # duplicate (retransmit or fabric duplication)
        self.seen.add(seq)
        self.held[seq] = message
        return self._drain()

    def advance_base(self, base: int) -> List[Any]:
        """Advance past sequence numbers the sender has resolved.

        Data frames carry the sender's *base* — its lowest still-pending
        sequence number at transmit time (Go-Back-N style).  Everything
        below it was either acked or abandoned, so the receiver must not
        wait for it: held frames below the base are delivered in order,
        missing ones are dead gaps skipped immediately.  Without this, a
        channel idle across a give-up period would stall its next
        message behind the dead gap for the whole hold horizon.
        """
        ready: List[Any] = []
        while self.next_deliver < base:
            if self.next_deliver in self.held:
                ready.append(self.held.pop(self.next_deliver))
                self.seen.discard(self.next_deliver)
            self.next_deliver += 1
        ready.extend(self._drain())
        return ready

    def skip_gap(self) -> List[Any]:
        """Advance past a persistent gap (the sender gave up on it)."""
        if not self.held:
            return []
        self.next_deliver = min(self.held)
        return self._drain()

    def _drain(self) -> List[Any]:
        ready: List[Any] = []
        while self.next_deliver in self.held:
            ready.append(self.held.pop(self.next_deliver))
            self.seen.discard(self.next_deliver)
            self.next_deliver += 1
        return ready

    @property
    def gapped(self) -> bool:
        """True while frames are held behind an undelivered gap."""
        return bool(self.held)

    def obs_state(self) -> dict:
        """Snapshot for the telemetry plane's per-channel gauges:
        sender window depth and receiver head-of-line state."""
        return {
            "messages_sent": self.messages_sent,
            "pending": len(self.pending),
            "backlog": len(self.backlog),
            "held": len(self.held),
            "next_seq": self.next_seq,
            "next_deliver": self.next_deliver,
        }
