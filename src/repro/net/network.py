"""The simulated network connecting virtual P2 nodes.

Nodes register a receive callback under their address.  ``send`` routes
through one of two transport modes:

- **udp** (default) — fire-and-forget over a per-(src, dst) FIFO
  channel, exactly the paper's transport: loss, partitions, and crashes
  silently drop messages and the sender cannot tell.
- **reliable** — per-message acks, retransmission with exponential
  backoff + jitter, receiver-side dedup and reorder buffering.  The
  application sees exactly-once, per-channel FIFO delivery even when
  the fabric drops, duplicates, and reorders frames; a message that
  exhausts its retries becomes a *sender-visible* drop
  (``drop_reasons["retries_exhausted"]`` plus the ``on_send_failure``
  callbacks).

Fault knobs beyond loss/partition/crash: ``reorder_rate`` (a message
skips the FIFO clamp and takes extra random delay), ``duplicate_rate``
(the fabric delivers a second copy), and per-directed-link loss rates
layered over the global one.

The network keeps global and per-node message counters — the "Tx
messages" series of the paper's Figures 6 and 7 — plus a per-reason
drop breakdown and retransmit counters the fault-campaign verdicts are
built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.net.address import Address
from repro.net.channel import Channel, PendingSend, ReliableChannel
from repro.net.topology import ConstantLatency, LatencyModel
from repro.sim.simulator import Simulator

#: Drop-reason keys used in :attr:`NetworkStats.drop_reasons`.
DROP_LOSS = "loss"
DROP_PARTITION = "partition"
DROP_DOWN = "down"
DROP_NO_RECEIVER = "no_receiver"
DROP_RETRIES = "retries_exhausted"
DROP_BACKLOG = "send_backlog_full"


class Message:
    """An in-flight network message (a marshaled tuple payload).

    ``decoded`` caches the unmarshaled payload when a receiver-side
    admission gate (overload protection) had to inspect the relation
    name before acking — the node's ``receive`` then reuses it instead
    of decoding twice, and its presence signals the frame was already
    admitted by the reliable gate.

    A plain __slots__ class rather than a dataclass: one Message is
    built per send, on the hot path.
    """

    __slots__ = ("src", "dst", "payload", "sent_at", "size", "decoded")

    def __init__(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        sent_at: float,
        size: int = 0,
        decoded: Any = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_at = sent_at
        self.size = size
        self.decoded = decoded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, "
            f"sent_at={self.sent_at!r}, size={self.size!r})"
        )


@dataclass
class ReliableConfig:
    """Tuning for the reliable transport mode.

    The retransmit timeout for attempt *k* (0-based) is
    ``rto * backoff ** k`` plus a uniform jitter in ``[0, jitter)``
    drawn from the ``net.rto`` stream, so the backoff sequence is
    deterministic under the master seed.  ``max_retries`` counts
    retransmissions (so a message is transmitted at most
    ``max_retries + 1`` times) before the sender gives up.
    ``hold_timeout`` bounds receiver-side head-of-line blocking: a
    frame held behind a gap longer than this has its gap skipped
    (the sender must have given up on it).  ``None`` derives it from
    the full retransmit horizon.

    The three ``None``-default capacities bound the transport's own
    queues (overload protection; ``None`` keeps them unbounded, the
    pre-overload behaviour): ``window`` caps in-flight unacked sends
    per channel, ``backlog`` caps the sender-side queue of messages
    waiting for window space (overflow is a sender-visible drop like
    retry exhaustion), and ``reorder_cap`` caps the receiver's held
    buffer (an over-cap out-of-order frame is not acked, so the
    sender's retransmit redelivers it after the gap drains).
    """

    rto: float = 0.25
    backoff: float = 2.0
    max_retries: int = 6
    jitter: float = 0.05
    hold_timeout: Optional[float] = None
    window: Optional[int] = None
    backlog: Optional[int] = None
    reorder_cap: Optional[int] = None

    def timeout_for(self, attempt: int) -> float:
        return self.rto * (self.backoff ** attempt)

    def horizon(self) -> float:
        """Upper bound on the time a sender keeps retrying a message."""
        if self.hold_timeout is not None:
            return self.hold_timeout
        total = sum(
            self.timeout_for(k) for k in range(self.max_retries + 1)
        )
        return total + self.jitter * (self.max_retries + 1) + 1.0


@dataclass
class NetworkStats:
    """Counters the benchmark harness and campaign verdicts sample.

    ``messages_sent``/``per_node_sent`` count application sends (the
    paper's Tx series); retransmissions and acks are transport
    overhead, counted separately.  Every dropped message increments
    ``messages_dropped`` *and* one ``drop_reasons`` bucket, so the
    breakdown always sums to the total and a campaign verdict never
    has to guess why a message vanished.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    messages_retransmitted: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    acks_dropped: int = 0
    send_failures: int = 0
    gap_skips: int = 0
    busy_nacks: int = 0
    backlogged: int = 0
    held_overflow: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    per_node_sent: Dict[Address, int] = field(default_factory=dict)
    per_node_received: Dict[Address, int] = field(default_factory=dict)
    per_node_failed: Dict[Address, int] = field(default_factory=dict)

    def count_drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


class Network:
    """Message fabric with two transport modes and rich fault injection."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        transport: str = "udp",
        reliable: Optional[ReliableConfig] = None,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_window: float = 0.05,
        obs=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {loss_rate}")
        if transport not in ("udp", "reliable"):
            raise NetworkError(f"unknown transport mode: {transport!r}")
        for name, rate in (
            ("reorder", reorder_rate),
            ("duplicate", duplicate_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise NetworkError(
                    f"{name} rate must be in [0, 1): {rate}"
                )
        self._sim = sim
        self._latency = latency if latency is not None else ConstantLatency(0.01)
        self._loss_rate = loss_rate
        self._link_loss: Dict[Tuple[Address, Address], float] = {}
        self.transport = transport
        self.reliable_config = reliable if reliable is not None else ReliableConfig()
        self._reorder_rate = reorder_rate
        self._duplicate_rate = duplicate_rate
        self._reorder_window = reorder_window
        self._receivers: Dict[Address, Callable[[Message], None]] = {}
        self._admission: Dict[Address, Callable[[Message], bool]] = {}
        self._channels: Dict[Tuple[Address, Address], Channel] = {}
        self._blocked: Set[frozenset] = set()
        self._down: Set[Address] = set()
        # Tick mode (docs/SCALE.md): fabric randomness moves to
        # per-sender streams so each sender's draw sequence depends only
        # on its own processing order (kernel-independent), and message
        # deliveries get priority -1 so a tick's deliveries sort before
        # its timers under both kernels.  Legacy mode keeps the global
        # streams and priority 0 — bit-identical to the pre-batch fabric.
        self._det = sim.det_order
        self._delivery_priority = -1 if self._det else 0
        # Batch fabric (enabled alongside the batch kernel): one
        # simulator event per (delivery tick, destination) carrying the
        # whole message list, instead of one event per message.
        self._batch_fabric = False
        self._batch_receivers: Dict[
            Address, Callable[[List[Message]], None]
        ] = {}
        self._pending_batches: Dict[Tuple[float, Address], List[Message]] = {}
        self.stats = NetworkStats()
        #: Telemetry plane (``repro.obs.telemetry.Telemetry``) or None;
        #: None keeps every fast path free of telemetry calls.
        self.obs = obs
        #: Called with the abandoned :class:`Message` when the reliable
        #: transport exhausts its retries — the sender-visible drop.
        self.on_send_failure: List[Callable[[Message], None]] = []

    def _stream(self, name: str, entity: Address):
        """A fabric random stream: per-entity in tick mode, global in
        legacy mode (see the constructor comment)."""
        if self._det:
            return self._sim.random.stream(f"{name}.{entity}")
        return self._sim.random.stream(name)

    # ------------------------------------------------------------------
    # Registration

    def attach(self, address: Address, receiver: Callable[[Message], None]) -> None:
        """Register a node's receive callback under its address."""
        if address in self._receivers:
            raise NetworkError(f"address already attached: {address}")
        self._receivers[address] = receiver

    def enable_batch_fabric(self) -> None:
        """Coalesce UDP deliveries into per-(tick, destination) batches.

        Requires tick mode; the batch kernel's group executors consume
        the batched events.  Reliable-transport frames keep per-message
        events (their ack/retransmit machinery is per-frame) — they
        still batch at the receiving node's pump.
        """
        if not self._det:
            raise NetworkError("the batch fabric requires tick mode")
        self._batch_fabric = True
        self._latency.use_per_source_streams()

    @property
    def batch_fabric(self) -> bool:
        """True when UDP deliveries coalesce per (tick, destination)."""
        return self._batch_fabric

    def attach_batch(
        self,
        address: Address,
        receiver: Callable[[List[Message]], None],
    ) -> None:
        """Register a batched receive callback (fabric mode): called
        once per tick with every message arriving at ``address``."""
        self._batch_receivers[address] = receiver

    def set_admission(
        self, address: Address, gate: Callable[[Message], bool]
    ) -> None:
        """Register a receiver-side admission gate for reliable frames.

        The gate is consulted before a non-duplicate data frame to
        ``address`` is acknowledged; returning False withholds the ack
        and sends an explicit BUSY nack, so the sender keeps the
        message and retries under its normal backoff (receiver
        pushback — overload protection's backpressure hook).
        """
        self._admission[address] = gate

    def detach(self, address: Address) -> None:
        """Remove a node from the network (future messages to it drop)."""
        self._receivers.pop(address, None)
        self._admission.pop(address, None)
        self._batch_receivers.pop(address, None)

    def is_attached(self, address: Address) -> bool:
        return address in self._receivers

    @property
    def addresses(self) -> list:
        return sorted(self._receivers)

    # ------------------------------------------------------------------
    # Fault injection

    def partition(self, a: Address, b: Address) -> None:
        """Block traffic in both directions between ``a`` and ``b``."""
        self._blocked.add(frozenset((a, b)))

    def heal(self, a: Address, b: Address) -> None:
        """Remove a partition between ``a`` and ``b``."""
        self._blocked.discard(frozenset((a, b)))

    def take_down(self, address: Address) -> None:
        """Silently drop all traffic to and from ``address``."""
        self._down.add(address)

    def bring_up(self, address: Address) -> None:
        self._down.discard(address)

    def set_loss_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {rate}")
        self._loss_rate = rate

    def set_latency_model(self, model: LatencyModel) -> None:
        """Swap the latency model (e.g. for a jittered-latency fault
        window); affects messages sent from now on."""
        if self._batch_fabric:
            model.use_per_source_streams()
        self._latency = model

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    def set_link_loss(self, src: Address, dst: Address, rate: float) -> None:
        """Set a loss rate for the directed link src → dst (overrides the
        global rate for that link; 0 restores the global rate)."""
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {rate}")
        if rate == 0.0:
            self._link_loss.pop((src, dst), None)
        else:
            self._link_loss[(src, dst)] = rate

    def set_reorder_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"reorder rate must be in [0, 1): {rate}")
        self._reorder_rate = rate

    def set_duplicate_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"duplicate rate must be in [0, 1): {rate}")
        self._duplicate_rate = rate

    # ------------------------------------------------------------------
    # Sending

    def send(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        size: int = 0,
        decoded: Any = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        UDP mode: messages to unknown/down/partitioned destinations are
        counted as sent and dropped — the sender cannot tell.  Reliable
        mode: the message is tracked until acked or retries run out;
        only exhaustion makes it a (sender-visible) drop.

        ``decoded`` is the already-unmarshaled payload dict (zero-copy
        fast path): it rides the message only over the batch fabric,
        where the batched receiver knows it is not the reliable gate's
        preadmission marker.
        """
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        self.stats.per_node_sent[src] = self.stats.per_node_sent.get(src, 0) + 1

        message = Message(src, dst, payload, self._sim.now, size)
        if self.transport == "reliable":
            channel = self._reliable_channel(src, dst)
            config = self.reliable_config
            if (
                config.window is not None
                and len(channel.pending) >= config.window
            ):
                if (
                    config.backlog is not None
                    and len(channel.backlog) >= config.backlog
                ):
                    # Sender-visible overflow, surfaced exactly like
                    # retry exhaustion: drop + failure callbacks.
                    self._drop(DROP_BACKLOG, src, dst)
                    self._count_send_failure(message)
                    return
                channel.backlog.append(message)
                self.stats.backlogged += 1
                return
            entry = channel.open_send(message)
            self._transmit(channel, entry, first=True)
            return
        if self._down or self._blocked or self._loss_rate > 0.0 or (
            self._link_loss
        ):
            reason = self._drop_reason(src, dst)
            if reason is not None:
                self._drop(reason, src, dst)
                return
        if self._batch_fabric and decoded is not None:
            message.decoded = decoded
        channel = self._channel(src, dst)
        self._schedule_udp(channel, message)
        if self._duplicate_rate > 0.0 and (
            self._stream("net.dup", src).random() < self._duplicate_rate
        ):
            self.stats.messages_duplicated += 1
            self._schedule_udp(channel, message, force_no_fifo=True)

    def _schedule_udp(
        self, channel: Channel, message: Message, force_no_fifo: bool = False
    ) -> None:
        delay = self._latency.delay(message.src, message.dst)
        fifo = not force_no_fifo
        if self._reorder_rate > 0.0 and (
            self._stream("net.reorder", message.src).random()
            < self._reorder_rate
        ):
            self.stats.messages_reordered += 1
            delay += self._stream("net.reorder", message.src).uniform(
                0, self._reorder_window
            )
            fifo = False
        when = channel.next_delivery_time(self._sim.now, delay, fifo=fifo)
        if self._batch_fabric:
            # One event per (arrival tick, destination): the first
            # message to the pair schedules the event, later ones append
            # to the in-flight batch.  Append order equals the canonical
            # per-message delivery order — senders execute in canonical
            # order and each sender's sends are its own origin-seq order.
            key = (when, message.dst)
            batch = self._pending_batches.get(key)
            if batch is not None:
                batch.append(message)
                return
            self._pending_batches[key] = [message]
            self._sim.schedule_at(
                when,
                lambda k=key: self._deliver_batch(k),
                priority=self._delivery_priority,
                group=message.dst,
            )
            return
        self._sim.schedule_at(
            when,
            lambda: self._deliver(message),
            priority=self._delivery_priority,
            group=message.dst,
        )

    def _drop(self, reason: str, src: Address, dst: Address) -> None:
        """Account one dropped message (stats bucket + telemetry event)."""
        self.stats.count_drop(reason)
        if self.obs is not None:
            self.obs.event("net.drop", reason=reason, link=f"{src}->{dst}")

    def _drop_reason(self, src: Address, dst: Address) -> Optional[str]:
        """Why a transmission attempt would fail right now (None = ok)."""
        down = self._down
        if down and (src in down or dst in down):
            return DROP_DOWN
        if self._blocked and frozenset((src, dst)) in self._blocked:
            return DROP_PARTITION
        rate = self._link_loss.get((src, dst), self._loss_rate)
        if rate > 0.0:
            if self._stream("net.loss", src).random() < rate:
                return DROP_LOSS
        return None

    def _channel(self, src: Address, dst: Address) -> Channel:
        key = (src, dst)
        if key not in self._channels:
            self._channels[key] = Channel(src, dst)
        return self._channels[key]

    def _reliable_channel(self, src: Address, dst: Address) -> ReliableChannel:
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            channel = ReliableChannel(src, dst)
            self._channels[key] = channel
        elif not isinstance(channel, ReliableChannel):
            raise NetworkError(
                f"channel {src} -> {dst} was opened in UDP mode; "
                "transport mode cannot change mid-run"
            )
        return channel

    def _deliver_batch(self, key: Tuple[float, Address]) -> None:
        """Deliver one (tick, destination) batch of UDP messages.

        Per-message fault semantics are preserved — each message
        re-checks down/detached exactly as :meth:`_deliver` would — but
        the survivors reach the node through its batched receiver in
        one call (falling back to the per-message receiver if the node
        never registered one).
        """
        messages = self._pending_batches.pop(key, None)
        if not messages:
            return
        dst = key[1]
        down = self._down
        live: List[Message] = []
        if down:
            for message in messages:
                if message.dst in down or message.src in down:
                    self._drop(DROP_DOWN, message.src, message.dst)
                else:
                    live.append(message)
        else:
            live = messages
        if not live:
            return
        receiver = self._receivers.get(dst)
        if receiver is None:
            for message in live:
                self._drop(DROP_NO_RECEIVER, message.src, message.dst)
            return
        stats = self.stats
        stats.messages_delivered += len(live)
        per_node = stats.per_node_received
        per_node[dst] = per_node.get(dst, 0) + len(live)
        if self.obs is not None:
            now = self._sim.now
            observe = self.obs.msg_latency.observe
            for message in live:
                observe(
                    now - message.sent_at,
                    link=f"{message.src}->{message.dst}",
                )
        batch_receiver = self._batch_receivers.get(dst)
        if batch_receiver is not None:
            batch_receiver(live)
        else:
            from repro.net.marshal import encode_message

            for message in live:
                # The per-message receiver reads a non-None ``decoded``
                # as the reliable gate's preadmission marker; the
                # zero-copy payload must not masquerade as that.  An
                # encode-skipped send carries no bytes at all — marshal
                # them now, from the same inputs the sender had.
                if message.payload is None and message.decoded is not None:
                    d = message.decoded
                    message.payload = encode_message(
                        d["tuple"], d["src"], d["src_tid"], mid=d["mid"]
                    )
                message.decoded = None
                receiver(message)

    def _deliver(self, message: Message) -> None:
        # Re-check faults at delivery time: a node that crashed while the
        # message was in flight must not receive it.
        if message.dst in self._down or message.src in self._down:
            self._drop(DROP_DOWN, message.src, message.dst)
            return
        receiver = self._receivers.get(message.dst)
        if receiver is None:
            self._drop(DROP_NO_RECEIVER, message.src, message.dst)
            return
        self.stats.messages_delivered += 1
        per_node = self.stats.per_node_received
        per_node[message.dst] = per_node.get(message.dst, 0) + 1
        if self.obs is not None:
            self.obs.msg_latency.observe(
                self._sim.now - message.sent_at,
                link=f"{message.src}->{message.dst}",
            )
        receiver(message)

    # ------------------------------------------------------------------
    # Reliable transport: ack / retransmit / reorder machinery

    def _transmit(
        self, channel: ReliableChannel, entry: PendingSend, first: bool
    ) -> None:
        """One transmission attempt of a tracked message (plus the
        retransmit timer that backstops it)."""
        message = entry.message
        if not first:
            self.stats.messages_retransmitted += 1
            if self.obs is not None:
                self.obs.event(
                    "net.retransmit",
                    link=f"{message.src}->{message.dst}",
                    seq=entry.seq,
                    attempt=entry.attempts,
                )
        reason = self._drop_reason(message.src, message.dst)
        if reason is None:
            base = channel.base
            self._schedule_frame(channel, entry.seq, base, message)
            if self._duplicate_rate > 0.0 and (
                self._stream("net.dup", message.src).random()
                < self._duplicate_rate
            ):
                self.stats.messages_duplicated += 1
                self._schedule_frame(channel, entry.seq, base, message)
        # A failed attempt is not yet a drop: the retransmit timer gets
        # another try.  Only exhaustion below counts one.
        config = self.reliable_config
        if entry.attempts > config.max_retries:
            raise NetworkError("transmit called past max retries")
        timeout = config.timeout_for(entry.attempts)
        if config.jitter > 0:
            timeout += self._stream("net.rto", message.src).uniform(
                0, config.jitter
            )
        if self.obs is not None:
            self.obs.backoff.observe(
                timeout, link=f"{message.src}->{message.dst}"
            )
        entry.attempts += 1
        entry.timer = self._sim.schedule(
            timeout,
            lambda: self._retransmit(channel, entry),
            group=message.src,
        )

    def _retransmit(self, channel: ReliableChannel, entry: PendingSend) -> None:
        if channel.pending.get(entry.seq) is not entry:
            return  # acked (or abandoned) in the meantime
        if entry.attempts > self.reliable_config.max_retries:
            channel.give_up(entry.seq)
            self._drop(DROP_RETRIES, entry.message.src, entry.message.dst)
            if self.obs is not None:
                self.obs.event(
                    "net.send_failure",
                    link=f"{entry.message.src}->{entry.message.dst}",
                    seq=entry.seq,
                )
            self._count_send_failure(entry.message)
            self._drain_backlog(channel)
            return
        self._transmit(channel, entry, first=False)

    def _count_send_failure(self, message: Message) -> None:
        self.stats.send_failures += 1
        failed = self.stats.per_node_failed
        failed[message.src] = failed.get(message.src, 0) + 1
        for callback in self.on_send_failure:
            callback(message)

    def _drain_backlog(self, channel: ReliableChannel) -> None:
        """Promote backlogged sends into freed window slots."""
        config = self.reliable_config
        if config.window is None:
            return
        while channel.backlog and len(channel.pending) < config.window:
            message = channel.backlog.popleft()
            entry = channel.open_send(message)
            self._transmit(channel, entry, first=True)

    def _schedule_frame(
        self, channel: ReliableChannel, seq: int, base: int, message: Message
    ) -> None:
        """Schedule fabric delivery of one data frame (seq restores
        ordering, so the FIFO clamp is bypassed; ``base`` is the
        sender's lowest unresolved seq at transmit time)."""
        delay = self._latency.delay(message.src, message.dst)
        if self._reorder_rate > 0.0 and (
            self._stream("net.reorder", message.src).random()
            < self._reorder_rate
        ):
            self.stats.messages_reordered += 1
            delay += self._stream("net.reorder", message.src).uniform(
                0, self._reorder_window
            )
        when = channel.next_delivery_time(self._sim.now, delay, fifo=False)
        self._sim.schedule_at(
            when,
            lambda: self._deliver_frame(channel, seq, base, message),
            priority=self._delivery_priority,
            group=message.dst,
        )

    def _deliver_frame(
        self, channel: ReliableChannel, seq: int, base: int, message: Message
    ) -> None:
        if message.dst in self._down or message.src in self._down:
            # In-flight crash/down: the retransmit timer (or retry
            # exhaustion) accounts for this message, not a drop here.
            return
        if message.dst not in self._receivers:
            return
        duplicate = seq in channel.seen or seq < channel.next_deliver
        if not duplicate:
            gate = self._admission.get(message.dst)
            if gate is not None and not gate(message):
                # Receiver pushback: withhold the ack and send an
                # explicit BUSY nack instead — the sender keeps the
                # message and re-arms its retransmit backoff.
                self.stats.busy_nacks += 1
                self._send_busy(channel, seq)
                return
            config = self.reliable_config
            if (
                config.reorder_cap is not None
                and seq != channel.next_deliver
                and len(channel.held) >= config.reorder_cap
            ):
                # Held-buffer cap: un-acked, so the retransmit timer
                # redelivers this frame once the gap drains.
                self.stats.held_overflow += 1
                return
        # Ack every arriving frame — including duplicates, whose
        # original ack may have been the thing that got lost.
        self._send_ack(channel, seq)
        if duplicate:
            self.stats.duplicates_suppressed += 1
        # Everything below the frame's base is resolved at the sender
        # (acked or abandoned) — deliver held frames below it and stop
        # waiting for dead gaps, instead of stalling out the hold timer.
        for queued in channel.advance_base(base):
            self._deliver_app(queued)
        ready = channel.accept(seq, message)
        if not ready and channel.gapped:
            # Held behind a gap: bound head-of-line blocking in case the
            # sender has given up on the missing frame.
            self._arm_gap_timer(channel)
        for queued in ready:
            self._deliver_app(queued)
        if not channel.gapped and channel.gap_timer is not None:
            channel.gap_timer.cancel()
            channel.gap_timer = None

    def _deliver_app(self, message: Message) -> None:
        receiver = self._receivers.get(message.dst)
        if receiver is None:
            self._drop(DROP_NO_RECEIVER, message.src, message.dst)
            return
        self.stats.messages_delivered += 1
        per_node = self.stats.per_node_received
        per_node[message.dst] = per_node.get(message.dst, 0) + 1
        if self.obs is not None:
            self.obs.msg_latency.observe(
                self._sim.now - message.sent_at,
                link=f"{message.src}->{message.dst}",
            )
        receiver(message)

    def _send_ack(self, channel: ReliableChannel, seq: int) -> None:
        """Ship an ack back over the reverse link (it can be lost too)."""
        self.stats.acks_sent += 1
        reason = self._drop_reason(channel.dst, channel.src)
        if reason is not None:
            self.stats.acks_dropped += 1
            return
        delay = self._latency.delay(channel.dst, channel.src)
        self._sim.schedule(
            delay,
            lambda: self._deliver_ack(channel, seq),
            priority=self._delivery_priority,
            group=channel.src,
        )

    def _deliver_ack(self, channel: ReliableChannel, seq: int) -> None:
        channel.ack(seq)
        self._drain_backlog(channel)

    def _send_busy(self, channel: ReliableChannel, seq: int) -> None:
        """Ship a BUSY nack back over the reverse link (lossy, like
        acks — the retransmit timer still backstops everything)."""
        if self.obs is not None:
            self.obs.event(
                "net.busy", link=f"{channel.src}->{channel.dst}", seq=seq
            )
        if self._drop_reason(channel.dst, channel.src) is not None:
            return
        delay = self._latency.delay(channel.dst, channel.src)
        self._sim.schedule(
            delay,
            lambda: self._deliver_busy(channel, seq),
            priority=self._delivery_priority,
            group=channel.src,
        )

    def _deliver_busy(self, channel: ReliableChannel, seq: int) -> None:
        """Sender reaction to receiver pushback: re-arm the retransmit
        at the *next* backoff step instead of letting the armed (shorter)
        timer burn a transmission into a known-saturated receiver."""
        entry = channel.pending.get(seq)
        if entry is None:
            return  # resolved (acked or abandoned) meanwhile
        config = self.reliable_config
        if entry.attempts > config.max_retries:
            return  # exhaustion pending; the armed timer handles it
        if entry.timer is not None:
            entry.timer.cancel()
        timeout = config.timeout_for(entry.attempts)
        if config.jitter > 0:
            timeout += self._stream("net.rto", channel.src).uniform(
                0, config.jitter
            )
        if self.obs is not None:
            self.obs.backoff.observe(
                timeout, link=f"{channel.src}->{channel.dst}"
            )
        entry.timer = self._sim.schedule(
            timeout,
            lambda: self._retransmit(channel, entry),
            group=channel.src,
        )

    def _arm_gap_timer(self, channel: ReliableChannel) -> None:
        if channel.gap_timer is not None:
            return
        channel.gap_timer = self._sim.schedule(
            self.reliable_config.horizon(),
            lambda: self._skip_gap(channel),
            group=channel.dst,
        )

    def _skip_gap(self, channel: ReliableChannel) -> None:
        channel.gap_timer = None
        if not channel.gapped:
            return
        self.stats.gap_skips += 1
        if self.obs is not None:
            self.obs.event(
                "net.gap_skip", link=f"{channel.src}->{channel.dst}"
            )
        for queued in channel.skip_gap():
            self._deliver_app(queued)
        if channel.gapped:
            self._arm_gap_timer(channel)

    # ------------------------------------------------------------------
    # Introspection for tests and verdicts

    def pending_reliable(self) -> int:
        """Unacknowledged reliable-mode messages across all channels."""
        return sum(
            len(ch.pending)
            for ch in self._channels.values()
            if isinstance(ch, ReliableChannel)
        )

    def channel_states(self) -> Dict[str, Dict[str, int]]:
        """Per-channel state snapshots keyed ``"src->dst"`` (the metric
        registry's channel gauges read this)."""
        return {
            f"{src}->{dst}": channel.obs_state()
            for (src, dst), channel in self._channels.items()
        }
