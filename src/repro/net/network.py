"""The simulated network connecting virtual P2 nodes.

Nodes register a receive callback under their address.  ``send`` schedules
delivery through a per-(src, dst) FIFO channel; loss and partitions drop
messages before scheduling.  The network also keeps global and per-node
message counters — these are the "Tx messages" series plotted in the
paper's Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.net.address import Address
from repro.net.channel import Channel
from repro.net.topology import ConstantLatency, LatencyModel
from repro.sim.simulator import Simulator


@dataclass
class Message:
    """An in-flight network message (a marshaled tuple payload)."""

    src: Address
    dst: Address
    payload: Any
    sent_at: float
    size: int = 0


@dataclass
class NetworkStats:
    """Counters the benchmark harness samples."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_node_sent: Dict[Address, int] = field(default_factory=dict)
    per_node_received: Dict[Address, int] = field(default_factory=dict)


class Network:
    """FIFO message fabric with loss and partition injection."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {loss_rate}")
        self._sim = sim
        self._latency = latency if latency is not None else ConstantLatency(0.01)
        self._loss_rate = loss_rate
        self._receivers: Dict[Address, Callable[[Message], None]] = {}
        self._channels: Dict[Tuple[Address, Address], Channel] = {}
        self._blocked: Set[frozenset] = set()
        self._down: Set[Address] = set()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Registration

    def attach(self, address: Address, receiver: Callable[[Message], None]) -> None:
        """Register a node's receive callback under its address."""
        if address in self._receivers:
            raise NetworkError(f"address already attached: {address}")
        self._receivers[address] = receiver

    def detach(self, address: Address) -> None:
        """Remove a node from the network (future messages to it drop)."""
        self._receivers.pop(address, None)

    def is_attached(self, address: Address) -> bool:
        return address in self._receivers

    @property
    def addresses(self) -> list:
        return sorted(self._receivers)

    # ------------------------------------------------------------------
    # Fault injection

    def partition(self, a: Address, b: Address) -> None:
        """Block traffic in both directions between ``a`` and ``b``."""
        self._blocked.add(frozenset((a, b)))

    def heal(self, a: Address, b: Address) -> None:
        """Remove a partition between ``a`` and ``b``."""
        self._blocked.discard(frozenset((a, b)))

    def take_down(self, address: Address) -> None:
        """Silently drop all traffic to and from ``address``."""
        self._down.add(address)

    def bring_up(self, address: Address) -> None:
        self._down.discard(address)

    def set_loss_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss rate must be in [0, 1): {rate}")
        self._loss_rate = rate

    # ------------------------------------------------------------------
    # Sending

    def send(self, src: Address, dst: Address, payload: Any, size: int = 0) -> None:
        """Send ``payload`` from ``src`` to ``dst`` over the FIFO channel.

        Messages to unknown/down/partitioned destinations are counted as
        sent and dropped — matching a UDP-like transport where the sender
        cannot tell.
        """
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        self.stats.per_node_sent[src] = self.stats.per_node_sent.get(src, 0) + 1

        message = Message(src, dst, payload, self._sim.now, size)
        if self._should_drop(src, dst):
            self.stats.messages_dropped += 1
            return
        channel = self._channel(src, dst)
        delay = self._latency.delay(src, dst)
        when = channel.next_delivery_time(self._sim.now, delay)
        self._sim.schedule_at(when, lambda: self._deliver(message))

    def _should_drop(self, src: Address, dst: Address) -> bool:
        if src in self._down or dst in self._down:
            return True
        if frozenset((src, dst)) in self._blocked:
            return True
        if self._loss_rate > 0.0:
            if self._sim.random.stream("net.loss").random() < self._loss_rate:
                return True
        return False

    def _channel(self, src: Address, dst: Address) -> Channel:
        key = (src, dst)
        if key not in self._channels:
            self._channels[key] = Channel(src, dst)
        return self._channels[key]

    def _deliver(self, message: Message) -> None:
        # Re-check faults at delivery time: a node that crashed while the
        # message was in flight must not receive it.
        if message.dst in self._down or message.src in self._down:
            self.stats.messages_dropped += 1
            return
        receiver = self._receivers.get(message.dst)
        if receiver is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        per_node = self.stats.per_node_received
        per_node[message.dst] = per_node.get(message.dst, 0) + 1
        receiver(message)
