"""Node addresses.

An address is a plain string (e.g. ``"n3:10000"``) so it can live inside
OverLog tuples, be compared for equality in rules, and be printed in
traces exactly as the paper shows (``NAddr``, ``SAddr``, ...).  The helper
below builds the conventional form used by the Chord harness.
"""

from __future__ import annotations

Address = str

EMPTY_ADDRESS: Address = "-"
"""The paper's convention for "no address" (e.g. an unset predecessor)."""


def make_address(index: int, base_port: int = 10000) -> Address:
    """Build the conventional address for the ``index``-th virtual node."""
    return f"n{index}:{base_port + index}"
