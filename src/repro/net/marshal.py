"""Tuple marshaling — the wire format between nodes.

P2's network preamble/postamble marshal tuples onto UDP; this module is
the simulated equivalent: a canonical, self-describing byte encoding
(tagged JSON) for every OverLog value type.  Routing real bytes (rather
than passing Python object references) keeps nodes honestly isolated —
a value that cannot survive the wire fails loudly at send time — and
gives the bandwidth accounting exact message sizes.

Encodable values: str, bool, int, float, None, NodeID, and (nested)
sequences thereof.  Sequences decode as tuples (OverLog lists are
immutable values).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.errors import NetworkError
from repro.overlog.types import NodeID
from repro.runtime.tuples import Tuple

_NODE_ID_TAG = "nodeid"


def _encode_value(value: Any):
    if isinstance(value, NodeID):
        return {_NODE_ID_TAG: [value.value, value.bits]}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    raise NetworkError(
        f"value of type {type(value).__name__} cannot be marshaled: "
        f"{value!r}"
    )


def _decode_value(value: Any):
    if isinstance(value, dict):
        if _NODE_ID_TAG in value:
            raw, bits = value[_NODE_ID_TAG]
            return NodeID(raw, bits)
        raise NetworkError(f"unknown tagged value on the wire: {value!r}")
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def encode_value(value: Any):
    """Public form of the tagged encoding (JSON-ready, NodeID-aware).

    The crash-recovery durable store (:mod:`repro.recovery`) reuses the
    wire encoding for checkpoint and WAL records: state that cannot
    survive the wire cannot survive a restart either, and both fail
    loudly at write time.
    """
    return _encode_value(value)


def decode_value(value: Any):
    """Inverse of :func:`encode_value` (sequences decode as tuples)."""
    return _decode_value(value)


def encode_message(
    tup: Tuple,
    src: str,
    src_tid: Optional[int],
    mid: Optional[int] = None,
) -> bytes:
    """Marshal a tuple (plus trace identity) for transmission.

    ``mid`` is the sender's wire-level message id — a per-node monotone
    counter stamped on every send.  (src, mid) uniquely identifies one
    logical transmission, which is what lets the receiving side's
    introspection (the ``tupleTable`` registry) recognize a fabric
    duplicate or retransmission of a message it already accounted for,
    without confusing it with a genuine re-send of the same tuple.
    """
    body = {
        "kind": "tuple",
        "name": tup.name,
        "values": [_encode_value(v) for v in tup.values],
        "src": src,
        "src_tid": src_tid,
        "mid": mid,
    }
    return json.dumps(body, separators=(",", ":")).encode()


def encode_delete(name: str, pattern: PyTuple) -> bytes:
    """Marshal a remote-delete request (None entries are wildcards)."""
    body = {
        "kind": "delete",
        "name": name,
        "pattern": [_encode_value(v) for v in pattern],
    }
    return json.dumps(body, separators=(",", ":")).encode()


#: Value types the tagged encoding maps to themselves (bool is an int
#: subclass; NodeID round-trips to an equal NodeID).
_WIRE_STABLE = (str, int, float, NodeID)


def payload_for(
    tup: Tuple,
    src: str,
    src_tid: Optional[int],
    mid: Optional[int] = None,
) -> Dict[str, Any]:
    """The payload dict :func:`decode_message` would produce for this
    send, without the JSON round-trip.

    This is the batch fabric's zero-copy path: the sender computes the
    receiver-side payload once and attaches it to the message, so the
    batched receiver never touches the wire bytes.  Values still pass
    through the tagged encode/decode pair whenever they could be
    altered by it (sequences decode as tuples), so the result is
    byte-for-byte what decoding the real wire message yields.  The
    extra ``"tuple"`` key carries a ready :class:`Tuple` the receiver
    may adopt directly (immutable, so sharing across nodes is safe);
    per-message decode paths never see this key.
    """
    values = tup.values
    for value in values:
        if not (value is None or isinstance(value, _WIRE_STABLE)):
            normalized = tuple(
                _decode_value(_encode_value(v)) for v in values
            )
            if normalized != values:
                return {
                    "kind": "tuple",
                    "name": tup.name,
                    "values": normalized,
                    "src": src,
                    "src_tid": src_tid,
                    "mid": mid,
                    "tuple": Tuple(tup.name, normalized),
                }
            break
    return {
        "kind": "tuple",
        "name": tup.name,
        "values": values,
        "src": src,
        "src_tid": src_tid,
        "mid": mid,
        "tuple": tup,
    }


#: Cache of ``len(json.dumps(s))`` per distinct string.  Predicate
#: names and addresses repeat endlessly, so the escape-aware length of
#: each is computed exactly once.
_STR_LEN_CACHE: Dict[str, int] = {}


def _string_len(s: str) -> int:
    cached = _STR_LEN_CACHE.get(s)
    if cached is None:
        cached = len(json.dumps(s))
        if len(_STR_LEN_CACHE) < 65536:
            _STR_LEN_CACHE[s] = cached
    return cached


def _value_len(value: Any) -> int:
    """len(json.dumps(_encode_value(value), separators=(",", ":")))."""
    if value is None:
        return 4  # null
    if isinstance(value, bool):
        return 4 if value else 5  # true / false
    if isinstance(value, str):
        return _string_len(value)
    if isinstance(value, int):
        return len(str(value))
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            # json.dumps spells non-finite floats NaN/Infinity.
            return 3 if value != value else (8 if value > 0 else 9)
        return len(repr(value))
    if isinstance(value, NodeID):
        # {"nodeid":[value,bits]} — 14 chars of framing around the two
        # integers.
        return 14 + len(str(value.value)) + len(str(value.bits))
    if isinstance(value, (list, tuple)):
        if not value:
            return 2
        return 1 + len(value) + sum(_value_len(v) for v in value)
    raise NetworkError(
        f"value of type {type(value).__name__} cannot be marshaled: "
        f"{value!r}"
    )


def wire_length(
    tup: Tuple,
    src: str,
    src_tid: Optional[int],
    mid: Optional[int] = None,
) -> int:
    """Exact ``len(encode_message(tup, src, src_tid, mid))`` — computed
    arithmetically, without building the JSON.

    The batch fabric's zero-copy sends skip marshaling (the receiver
    consumes :func:`payload_for`'s dict, never the bytes) but the
    network's byte accounting must stay bit-identical to per-tuple
    execution; this gives it the exact wire size for free.  Pinned
    against the real encoder by a Hypothesis property in the batch
    battery.
    """
    cache = _STR_LEN_CACHE
    name_len = cache.get(tup.name)
    if name_len is None:
        name_len = _string_len(tup.name)
    src_len = cache.get(src)
    if src_len is None:
        src_len = _string_len(src)
    total = _FRAME_OVERHEAD + name_len + src_len
    values = tup.values
    if values:
        total += 1 + len(values)
        for v in values:
            # Exact-type fast path for the dominant scalars (bool is a
            # subclass of int but `type(...) is int` excludes it, so it
            # keeps its true/false spelling via the full dispatch).
            kind = type(v)
            if kind is int:
                total += len(str(v))
            elif kind is float:
                total += len(repr(v)) if v == v and v not in _INF else (
                    _value_len(v)
                )
            elif kind is str:
                cached = cache.get(v)
                total += cached if cached is not None else _string_len(v)
            else:
                total += _value_len(v)
    else:
        total += 2
    total += 4 if src_tid is None else len(str(src_tid))
    total += 4 if mid is None else len(str(mid))
    return total


_INF = (float("inf"), float("-inf"))


#: Length of the frame skeleton around the name/values/src/src_tid/mid
#: payload slots: measured once from the real encoder so the arithmetic
#: can never drift from a punctuation change.
_FRAME_OVERHEAD = (
    len(encode_message(Tuple("", ()), "", None, mid=None))
    - 2 * _string_len("")  # name, src slots
    - 2                    # empty values slot
    - 4 - 4                # null src_tid, null mid
)


def decode_message(data: bytes) -> Dict[str, Any]:
    """Unmarshal a wire message into a payload dict.

    For "tuple" messages the dict has name/values/src/src_tid; for
    "delete" messages name/pattern.
    """
    try:
        body = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    kind = body.get("kind")
    if kind == "tuple":
        return {
            "kind": "tuple",
            "name": body["name"],
            "values": tuple(_decode_value(v) for v in body["values"]),
            "src": body.get("src"),
            "src_tid": body.get("src_tid"),
            "mid": body.get("mid"),
        }
    if kind == "delete":
        return {
            "kind": "delete",
            "name": body["name"],
            "pattern": tuple(_decode_value(v) for v in body["pattern"]),
        }
    raise NetworkError(f"unknown message kind on the wire: {kind!r}")
