"""Tuple marshaling — the wire format between nodes.

P2's network preamble/postamble marshal tuples onto UDP; this module is
the simulated equivalent: a canonical, self-describing byte encoding
(tagged JSON) for every OverLog value type.  Routing real bytes (rather
than passing Python object references) keeps nodes honestly isolated —
a value that cannot survive the wire fails loudly at send time — and
gives the bandwidth accounting exact message sizes.

Encodable values: str, bool, int, float, None, NodeID, and (nested)
sequences thereof.  Sequences decode as tuples (OverLog lists are
immutable values).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.errors import NetworkError
from repro.overlog.types import NodeID
from repro.runtime.tuples import Tuple

_NODE_ID_TAG = "nodeid"


def _encode_value(value: Any):
    if isinstance(value, NodeID):
        return {_NODE_ID_TAG: [value.value, value.bits]}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    raise NetworkError(
        f"value of type {type(value).__name__} cannot be marshaled: "
        f"{value!r}"
    )


def _decode_value(value: Any):
    if isinstance(value, dict):
        if _NODE_ID_TAG in value:
            raw, bits = value[_NODE_ID_TAG]
            return NodeID(raw, bits)
        raise NetworkError(f"unknown tagged value on the wire: {value!r}")
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def encode_value(value: Any):
    """Public form of the tagged encoding (JSON-ready, NodeID-aware).

    The crash-recovery durable store (:mod:`repro.recovery`) reuses the
    wire encoding for checkpoint and WAL records: state that cannot
    survive the wire cannot survive a restart either, and both fail
    loudly at write time.
    """
    return _encode_value(value)


def decode_value(value: Any):
    """Inverse of :func:`encode_value` (sequences decode as tuples)."""
    return _decode_value(value)


def encode_message(
    tup: Tuple,
    src: str,
    src_tid: Optional[int],
    mid: Optional[int] = None,
) -> bytes:
    """Marshal a tuple (plus trace identity) for transmission.

    ``mid`` is the sender's wire-level message id — a per-node monotone
    counter stamped on every send.  (src, mid) uniquely identifies one
    logical transmission, which is what lets the receiving side's
    introspection (the ``tupleTable`` registry) recognize a fabric
    duplicate or retransmission of a message it already accounted for,
    without confusing it with a genuine re-send of the same tuple.
    """
    body = {
        "kind": "tuple",
        "name": tup.name,
        "values": [_encode_value(v) for v in tup.values],
        "src": src,
        "src_tid": src_tid,
        "mid": mid,
    }
    return json.dumps(body, separators=(",", ":")).encode()


def encode_delete(name: str, pattern: PyTuple) -> bytes:
    """Marshal a remote-delete request (None entries are wildcards)."""
    body = {
        "kind": "delete",
        "name": name,
        "pattern": [_encode_value(v) for v in pattern],
    }
    return json.dumps(body, separators=(",", ":")).encode()


def decode_message(data: bytes) -> Dict[str, Any]:
    """Unmarshal a wire message into a payload dict.

    For "tuple" messages the dict has name/values/src/src_tid; for
    "delete" messages name/pattern.
    """
    try:
        body = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetworkError(f"undecodable message: {exc}") from exc
    kind = body.get("kind")
    if kind == "tuple":
        return {
            "kind": "tuple",
            "name": body["name"],
            "values": tuple(_decode_value(v) for v in body["values"]),
            "src": body.get("src"),
            "src_tid": body.get("src_tid"),
            "mid": body.get("mid"),
        }
    if kind == "delete":
        return {
            "kind": "delete",
            "name": body["name"],
            "pattern": tuple(_decode_value(v) for v in body["pattern"]),
        }
    raise NetworkError(f"unknown message kind on the wire: {kind!r}")
