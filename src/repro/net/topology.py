"""Latency models for simulated channels.

The paper does not shape network topology for its experiments (none of its
measurements involve latency), so :class:`ConstantLatency` is the default.
:class:`UniformLatency` is available for churn/robustness experiments.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.net.address import Address
from repro.sim.rand import SimRandom


class LatencyModel:
    """Base class: maps a (src, dst) pair to a one-way delay in seconds."""

    def delay(self, src: Address, dst: Address) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes the same one-way delay."""

    def __init__(self, seconds: float = 0.01) -> None:
        if seconds < 0:
            raise NetworkError(f"latency must be non-negative: {seconds}")
        self.seconds = seconds

    def delay(self, src: Address, dst: Address) -> float:
        return self.seconds


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high) per message.

    Draws come from a named stream of the simulation's random source, so
    runs stay reproducible.  FIFO ordering is still enforced per channel
    by the network layer (delivery times are made monotone).
    """

    def __init__(self, rand: SimRandom, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise NetworkError(f"invalid latency range [{low}, {high})")
        self._rng = rand.stream("net.latency")
        self.low = low
        self.high = high

    def delay(self, src: Address, dst: Address) -> float:
        if self.high == self.low:
            return self.low
        return self._rng.uniform(self.low, self.high)
