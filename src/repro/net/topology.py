"""Latency models for simulated channels.

The paper does not shape network topology for its experiments (none of its
measurements involve latency), so :class:`ConstantLatency` is the default.
:class:`UniformLatency`, :class:`JitteredLatency`, and
:class:`AsymmetricLatency` are available for churn/robustness
experiments and fault campaigns.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.errors import NetworkError
from repro.net.address import Address
from repro.sim.rand import SimRandom


class LatencyModel:
    """Base class: maps a (src, dst) pair to a one-way delay in seconds."""

    def delay(self, src: Address, dst: Address) -> float:
        raise NotImplementedError

    def use_per_source_streams(self) -> None:
        """Switch random draws to per-sender streams (no-op by default).

        The batch fabric calls this in deterministic (tick) mode so each
        sender's latency draws come from its own stream — one node's send
        volume can then never perturb another node's delays, which is
        the isolation the batch-vs-per-tuple determinism contract
        documents for every other fault draw (loss, duplication,
        reordering, backoff).  Models without randomness ignore it.
        """


class ConstantLatency(LatencyModel):
    """Every message takes the same one-way delay."""

    def __init__(self, seconds: float = 0.01) -> None:
        if seconds < 0:
            raise NetworkError(f"latency must be non-negative: {seconds}")
        self.seconds = seconds

    def delay(self, src: Address, dst: Address) -> float:
        return self.seconds


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high) per message.

    Draws come from a named stream of the simulation's random source, so
    runs stay reproducible.  FIFO ordering is still enforced per channel
    by the network layer (delivery times are made monotone).
    """

    def __init__(self, rand: SimRandom, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise NetworkError(f"invalid latency range [{low}, {high})")
        self._rand = rand
        self._rng = rand.stream("net.latency")
        self._per_source = False
        self.low = low
        self.high = high

    def use_per_source_streams(self) -> None:
        self._per_source = True

    def delay(self, src: Address, dst: Address) -> float:
        if self.high == self.low:
            return self.low
        rng = (
            self._rand.stream(f"net.latency.{src}")
            if self._per_source
            else self._rng
        )
        return rng.uniform(self.low, self.high)


class JitteredLatency(LatencyModel):
    """A base delay plus uniform jitter in [0, jitter) per message.

    Equivalent to ``UniformLatency(rand, base, base + jitter)`` but
    parameterized the way fault schedules describe links: a nominal
    propagation delay and a jitter magnitude that campaigns can crank
    up independently.
    """

    def __init__(self, rand: SimRandom, base: float, jitter: float) -> None:
        if base < 0 or jitter < 0:
            raise NetworkError(
                f"invalid jittered latency base={base} jitter={jitter}"
            )
        self._rand = rand
        self._rng = rand.stream("net.latency")
        self._per_source = False
        self.base = base
        self.jitter = jitter

    def use_per_source_streams(self) -> None:
        self._per_source = True

    def delay(self, src: Address, dst: Address) -> float:
        if self.jitter == 0:
            return self.base
        rng = (
            self._rand.stream(f"net.latency.{src}")
            if self._per_source
            else self._rng
        )
        return rng.uniform(0, self.jitter) + self.base


class AsymmetricLatency(LatencyModel):
    """Per-directed-link delay overrides on top of a default model.

    Overrides map a ``(src, dst)`` pair to either a fixed delay in
    seconds or a nested :class:`LatencyModel`.  The mapping is
    directional, so ``(a, b)`` and ``(b, a)`` can differ — the
    asymmetric-path fault the ring probes must survive.
    """

    def __init__(
        self,
        default: LatencyModel,
        overrides: Dict[
            Tuple[Address, Address], Union[float, LatencyModel]
        ] = None,
    ) -> None:
        self._default = default
        self._overrides: Dict[
            Tuple[Address, Address], Union[float, LatencyModel]
        ] = dict(overrides or {})
        self._per_source = False

    def use_per_source_streams(self) -> None:
        self._per_source = True
        self._default.use_per_source_streams()
        for override in self._overrides.values():
            if isinstance(override, LatencyModel):
                override.use_per_source_streams()

    def set_link(
        self, src: Address, dst: Address, delay: Union[float, LatencyModel]
    ) -> None:
        """Override the one-way delay for the directed link src → dst."""
        if isinstance(delay, (int, float)) and delay < 0:
            raise NetworkError(f"latency must be non-negative: {delay}")
        if self._per_source and isinstance(delay, LatencyModel):
            delay.use_per_source_streams()
        self._overrides[(src, dst)] = delay

    def clear_link(self, src: Address, dst: Address) -> None:
        self._overrides.pop((src, dst), None)

    def delay(self, src: Address, dst: Address) -> float:
        override = self._overrides.get((src, dst))
        if override is None:
            return self._default.delay(src, dst)
        if isinstance(override, LatencyModel):
            return override.delay(src, dst)
        return float(override)
