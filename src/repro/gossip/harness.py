"""Deployment harness for the gossip overlay."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.system import System
from repro.gossip.program import GossipParams, gossip_program
from repro.net.address import make_address
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


class GossipNetwork:
    """A population of gossip nodes bootstrapped from a contact graph.

    Each node starts knowing its ``fanout`` ring-neighbors (a sparse
    contact graph); membership sharing (m3/m4) then densifies the view.
    """

    def __init__(
        self,
        num_nodes: int = 8,
        seed: int = 0,
        params: Optional[GossipParams] = None,
        fanout: int = 2,
        tracing: bool = False,
        latency: float = 0.01,
        stale_share_bug: bool = False,
        loss_rate: float = 0.0,
        transport: str = "udp",
        reliable=None,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        observability: bool = False,
        execution=None,
    ) -> None:
        from repro.net.topology import ConstantLatency

        self.params = params if params is not None else GossipParams()
        self.system = System(
            seed=seed,
            latency=ConstantLatency(latency),
            loss_rate=loss_rate,
            transport=transport,
            reliable=reliable,
            reorder_rate=reorder_rate,
            duplicate_rate=duplicate_rate,
            observability=observability,
            execution=execution,
        )
        self.program = gossip_program(self.params, stale_share_bug)
        self.addresses: List[str] = [
            make_address(i, base_port=20000) for i in range(num_nodes)
        ]
        self.fanout = fanout
        for address in self.addresses:
            self.system.add_node(address, tracing=tracing)

    def start(self) -> None:
        """Install the program and seed the sparse contact graph."""
        count = len(self.addresses)
        for index, address in enumerate(self.addresses):
            node = self.system.node(address)
            node.install(self.program)
            node.inject("self", (address,))
            node.inject("member", (address, address))
            for step in range(1, self.fanout + 1):
                contact = self.addresses[(index + step) % count]
                node.inject("member", (address, contact))

    def run_for(self, duration: float) -> None:
        self.system.run_for(duration)

    def node(self, address: str) -> P2Node:
        return self.system.node(address)

    def publish(self, src: str, msg_id: int, payload: str) -> None:
        """Inject a broadcast at ``src``."""
        self.system.node(src).inject("publish", (src, msg_id, payload))

    # ------------------------------------------------------------------
    # Oracle-side checks

    def coverage(self, msg_id: int) -> Set[str]:
        """Addresses that have delivered ``msg_id``."""
        out: Set[str] = set()
        for address in self.addresses:
            node = self.system.node(address)
            if node.stopped:
                continue
            for row in node.query("seenMsg"):
                if row.values[1] == msg_id:
                    out.add(address)
        return out

    def membership_views(self) -> Dict[str, Set[str]]:
        """Each node's current member set."""
        return {
            address: {
                row.values[1]
                for row in self.system.node(address).query("member")
            }
            for address in self.addresses
            if not self.system.node(address).stopped
        }

    def fully_meshed(self) -> bool:
        """True when every live node knows every *other* live node.

        (A node's own membership row ages out — nothing heartbeats to
        itself — which is harmless: forwarding skips self anyway.)
        """
        live = {
            a for a in self.addresses if not self.system.node(a).stopped
        }
        views = self.membership_views()
        return all(views[a] >= live - {a} for a in live)
