"""A second overlay, to demonstrate generality (§3.4).

The paper stresses that its techniques "are not specific to Chord in
particular or distributed hash tables in general, but apply equally
well to other algorithms with distributed state and control."  This
package is that demonstration: an epidemic membership + broadcast
overlay written in the same OverLog dialect, on which the *same*
introspection, tracing, forensics, and monitoring machinery operates
unchanged — message provenance via ``repro.analysis.trace_back``,
redundancy watchpoints, coverage queries via the console.
"""

from repro.gossip.program import GossipParams, gossip_program, gossip_source
from repro.gossip.harness import GossipNetwork

__all__ = ["GossipParams", "gossip_program", "gossip_source", "GossipNetwork"]
