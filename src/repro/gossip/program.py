"""Epidemic membership and broadcast, in OverLog.

Two sub-protocols:

- **membership** (m*): soft-state member lists kept alive by periodic
  heartbeats and transitive sharing — a member not re-announced within
  its TTL silently ages out, exactly the soft-state idiom Chord's
  tables use;
- **broadcast** (b*): flood-with-suppression.  A ``publish`` event (or
  a ``bcast`` arrival) is deduplicated against the ``seenMsg`` table
  with a count-guard (this dialect's negation idiom) and forwarded to
  every known member with an incremented hop count.  Duplicate
  arrivals raise a ``dupDelivery`` event — a ready-made input for
  redundancy watchpoints.

The rules exercise engine features Chord does not: self-joins on the
membership table (m3) and event-sourced flooding with dedup (b*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlog.program import Program


@dataclass
class GossipParams:
    """Timers and bounds for the gossip overlay."""

    heartbeat_period: float = 3.0
    share_period: float = 6.0
    member_ttl: float = 12.0
    member_max: int = 64
    seen_ttl: float = 120.0
    seen_max: int = 500

    def bindings(self) -> dict:
        return {
            "tHeartbeat": self.heartbeat_period,
            "tShare": self.share_period,
        }


_TABLES = """
materialize(self, infinity, 1, keys(1)).
materialize(member, {member_ttl}, {member_max}, keys(1,2)).
materialize(heard, {member_ttl}, {member_max}, keys(1,2)).
materialize(seenMsg, {seen_ttl}, {seen_max}, keys(1,2)).
"""

_MEMBERSHIP_COMMON = """
m1 heartbeat@PAddr(NAddr) :- periodic@NAddr(E, tHeartbeat),
   member@NAddr(PAddr), PAddr != NAddr.
m2 member@NAddr(Src) :- heartbeat@NAddr(Src).
m2a heard@NAddr(Src) :- heartbeat@NAddr(Src).
m4 member@NAddr(Q) :- memberShare@NAddr(Q), Q != NAddr.
"""

# Correct sharing: only forward members with first-hand, fresh evidence
# (a recent heartbeat in `heard`).  Sharing the whole `member` table
# instead (the buggy variant) re-propagates dead members around the
# mesh faster than their TTLs can expire them — the gossip-overlay
# incarnation of the paper's §3.1.3 recycled-dead-neighbor pathology.
_SHARE_CORRECT = """
m3 memberShare@PAddr(QAddr) :- periodic@NAddr(E, tShare),
   member@NAddr(PAddr), heard@NAddr(QAddr), PAddr != QAddr,
   PAddr != NAddr.
"""

_SHARE_BUGGY = """
m3 memberShare@PAddr(QAddr) :- periodic@NAddr(E, tShare),
   member@NAddr(PAddr), member@NAddr(QAddr), PAddr != QAddr,
   PAddr != NAddr.
"""

_BROADCAST = """
/* -- broadcast: flood with duplicate suppression -------------------- */

b0 bcast@NAddr(MsgID, Payload, 0) :- publish@NAddr(MsgID, Payload).

b1 seenCount@NAddr(MsgID, Payload, Hops, count<*>) :-
   bcast@NAddr(MsgID, Payload, Hops), seenMsg@NAddr(MsgID, P2, H2).
b2 fresh@NAddr(MsgID, Payload, Hops) :-
   seenCount@NAddr(MsgID, Payload, Hops, C), C == 0.
b3 dupDelivery@NAddr(MsgID, Hops) :-
   seenCount@NAddr(MsgID, Payload, Hops, C), C > 0.

b4 seenMsg@NAddr(MsgID, Payload, Hops) :- fresh@NAddr(MsgID, Payload, Hops).
b5 deliver@NAddr(MsgID, Payload, Hops) :- fresh@NAddr(MsgID, Payload, Hops).
b6 bcast@PAddr(MsgID, Payload, Hops + 1) :-
   fresh@NAddr(MsgID, Payload, Hops), member@NAddr(PAddr), PAddr != NAddr.
"""


def gossip_source(
    params: GossipParams = None, stale_share_bug: bool = False
) -> str:
    params = params if params is not None else GossipParams()
    tables = _TABLES.format(
        member_ttl=params.member_ttl,
        member_max=params.member_max,
        seen_ttl=params.seen_ttl,
        seen_max=params.seen_max,
    )
    share = _SHARE_BUGGY if stale_share_bug else _SHARE_CORRECT
    return "\n".join([tables, _MEMBERSHIP_COMMON, share, _BROADCAST])


def gossip_program(
    params: GossipParams = None, stale_share_bug: bool = False
) -> Program:
    params = params if params is not None else GossipParams()
    return Program.compile(
        gossip_source(params, stale_share_bug),
        name="gossip" + ("-buggy" if stale_share_bug else ""),
        bindings=params.bindings(),
    )
