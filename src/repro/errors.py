"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: language errors (lexing/parsing/validation), runtime errors
(tables, planning, dataflow execution), and simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class OverLogError(ReproError):
    """Base class for OverLog language errors."""


class LexError(OverLogError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(OverLogError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class ValidationError(OverLogError):
    """Raised when a syntactically valid program fails semantic checks."""


class EvaluationError(OverLogError):
    """Raised when an OverLog expression cannot be evaluated."""


class RuntimeStateError(ReproError):
    """Base class for relational-runtime errors."""


class SchemaError(RuntimeStateError):
    """Raised on arity/primary-key mismatches against a table schema."""


class UnknownTableError(RuntimeStateError):
    """Raised when referring to a table that has not been materialized."""


class PlannerError(RuntimeStateError):
    """Raised when a rule cannot be compiled into a dataflow strand."""


class SimulationError(ReproError):
    """Raised on misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Raised on invalid network operations (unknown address, etc.)."""


class AggregationError(ReproError):
    """Raised on invalid in-network aggregation operations."""


class EpochMismatchError(AggregationError):
    """Raised when partial aggregates from different epochs would merge.

    Epoch isolation is a hard invariant of the aggregation tree
    (:mod:`repro.aggtree`): merging across virtual-clock epochs would
    silently blend two different snapshots of the population, so the
    partial-state algebra refuses instead of guessing.
    """
