"""Consistent distributed snapshots — Chandy-Lamport over Chord (§3.3).

The algorithm, as the paper adapts it for an overlay that knows its
outgoing links (``pingNode``) but not its incoming ones:

- incoming links are *learned*: every ping request sender is recorded
  in ``backPointer`` (bp1), counted by ``numBackPointers`` (bp2), and a
  marker's sender is added on arrival (sr10b);
- the initiator periodically advances a snapshot ID and snaps (sr1);
  snapping copies ``bestSucc`` / ``finger`` / ``pred`` into per-snapshot
  tables (sr4-sr6) and sends markers on all outgoing links (sr7);
- a first marker for a snapshot ID triggers the same snap (sr8-sr9) and
  starts recording on every other incoming channel (sr10); a marker on
  a recording channel closes it (sr11);
- gossip messages (``sendPred`` / ``returnSucc``) arriving on channels
  in the "Start" state are dumped into per-snapshot channel tables
  (sr15-sr16) — these are the only message types that mutate the
  snapped state, per the paper's structure-stable assumption;
- when every incoming channel is closed, the snapshot is Done (sr12-13)
  and a ``snapDone`` event fires (sr17, our addition, so harnesses can
  await completion).

Snapshot-scoped lookups (the paper's l1s-l3s) route over the *snapped*
routing state while the live system keeps running; the snapshot-scoped
consistency probes (cs4s/cs5s + the shared cs machinery) then measure
consistency 1.0 where live probes can report less under churn.

FIFO channels are assumed, as in the paper; our network guarantees them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.monitors.base import Monitor, MonitorHandle
from repro.overlog.program import Program
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple

BACKPOINTER_SOURCE = """
materialize(backPointer, 30, 1600, keys(1,2)).
materialize(numBackPointers, infinity, 1, keys(1)).

bp1 backPointer@NAddr(RemoteAddr) :- pingReq@NAddr(RemoteAddr).
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(RemoteAddr).
bp0 bpEval@NAddr(E) :- periodic@NAddr(E, tBpEval).
bp3 numBackPointers@NAddr(count<*>) :- bpEval@NAddr(E),
    backPointer@NAddr(RemoteAddr).
"""

SNAPSHOT_COMMON_SOURCE = """
materialize(snapState, 100, 100, keys(1,2)).
materialize(currentSnap, infinity, 1, keys(1)).
materialize(snapBestSucc, 100, 50, keys(1,2)).
materialize(snapFingers, 100, 1600, keys(1,2,4)).
materialize(snapPred, 100, 10, keys(1,2)).
materialize(channelState, 100, 1600, keys(1,2,3)).
materialize(channelSendPredDump, 100, 100, keys(1,2,3,4,5,6)).
materialize(channelReturnSuccDump, 100, 100, keys(1,2,3,4,5,6)).

sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I).
sr3 currentSnap@NAddr(I) :- snap@NAddr(I).
sr4 snapBestSucc@NAddr(I, SID, SAddr) :- snap@NAddr(I),
    bestSucc@NAddr(SID, SAddr).
sr5 snapFingers@NAddr(I, FPos, FID, FAddr) :- snap@NAddr(I),
    finger@NAddr(FPos, FID, FAddr).
sr6 snapPred@NAddr(I, PID, PAddr) :- snap@NAddr(I), pred@NAddr(PID, PAddr).
sr7 marker@RemoteAddr(NAddr, I) :- snap@NAddr(I), pingNode@NAddr(RemoteAddr).

sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State),
    marker@NAddr(SrcAddr, I).
sr9 snap@NAddr(I) :- haveSnap@NAddr(Src, I, 0), currentSnap@NAddr(Cur),
    I > Cur.
sr10 channelState@NAddr(Remote, E, "Start") :- haveSnap@NAddr(Src, E, 0),
     backPointer@NAddr(Remote), Remote != Src, currentSnap@NAddr(Cur),
     E > Cur.
sr10b backPointer@NAddr(Src) :- marker@NAddr(Src, E).
sr11 channelState@NAddr(Src, E, "Done") :- haveSnap@NAddr(Src, E, C).

sr12 doneChannels@NAddr(E, count<*>) :-
     channelState@NAddr(Remote, E, "Done").
sr12b doneChannels@NAddr(E, count<*>) :- numBackPointers@NAddr(C),
      channelState@NAddr(Remote, E, "Done").
sr13 snapState@NAddr(E, "Done") :- doneChannels@NAddr(E, C),
     snapState@NAddr(E, "Snapping"), numBackPointers@NAddr(C).
sr17 snapDone@NAddr(E) :- snapState@NAddr(E, "Done").
sr18 delete channelState@NAddr(Remote, E, State) :- snapDone@NAddr(E).

sr15 channelSendPredDump@NAddr(E, Src, PID, PAddr, T) :-
     sendPred@NAddr(PID, PAddr, Src), channelState@NAddr(Src, E, "Start"),
     T := f_now().
sr16 channelReturnSuccDump@NAddr(E, Src, SID, SAddr, T) :-
     returnSucc@NAddr(SID, SAddr, Src), channelState@NAddr(Src, E, "Start"),
     T := f_now().
"""

INITIATOR_SOURCE = """
sr1 snap@NAddr(I + 1) :- periodic@NAddr(E, tSnapFreq),
    currentSnap@NAddr(I).
"""

SNAP_LOOKUP_SOURCE = """
l1s sLookupResults@ReqAddr(SnapID, K, SID, SAddr, E, NAddr) :-
    node@NAddr(NID), sLookup@NAddr(SnapID, K, ReqAddr, E),
    snapBestSucc@NAddr(SnapID, SID, SAddr), K in (NID, SID].
l2s sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, min<D>) :-
    node@NAddr(NID), sLookup@NAddr(SnapID, K, ReqAddr, E),
    snapFingers@NAddr(SnapID, FPos, FID, FAddr), D := K - FID - 1,
    FID in (NID, K).
l3s sLookup@FAddr(SnapID, K, ReqAddr, E) :- node@NAddr(NID),
    sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, D),
    snapFingers@NAddr(SnapID, FPos, FID, FAddr), D == K - FID - 1,
    FID in (NID, K).
"""

SNAP_PROBE_SOURCE = """
materialize(conLookupTable, 100, 1000, keys(2,3)).
materialize(conRespTable, 100, 1000, keys(2,3)).
materialize(respCluster, 100, 1000, keys(2,3)).
materialize(maxCluster, 100, 1000, keys(2)).
materialize(lookupCluster, 100, 1000, keys(2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, tProbe),
    K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :-
    conProbe@NAddr(ProbeID, K, T), uniqueFinger@NAddr(FAddr, FID),
    ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :-
    conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs4s sLookup@SrcAddr(SnapID, K, NAddr, ReqID) :-
     conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T),
     currentSnap@NAddr(SnapID).
cs5s conRespTable@NAddr(ProbeID, ReqID, SAddr) :-
     sLookupResults@NAddr(SnapID, K, SID, SAddr, ReqID, Responder),
     conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :-
    conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :-
    respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :-
    conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :-
    periodic@NAddr(E, tTally), lookupCluster@NAddr(ProbeID, T, LookupCount),
    T < f_now() - tTally, maxCluster@NAddr(ProbeID, RespCount).
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :-
     consistency@NAddr(ProbeID, Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :-
     consistency@NAddr(ProbeID, Consistency),
     conLookupTable@NAddr(ProbeID, ReqID, T).
"""


class SnapshotMonitor(Monitor):
    """Chandy-Lamport snapshots: bp + sr rules (+ snapshot lookups).

    Install with :meth:`install_with_initiator`, naming the node that
    periodically starts snapshots.  All nodes get the common rules; the
    initiator also gets sr1 and a seed ``snapState`` row.
    """

    def __init__(
        self, snap_period: float = 30.0, with_lookup_rules: bool = True
    ) -> None:
        source = BACKPOINTER_SOURCE + SNAPSHOT_COMMON_SOURCE
        if with_lookup_rules:
            source += SNAP_LOOKUP_SOURCE
        super().__init__(
            name="snapshot",
            source=source,
            alarm_events=["snapDone"],
            bindings={
                "tSnapFreq": snap_period,
                # Re-derive the incoming-link count periodically: a dead
                # node's backPointer row expires silently, and a stale
                # count would leave sr13's termination check unsatisfiable.
                "tBpEval": min(snap_period, 5.0),
            },
        )
        self._initiator_program = Program.compile(
            INITIATOR_SOURCE,
            name="snapshot-initiator",
            bindings={"tSnapFreq": snap_period},
        )

    def install_with_initiator(
        self, nodes: Iterable[P2Node], initiator: P2Node
    ) -> MonitorHandle:
        nodes = list(nodes)
        handle = self.install(nodes)
        # Every node needs a currentSnap row for the stale-marker guard
        # in sr9/sr10 (markers carrying an ID <= currentSnap are late
        # duplicates and must not restart an old snapshot).
        for node in nodes:
            node.inject("currentSnap", (node.address, 0))
        initiator.install(self._initiator_program)
        # Seed the snapshot counter so sr1 has a row to advance.
        initiator.inject("snapState", (initiator.address, 0, "Done"))
        return handle

    @staticmethod
    def snapped_state(node: P2Node, snap_id: int) -> dict:
        """The recorded state of ``node`` for one snapshot ID."""

        def rows(table: str) -> List[Tuple]:
            return [
                t for t in node.query(table) if t.values[1] == snap_id
            ]

        return {
            "bestSucc": rows("snapBestSucc"),
            "fingers": rows("snapFingers"),
            "pred": rows("snapPred"),
            "sendPredMessages": rows("channelSendPredDump"),
            "returnSuccMessages": rows("channelReturnSuccDump"),
        }

    @staticmethod
    def snapshot_complete(node: P2Node, snap_id: int) -> bool:
        for tup in node.query("snapState"):
            if tup.values[1] == snap_id and tup.values[2] == "Done":
                return True
        return False


class SnapshotConsistencyProbes(Monitor):
    """Consistency probes over the snapped state (cs4s/cs5s rewrite).

    Requires :class:`SnapshotMonitor` to be installed first (it owns the
    snap tables these rules join).
    """

    def __init__(
        self, probe_period: float = 40.0, tally_period: float = 20.0
    ) -> None:
        super().__init__(
            name="snapshot-consistency-probes",
            source=SNAP_PROBE_SOURCE,
            alarm_events=["consistency"],
            bindings={"tProbe": probe_period, "tTally": tally_period},
        )
