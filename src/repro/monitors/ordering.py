"""Ring ID-ordering detectors (§3.1.2).

Opportunistic check (ri1): whenever a lookup result arrives carrying a
node whose ID falls strictly between the local node's predecessor and
successor, somebody closer exists that the local node does not know
about — a ``closerID`` alarm.  (We additionally exclude the local node
itself, which legitimately sits in that interval when it is the lookup
answer; the paper's rule as printed would alarm on every self-answer.)

Token traversal (ri2-ri6): a token walks successor pointers around the
ring counting ID wrap-arounds; a full circle with a wrap count other
than exactly 1 proves an ordering violation and raises
``orderingProblem`` at the initiator.  Start a traversal with
:meth:`RingTraversalMonitor.start_traversal`.
"""

from __future__ import annotations

from typing import List

from repro.monitors.base import Monitor, MonitorHandle
from repro.runtime.node import P2Node

OPPORTUNISTIC_SOURCE = """
ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :-
    lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr),
    pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr),
    ResltNodeID in (PID, SID), ResltNodeAddr != NAddr.
"""

TRAVERSAL_SOURCE = """
ri2 ordering@NAddr(E, NAddr, NID, 0) :- orderingEvent@NAddr(E),
    node@NAddr(NID).
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps) :-
    ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr),
    MyID < SID.
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :-
    ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr),
    MyID >= SID.
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps) :-
    countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr != SrcAddr.
ri6 orderingProblem@SAddr(E, SAddr, SID, Wraps) :-
    countWraps@NAddr(SAddr, E, SAddr, SID, Wraps), Wraps != 1.
ri7 orderingOK@SAddr(E, Wraps) :-
    countWraps@NAddr(SAddr, E, SAddr, SID, Wraps), Wraps == 1.
"""


class OpportunisticOrderingMonitor(Monitor):
    """Passive ID-ordering check on lookup responses (ri1)."""

    def __init__(self) -> None:
        super().__init__(
            name="ordering-opportunistic",
            source=OPPORTUNISTIC_SOURCE,
            alarm_events=["closerID"],
        )


class RingTraversalMonitor(Monitor):
    """Token-passing wrap-around counter (ri2-ri6).

    ri7 (an addition to the paper's rule set) reports a clean traversal
    back to the initiator, so callers can distinguish "ring verified"
    from "token lost" — the paper leaves traversal-loss handling open.
    """

    def __init__(self) -> None:
        super().__init__(
            name="ordering-traversal",
            source=TRAVERSAL_SOURCE,
            alarm_events=["orderingProblem", "orderingOK"],
        )

    def start_traversal(self, initiator: P2Node) -> int:
        """Inject an ``orderingEvent`` at ``initiator``; returns the
        traversal ID so results can be correlated."""
        nonce = initiator.rng.randrange(1 << 31)
        initiator.inject("orderingEvent", (initiator.address, nonce))
        return nonce
