"""On-line regression suites (§1.3).

"Watchpoints installed during debugging can be left permanently in the
system as an evolving set of on-line regression tests."  A
:class:`RegressionSuite` is exactly that artifact: a named collection
of monitors with *expectations* —

- ``expect_quiet(monitor, events)``: these alarms firing is a
  regression (e.g. ``inconsistentPred`` on a ring believed fixed);
- ``expect_active(monitor, event, min_count)``: this event *not*
  firing is a regression (liveness: consistency probes must keep
  producing verdicts; a silent monitor is a broken monitor).

Evaluation is windowed: each :meth:`evaluate` judges only what happened
since the previous one, so the suite can run forever and be polled at
any cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.monitors.base import Monitor, MonitorHandle
from repro.runtime.node import P2Node


@dataclass
class Expectation:
    """One monitor with its pass criterion."""

    monitor: Monitor
    kind: str                 # "quiet" | "active"
    events: List[str]
    min_count: int = 1        # for "active"
    handle: Optional[MonitorHandle] = None
    _baseline: Dict[str, int] = field(default_factory=dict)

    def fresh_counts(self) -> Dict[str, int]:
        out = {}
        for event in self.events:
            total = len(self.handle.alarms[event])
            out[event] = total - self._baseline.get(event, 0)
        return out

    def rebase(self) -> None:
        for event in self.events:
            self._baseline[event] = len(self.handle.alarms[event])


@dataclass
class RegressionReport:
    """The outcome of one evaluation window."""

    suite: str
    at: float
    violations: List[str]

    @property
    def passed(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] regression suite {self.suite!r} @ t={self.at:.1f}s"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


class RegressionSuite:
    """A permanently installed, windowed-evaluated monitor set."""

    def __init__(self, name: str = "regressions") -> None:
        self.name = name
        self._expectations: List[Expectation] = []
        self._installed = False
        self.reports: List[RegressionReport] = []

    # ------------------------------------------------------------------
    # Declaration

    def expect_quiet(
        self, monitor: Monitor, events: Optional[List[str]] = None
    ) -> "RegressionSuite":
        """Any of these alarms firing is a regression."""
        self._expectations.append(
            Expectation(
                monitor=monitor,
                kind="quiet",
                events=list(events or monitor.alarm_events),
            )
        )
        return self

    def expect_active(
        self, monitor: Monitor, event: str, min_count: int = 1
    ) -> "RegressionSuite":
        """Fewer than ``min_count`` of these events per window is a
        regression (the monitored path — or the monitor — died)."""
        self._expectations.append(
            Expectation(
                monitor=monitor,
                kind="active",
                events=[event],
                min_count=min_count,
            )
        )
        return self

    # ------------------------------------------------------------------
    # Lifecycle

    def install(self, nodes: Iterable[P2Node]) -> "RegressionSuite":
        nodes = list(nodes)
        for expectation in self._expectations:
            expectation.handle = expectation.monitor.install(nodes)
            expectation.rebase()
        self._installed = True
        return self

    def evaluate(self, now: float = 0.0) -> RegressionReport:
        """Judge the window since the last evaluate; record the report."""
        if not self._installed:
            raise RuntimeError(f"suite {self.name!r} is not installed")
        violations: List[str] = []
        for expectation in self._expectations:
            fresh = expectation.fresh_counts()
            if expectation.kind == "quiet":
                for event, count in fresh.items():
                    if count > 0:
                        sample = expectation.handle.alarms[event][-1]
                        violations.append(
                            f"{expectation.monitor.name}: {count}x {event} "
                            f"(latest: {sample})"
                        )
            else:
                (event,) = expectation.events
                if fresh[event] < expectation.min_count:
                    violations.append(
                        f"{expectation.monitor.name}: only {fresh[event]} "
                        f"{event} this window "
                        f"(expected >= {expectation.min_count})"
                    )
            expectation.rebase()
        report = RegressionReport(self.name, now, violations)
        self.reports.append(report)
        return report

    def remove(self) -> None:
        """Uninstall every monitor in the suite."""
        for expectation in self._expectations:
            if expectation.handle is not None:
                expectation.handle.remove()
        self._installed = False
