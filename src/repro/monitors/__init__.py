"""The paper's §3 monitoring applications, as installable rule sets.

Every monitor is a small OverLog program plus a Python handle that
collects its alarm tuples.  Monitors install on-line — on a running
Chord deployment, at any point in its life — exactly the usage model
the paper argues for:

- :mod:`repro.monitors.ring` — ring well-formedness (§3.1.1): active
  probing (rp1-rp3) and the passive stabilization check (rp4);
- :mod:`repro.monitors.ordering` — ring ID ordering (§3.1.2): the
  opportunistic check (ri1) and the token-traversal wrap-around counter
  (ri2-ri6);
- :mod:`repro.monitors.oscillation` — state oscillation detectors
  (§3.1.3): single (os1-os2), repeated (os3-os4), and collaborative
  (os5-os9);
- :mod:`repro.monitors.consistency` — proactive routing-consistency
  probes (§3.1.4, cs1-cs12);
- :mod:`repro.monitors.partition` — ring-partition census sampling
  (pt1-pt2), the per-node feed of the global isolation count in
  :mod:`repro.aggtree.monitors`;
- :mod:`repro.monitors.status` — status-telemetry fan-in (sr1 +
  sc1-sc2): every node reports to sharded collectors, which census the
  reports and flag silent nodes — also the scale benchmark's load;
- :mod:`repro.monitors.profiling` — execution profiling by walking
  ruleExec/tupleTable backwards (§3.2, ep1-ep6);
- :mod:`repro.monitors.snapshot` — Chandy-Lamport consistent snapshots
  (§3.3, bp1-bp2 + sr1-sr16) and snapshot-scoped lookups (l1s-l3s) with
  snapshot-consistent probes (cs4s/cs5s).
"""

from repro.monitors.base import Monitor, MonitorHandle
from repro.monitors.ring import (
    RingProbeMonitor,
    PassiveRingMonitor,
    SuccessorProbeMonitor,
)
from repro.monitors.ordering import (
    OpportunisticOrderingMonitor,
    RingTraversalMonitor,
)
from repro.monitors.oscillation import OscillationMonitor
from repro.monitors.consistency import ConsistencyProbeMonitor
from repro.monitors.partition import PartitionMonitor
from repro.monitors.profiling import ExecutionProfiler
from repro.monitors.snapshot import SnapshotMonitor, SnapshotConsistencyProbes
from repro.monitors.status import StatusFlowMonitor
from repro.monitors.reactive import ReactiveWatchpoint
from repro.monitors.regression import RegressionReport, RegressionSuite
from repro.monitors.traversal import GraphTraversalMonitor

__all__ = [
    "GraphTraversalMonitor",
    "ReactiveWatchpoint",
    "RegressionSuite",
    "RegressionReport",
    "Monitor",
    "MonitorHandle",
    "RingProbeMonitor",
    "PassiveRingMonitor",
    "SuccessorProbeMonitor",
    "OpportunisticOrderingMonitor",
    "RingTraversalMonitor",
    "OscillationMonitor",
    "ConsistencyProbeMonitor",
    "PartitionMonitor",
    "ExecutionProfiler",
    "SnapshotMonitor",
    "SnapshotConsistencyProbes",
    "StatusFlowMonitor",
]
