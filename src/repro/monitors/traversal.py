"""Generic graph traversal — §3.4's reusable building block.

"The traversal algorithms embodied in our examples have wide utility
... such traversal algorithms, combined with a per-hop soundness
evaluation check, can be applied to other overlay topologies and also
to execution graphs, snapshot graphs, or even application-defined
graphs."

:class:`GraphTraversalMonitor` generates the token-passing rules for an
*arbitrary* single-successor edge relation: give it the table name, its
arity, and which field holds the next-hop address, and it produces a
traversal that

- follows the edge from node to node, counting hops;
- reports ``<table>TravDone(E, hops)`` at the initiator when the token
  returns — on a ring, the hop count *is* the population size, so this
  doubles as a decentralized census;
- reports ``<table>TravLost(E, lastAddr, hops)`` when the hop budget is
  exhausted — the token entered a cycle that excludes the initiator
  (the failure mode a bare wrap-count traversal cannot see).

The ring ID-ordering monitor (ri2-ri6) is the specialised ancestor of
this; an optional per-hop condition hook recovers it.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import ReproError
from repro.monitors.base import Monitor
from repro.runtime.node import P2Node

_instances = itertools.count()


class GraphTraversalMonitor(Monitor):
    """Token traversal over ``edge_table``'s next-hop field.

    Event names are instance-unique: two traversal monitors installed
    on the same nodes must not consume each other's tokens (a shared
    Step event would multiply every hop by the number of instances).
    """

    def __init__(
        self,
        edge_table: str,
        arity: int,
        next_index: int,
        max_hops: int = 128,
        per_hop_condition: str = "",
    ) -> None:
        """``arity`` counts all fields including the location;
        ``next_index`` is the 0-based field holding the next address.
        ``per_hop_condition`` is an optional OverLog condition over the
        edge row's fields ``F1..Fn`` (F0 is the location), evaluated at
        every hop; a failing condition drops the token (reported as
        lost when the budget would have been reached — or use the
        events below to detect silence)."""
        if not 1 <= next_index < arity:
            raise ReproError(
                f"next_index {next_index} out of range for arity {arity}"
            )
        prefix = f"{edge_table}Trav{next(_instances)}"
        fields = [
            f"F{i}" if i != next_index else "Next"
            for i in range(1, arity)
        ]
        edge_args = ", ".join(fields)
        condition = f", {per_hop_condition}" if per_hop_condition else ""
        source = f"""
gt1 {prefix}Step@NAddr(E, NAddr, 0) :- {prefix}Start@NAddr(E).
gt2 {prefix}Hop@Next(E, Src, H) :- {prefix}Step@NAddr(E, Src, H0),
    {edge_table}@NAddr({edge_args}), H := H0 + 1, Next != NAddr{condition}.
gt3 {prefix}Done@Src(E, H) :- {prefix}Hop@NAddr(E, Src, H), NAddr == Src.
gt4 {prefix}Step@NAddr(E, Src, H) :- {prefix}Hop@NAddr(E, Src, H),
    NAddr != Src, H < {max_hops}.
gt5 {prefix}Lost@Src(E, NAddr, H) :- {prefix}Hop@NAddr(E, Src, H),
    NAddr != Src, H >= {max_hops}.
"""
        super().__init__(
            name=f"traversal-{edge_table}",
            source=source,
            alarm_events=[f"{prefix}Done", f"{prefix}Lost"],
        )
        self.edge_table = edge_table
        self.prefix = prefix
        self.max_hops = max_hops

    def start_traversal(self, initiator: P2Node) -> int:
        """Launch a token from ``initiator``; returns the traversal ID."""
        nonce = initiator.rng.randrange(1 << 31)
        initiator.inject(
            f"{self.prefix}Start", (initiator.address, nonce)
        )
        return nonce

    def results_for(self, handle, nonce: int) -> dict:
        """Summarize one traversal's outcome from a MonitorHandle."""
        done = [
            t
            for t in handle.alarms[f"{self.prefix}Done"]
            if t.values[1] == nonce
        ]
        lost = [
            t
            for t in handle.alarms[f"{self.prefix}Lost"]
            if t.values[1] == nonce
        ]
        return {
            "completed": bool(done),
            "hops": done[0].values[2] if done else None,
            "lost": bool(lost),
            "last_seen": lost[0].values[2] if lost else None,
        }
