"""Proactive routing-consistency probes (§3.1.4, rules cs1-cs12).

Every ``tProbe`` seconds a node picks a random key, asks each of its
unique fingers to run a lookup for that key, clusters the responses by
answer, and emits a ``consistency`` tuple: size of the largest agreeing
cluster divided by the number of lookups issued (1.0 = perfectly
consistent).  cs12 turns low values into ``consAlarm`` watchpoint
events.

Normalizations against the paper's listing (whose ``materialize`` keys
would collapse distinct probes): per-probe tables are keyed by probe or
request ID; everything else is verbatim.
"""

from __future__ import annotations

from repro.monitors.base import Monitor

CONSISTENCY_SOURCE = """
materialize(conLookupTable, 100, 1000, keys(2,3)).
materialize(conRespTable, 100, 1000, keys(2,3)).
materialize(respCluster, 100, 1000, keys(2,3)).
materialize(maxCluster, 100, 1000, keys(2)).
materialize(lookupCluster, 100, 1000, keys(2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, tProbe),
    K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :-
    conProbe@NAddr(ProbeID, K, T), uniqueFinger@NAddr(FAddr, FID),
    ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :-
    conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs4 lookup@SrcAddr(K, NAddr, ReqID) :-
    conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :-
    lookupResults@NAddr(K, SID, SAddr, ReqID, Responder),
    conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :-
    conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :-
    respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :-
    conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :-
    periodic@NAddr(E, tTally), lookupCluster@NAddr(ProbeID, T, LookupCount),
    T < f_now() - tTally, maxCluster@NAddr(ProbeID, RespCount).
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :-
     consistency@NAddr(ProbeID, Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :-
     consistency@NAddr(ProbeID, Consistency),
     conLookupTable@NAddr(ProbeID, ReqID, T).
cs12 consAlarm@NAddr(PrID) :- consistency@NAddr(PrID, Cons),
     Cons < alarmThresh.
"""


class ConsistencyProbeMonitor(Monitor):
    """cs1-cs12 with the paper's defaults (probe 40 s, tally 20 s)."""

    def __init__(
        self,
        probe_period: float = 40.0,
        tally_period: float = 20.0,
        alarm_threshold: float = 0.5,
    ) -> None:
        super().__init__(
            name="consistency-probes",
            source=CONSISTENCY_SOURCE,
            alarm_events=["consistency", "consAlarm"],
            bindings={
                "tProbe": probe_period,
                "tTally": tally_period,
                "alarmThresh": alarm_threshold,
            },
        )
