"""Ring-partition census sampling (the split-ring forensic question).

A partitioned or evicted node eventually points its best successor at
itself — a one-node ring.  This monitor samples every node's successor
pointer on a timer:

- ``pt1`` emits one ``succSample`` per node per sample tick (the ring
  census: how many nodes currently hold a successor at all);
- ``pt2`` derives ``selfLoop`` when the sampled successor is the node
  itself — the local symptom of isolation.

The per-node symptoms are deliberately tiny; the population-wide
verdict ("how many nodes are isolated *right now*?") is the job of the
global aggregation layer (:mod:`repro.aggtree.monitors`), which counts
``selfLoop`` and ``succSample`` across the ring.  Standalone, this
class is an ordinary :class:`~repro.monitors.base.Monitor` whose
``selfLoop`` alarms surface per node.
"""

from __future__ import annotations

from repro.monitors.base import Monitor

PARTITION_SOURCE = """
pt1 succSample@NAddr(Me, SAddr, T) :- periodic@NAddr(E, tSample),
    bestSucc@NAddr(SID, SAddr), Me := NAddr, T := f_now().
pt2 selfLoop@NAddr(Me, T) :- succSample@NAddr(Me, SAddr, T), SAddr == Me.
"""


class PartitionMonitor(Monitor):
    """pt1-pt2: successor census with self-loop (isolation) alarms."""

    def __init__(self, sample_period: float = 15.0) -> None:
        super().__init__(
            name="partition-census",
            source=PARTITION_SOURCE,
            alarm_events=["selfLoop"],
            bindings={"tSample": sample_period},
        )
