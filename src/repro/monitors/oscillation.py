"""State-oscillation detectors (§3.1.3) — the recycled-dead-neighbor bug.

Three granularities, exactly as the paper develops them:

- **single oscillation** (os1-os2): a successor-insertion message
  (``sendPred`` / ``returnSucc``) carrying a node still remembered in
  ``faultyNode`` signals one oscillation;
- **repeat oscillation** (os3-os4): a 120 s window of ``oscill``
  proclamations is counted every 60 s; three or more for the same node
  raises ``repeatOscill``;
- **collaborative detection** (os5-os9): repeat oscillators are gossiped
  to ring neighbors; a node reported by more than ``chaoticThresh``
  neighborhood members is declared ``chaotic``.

Our Chord gossip messages carry the sender address (needed by the
snapshot monitor), so the os1/os2 patterns here have one more field than
the paper's listing; the logic is identical.
"""

from __future__ import annotations

from repro.monitors.base import Monitor

OSCILLATION_SOURCE = """
materialize(oscill, 120, infinity, keys(2,3)).
materialize(nbrOscill, 120, infinity, keys(2,3)).

os1 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1),
    sendPred@NAddr(SID, SAddr, Src), T := f_now().
os2 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1),
    returnSucc@NAddr(SID, SAddr, Src), T := f_now().

os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, tOscCheck),
    oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count),
    Count >= repeatThresh.

os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    succ@NAddr(SID, SAddr).
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    pred@NAddr(PID, PAddr), PAddr != "-".
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :-
    nbrOscill@NAddr(OscillAddr, ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count),
    Count > chaoticThresh.
"""


class OscillationMonitor(Monitor):
    """os1-os9 with the paper's thresholds as defaults."""

    def __init__(
        self,
        check_period: float = 60.0,
        repeat_threshold: int = 3,
        chaotic_threshold: int = 3,
    ) -> None:
        super().__init__(
            name="oscillation",
            source=OSCILLATION_SOURCE,
            alarm_events=["oscill", "repeatOscill", "chaotic"],
            bindings={
                "tOscCheck": check_period,
                "repeatThresh": repeat_threshold,
                "chaoticThresh": chaotic_threshold,
            },
        )
