"""Status-telemetry fan-in — the scale benchmark's monitoring load.

The paper's monitoring deployments all share one traffic shape: every
node periodically reports a small local observation to a collector,
which materializes the reports and periodically summarizes them.  The
per-node rules are trivial; the system-wide cost is dominated by the
*message fan-in* — thousands of tiny tuples per second converging on a
handful of collectors.  That is exactly the regime the batch-execution
kernel targets (``docs/SCALE.md``), so this monitor doubles as the
workload of ``benchmarks/bench_scale.py``: real OverLog rules, real
wire traffic, tunable rate.

``sr1`` samples the local clock every ``tStatus`` seconds and reports
it to the collector assigned per metric (the ``collectorOf`` table,
seeded by the deployment harness — sharding metrics across collectors
spreads the fan-in).  At the collector, ``sc1`` counts the live report
population every ``tSummary`` seconds and ``sc2`` raises ``staleReport``
for any node whose latest report is older than ``staleThresh`` — the
monitoring payoff: a node that stops reporting (crashed, partitioned,
overloaded) is flagged within one summary period.
"""

from __future__ import annotations

from repro.monitors.base import Monitor

STATUS_FLOW_SOURCE = """
materialize(collectorOf, infinity, 16, keys(2)).
materialize(status, {status_ttl}, infinity, keys(2,3)).

sr1 status@CAddr(NAddr, MetricId, T) :- periodic@NAddr(E, tStatus),
    collectorOf@NAddr(MetricId, CAddr), T := f_now().

sc1 statusPopulation@CAddr(count<*>) :- periodic@CAddr(E, tSummary),
    status@CAddr(NAddr, MetricId, T).

sc2 staleReport@CAddr(NAddr, MetricId, Age) :- periodic@CAddr(E, tSummary),
    status@CAddr(NAddr, MetricId, T), Age := f_now() - T,
    Age > staleThresh.
"""


class StatusFlowMonitor(Monitor):
    """Periodic per-node status reports fanning in to collectors.

    ``report_period`` is the per-node sampling interval (every metric a
    node carries reports on each firing); ``summary_period`` is how
    often collectors census their report table; ``stale_threshold`` is
    the report age that raises a ``staleReport`` alarm.  The report TTL
    defaults to three periods so a silenced node ages out rather than
    being counted forever.
    """

    def __init__(
        self,
        report_period: float = 0.5,
        summary_period: float = 10.0,
        stale_threshold: float = 5.0,
        report_ttl: float = None,
    ) -> None:
        if report_ttl is None:
            report_ttl = max(3.0 * report_period, stale_threshold * 2.0)
        super().__init__(
            name="status-flow",
            source=STATUS_FLOW_SOURCE.format(status_ttl=report_ttl),
            alarm_events=["staleReport"],
            bindings={
                "tStatus": report_period,
                "tSummary": summary_period,
                "staleThresh": stale_threshold,
            },
        )
