"""Monitor base machinery.

A :class:`Monitor` wraps an OverLog rule set with named alarm events.
Installing it on a set of nodes compiles the program once and returns a
:class:`MonitorHandle` whose ``alarms`` dict accumulates every alarm
tuple raised anywhere in the population — the Python-side equivalent of
the paper's "distributed watchpoints and triggers".
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.overlog.program import Program
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


class MonitorHandle:
    """Collected alarms from one monitor installation.

    Also the removal handle: :meth:`remove` deactivates the monitor's
    rules on every node (tables and their soft-state contents remain,
    per :meth:`repro.runtime.node.P2Node.uninstall`).
    """

    def __init__(
        self,
        monitor: "Monitor",
        nodes: List[P2Node],
        compiled: Optional[dict] = None,
    ) -> None:
        self.monitor = monitor
        self.nodes = nodes
        self.alarms: Dict[str, List[Tuple]] = {
            name: [] for name in monitor.alarm_events
        }
        self._compiled = compiled or {}
        self._subscriptions = []
        for node in nodes:
            for name in monitor.alarm_events:
                sink = self._make_sink(node, name)
                node.subscribe(name, sink)
                self._subscriptions.append((node, name, sink))
        self.removed = False

    def _make_sink(self, node: P2Node, name: str):
        """The subscription callback for one (node, alarm) pair.

        When the node carries a telemetry plane the alarm is also
        emitted as a ``monitor.alarm`` event, so exported traces show
        detections on the same timeline as the faults that caused them.
        """
        collected = self.alarms[name].append
        if node.obs is None:
            return collected
        obs = node.obs
        monitor_name = self.monitor.name
        node_label = str(node.address)

        def sink(tup: Tuple) -> None:
            collected(tup)
            obs.event(
                "monitor.alarm",
                monitor=monitor_name,
                event=name,
                node=node_label,
            )

        return sink

    def remove(self) -> None:
        """Uninstall the monitor's rules and stop collecting alarms."""
        if self.removed:
            return
        self.removed = True
        for node, name, sink in self._subscriptions:
            node.unsubscribe(name, sink)
        for node in self.nodes:
            compiled = self._compiled.get(node.address)
            if compiled is not None and compiled in node.programs:
                node.uninstall(compiled)

    def count(self, name: Optional[str] = None) -> int:
        """Alarms seen, for one event name or all of them."""
        if name is not None:
            return len(self.alarms[name])
        return sum(len(v) for v in self.alarms.values())

    def clear(self) -> None:
        for sink in self.alarms.values():
            sink.clear()

    def __repr__(self) -> str:
        counts = {k: len(v) for k, v in self.alarms.items()}
        return f"<MonitorHandle {self.monitor.name} alarms={counts}>"


class Monitor:
    """A named OverLog rule set with declared alarm events."""

    def __init__(
        self,
        name: str,
        source: str,
        alarm_events: Iterable[str],
        bindings: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.alarm_events = list(alarm_events)
        self.bindings = dict(bindings or {})

    def program(self) -> Program:
        """Compile the monitor's rules with its parameter bindings.

        Monitors install with ``role="monitor"``, so under overload
        protection their relations shed before application DATA does.
        """
        return Program.compile(
            self.source,
            name=self.name,
            bindings=self.bindings,
            role="monitor",
        )

    def install(self, nodes: Iterable[P2Node]) -> MonitorHandle:
        """Install on every node and return the alarm-collecting handle."""
        nodes = list(nodes)
        program = self.program()
        compiled = {node.address: node.install(program) for node in nodes}
        return MonitorHandle(self, nodes, compiled)
