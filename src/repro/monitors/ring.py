"""Ring well-formedness detectors (§3.1.1).

Active probing (rules rp1-rp3, verbatim from the paper): every
``tProbe`` seconds a node asks its predecessor for the predecessor's
best successor; if the reply is not the asking node, the ring link
between them is flawed and an ``inconsistentPred`` alarm is raised.

Passive checking (rule rp4): Chord's own ``stabilizeRequest`` messages
are sent to immediate successors by definition, so a recipient whose
predecessor differs from the sender raises the same alarm — at zero
added message cost, but only at stabilization rate (the trade-off the
paper discusses).
"""

from __future__ import annotations

from repro.monitors.base import Monitor

RING_PROBE_SOURCE = """
rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, tProbe),
    pred@NAddr(PID, PAddr), PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr),
    bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr(PAddr, Successor) :-
    respBestSucc@NAddr(PAddr, Successor), pred@NAddr(PID, PAddr),
    Successor != NAddr.
"""

PASSIVE_RING_SOURCE = """
rp4 inconsistentPred@NAddr(SomeAddr, PAddr) :-
    stabilizeRequest@NAddr(SomeID, SomeAddr), pred@NAddr(PID, PAddr),
    SomeAddr != PAddr.
"""

# The symmetric direction the paper mentions in passing ("Similar rules
# can also check that a node is its immediate successor's predecessor"):
# ask the successor for its predecessor; anything but ourselves means
# the forward edge is flawed.
SUCC_PROBE_SOURCE = """
rp5 reqPred@SAddr(NAddr) :- periodic@NAddr(E, tProbe),
    bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
rp6 respPred@ReqAddr(NAddr, PAddr) :- reqPred@NAddr(ReqAddr),
    pred@NAddr(PID, PAddr).
rp7 inconsistentSucc@NAddr(SAddr, Pred) :- respPred@NAddr(SAddr, Pred),
    bestSucc@NAddr(SID, SAddr), Pred != NAddr.
"""


class RingProbeMonitor(Monitor):
    """Active ring-link probing (rp1-rp3)."""

    def __init__(self, probe_period: float = 15.0) -> None:
        super().__init__(
            name="ring-probe",
            source=RING_PROBE_SOURCE,
            alarm_events=["inconsistentPred"],
            bindings={"tProbe": probe_period},
        )


class PassiveRingMonitor(Monitor):
    """Passive ring check piggybacking on stabilization (rp4)."""

    def __init__(self) -> None:
        super().__init__(
            name="ring-passive",
            source=PASSIVE_RING_SOURCE,
            alarm_events=["inconsistentPred"],
        )


class SuccessorProbeMonitor(Monitor):
    """Active probing of the forward edge (rp5-rp7): am I my
    successor's predecessor?"""

    def __init__(self, probe_period: float = 15.0) -> None:
        super().__init__(
            name="succ-probe",
            source=SUCC_PROBE_SOURCE,
            alarm_events=["inconsistentSucc"],
            bindings={"tProbe": probe_period},
        )
