"""Execution profiling by walking the trace graph backwards (§3.2).

Starting from a chosen response tuple, the ep rules follow the
``ruleExec`` causality chain backwards — hopping across nodes through
``tupleTable``'s (SrcAddr, SrcTID) identity — splitting the end-to-end
latency into three bins:

- **RuleT**  — time spent inside rule strands,
- **NetT**   — time spent crossing the network,
- **LocalT** — time spent between rules on the same node (queuing).

Deviations from the paper's listing, both documented in DESIGN.md:

- ep2 forwards the tuple's *source-local* ID (``SrcTID``) rather than
  the receiver-local ID, because the producing ``ruleExec`` row on the
  source node references the source's ID for the tuple (the paper's
  listing passes ``Curr``, which only resolves for local tuples);
- ep4's NetT/LocalT update had the two fields transposed in the paper;
- ep7 (an addition) reports when the walk reaches a tuple with no
  recorded producer — e.g. an injected lookup — so profiling also works
  for requests that did not originate from a traced rule.

Requires execution tracing to be enabled on the participating nodes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitors.base import Monitor, MonitorHandle
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple

PROFILING_SOURCE = """
ep1 trav@NAddr(TupleID, TupleID, TupleTime, 0, 0, 0) :-
    traceResp@NAddr(TupleID, TupleTime).
ep2 ruleBack@SrcAddr(ID, SrcTID, LastT, RuleT, NetT, LocalT, Local) :-
    trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT),
    tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec),
    Local := (LocSpec == SrcAddr).
ep3 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT,
    LocalT + LastT - OutT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, true),
    ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep4 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT + LastT - OutT,
    LocalT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, false),
    ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep5 trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT) :-
    forward@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Rule),
    Rule != stopRule.
ep6 report@NAddr(ID, RuleT, NetT, LocalT) :-
    forward@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, stopRule).
ep2b prodCount@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, count<*>) :-
     ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Local),
     ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep7 report@NAddr(ID, RuleT, NetT, LocalT) :-
    prodCount@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, C), C == 0.
"""


class ExecutionProfiler(Monitor):
    """ep1-ep7; ``stop_rule`` is the rule ID at which the walk ends
    (the paper uses cs2, the consistency-lookup origin)."""

    def __init__(self, stop_rule: str = "cs2") -> None:
        super().__init__(
            name="execution-profiler",
            source=PROFILING_SOURCE,
            alarm_events=["report"],
            bindings={"stopRule": stop_rule},
        )

    def profile_tuple(self, node: P2Node, tup: Tuple) -> Optional[int]:
        """Start a backward walk from ``tup`` as observed on ``node``.

        The walk's starting timestamp is when the tuple was actually
        observed (recovered from the earliest ruleExec row it triggered),
        so the first LocalT gap is real queuing time, not the delay
        between observation and the operator asking for a profile.

        Returns the tuple ID the walk starts from, or None if the node
        is not tracing / never memoized the tuple.
        """
        if node.registry is None:
            return None
        tid = node.registry.id_of(tup)
        observed_at = None
        if node.store.has("ruleExec"):
            times = [
                row.values[4]
                for row in node.store.get("ruleExec").scan()
                if row.values[2] == tid
            ]
            if times:
                observed_at = min(times)
        if observed_at is None:
            observed_at = node.work_clock()
        node.inject("traceResp", (node.address, tid, observed_at))
        return tid
