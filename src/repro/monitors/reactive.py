"""Higher-order monitoring: watchpoints that install more watchpoints.

§1.3 of the paper: "the results of such watchpoints ... are themselves
tuples which in turn can be the subject of queries.  This leads to
higher-order automatic tracing of distributed execution, whereby the
system can be programmed to react to events by installing new triggers
itself, for example to provide more detailed information about a
particular area of the system."

:class:`ReactiveWatchpoint` implements exactly that: it watches a named
alarm event across a node population and, when the alarm fires, installs
a *reaction monitor* — by default only on the node that raised the alarm
(zooming in), optionally on the whole population.  Each node gets the
reaction at most once, so a noisy alarm cannot pile up duplicate rules.

Example: escalate a failed consistency probe into fast ring probing::

    escalation = ReactiveWatchpoint(
        trigger_event="consAlarm",
        reaction_factory=lambda: RingProbeMonitor(probe_period=2.0),
    )
    escalation.arm(nodes)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.monitors.base import Monitor, MonitorHandle
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


class ReactiveWatchpoint:
    """Install a reaction monitor wherever (and when) an alarm fires."""

    def __init__(
        self,
        trigger_event: str,
        reaction_factory: Callable[[], Monitor],
        scope: str = "node",
        max_installs: Optional[int] = None,
    ) -> None:
        """``scope`` is "node" (install only on the alarming node) or
        "all" (install on every armed node on the first alarm).
        ``max_installs`` caps how many reactions may ever fire."""
        if scope not in ("node", "all"):
            raise ValueError(f"scope must be 'node' or 'all': {scope!r}")
        self.trigger_event = trigger_event
        self.reaction_factory = reaction_factory
        self.scope = scope
        self.max_installs = max_installs
        self.installed: Dict[str, MonitorHandle] = {}
        self.triggers_seen: List[Tuple] = []
        self._armed: Dict[str, P2Node] = {}

    def arm(self, nodes: Iterable[P2Node]) -> "ReactiveWatchpoint":
        """Subscribe to the trigger event on every node; returns self."""
        for node in nodes:
            self._armed[node.address] = node
            node.subscribe(
                self.trigger_event,
                lambda tup, _node=node: self._fired(_node, tup),
            )
        return self

    def _fired(self, node: P2Node, tup: Tuple) -> None:
        self.triggers_seen.append(tup)
        if self.max_installs is not None:
            if len(self.installed) >= self.max_installs:
                return
        if self.scope == "node":
            targets = [node]
        else:
            targets = list(self._armed.values())
        fresh = [t for t in targets if t.address not in self.installed]
        if not fresh:
            return
        monitor = self.reaction_factory()
        for target in fresh:
            self.installed[target.address] = monitor.install([target])

    def reaction_alarms(self, name: str) -> List[Tuple]:
        """All alarms of ``name`` collected by installed reactions."""
        out: List[Tuple] = []
        for handle in self.installed.values():
            out.extend(handle.alarms.get(name, ()))
        return out

    def __repr__(self) -> str:
        return (
            f"<ReactiveWatchpoint on {self.trigger_event!r} "
            f"installed={sorted(self.installed)}>"
        )
