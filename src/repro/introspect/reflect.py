"""Reflection: node state as queryable tables.

"Most of the state of a running P2 node (tables, rules, dataflow graph,
etc.) is reflected back to the system as tables, themselves queryable in
OverLog" (§2.1).  The :class:`Reflector` maintains:

- ``sysTable@N(Name, Lifetime, MaxSize, NumTuples, TotalInserts)``
- ``sysRule@N(RuleID, Program, StrandID, TriggerName, Source)``
- ``sysElement@N(StrandID, Position, Kind, Label, Invocations)``
- ``sysNode@N(Tables, Strands, LiveTuples, RuleExecutions)``

Rows refresh on a timer (and on demand via :meth:`refresh`), so OverLog
rules can watch the node's own evolution — e.g. alert when a table
exceeds a size, or when a rule stops firing.
"""

from __future__ import annotations

from typing import Any, List

from repro.overlog.ast import Materialize
from repro.overlog.types import INFINITY
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple

SYS_TABLE = "sysTable"
SYS_RULE = "sysRule"
SYS_ELEMENT = "sysElement"
SYS_NODE = "sysNode"

_REFLECTION_TABLES = (SYS_TABLE, SYS_RULE, SYS_ELEMENT, SYS_NODE)


class Reflector:
    """Maintains the sys* reflection tables on one node."""

    def __init__(self, node: P2Node, refresh_period: float = 5.0) -> None:
        self._node = node
        store = node.store
        self._sys_table = store.materialize(
            Materialize(SYS_TABLE, INFINITY, INFINITY, [2])
        )
        self._sys_rule = store.materialize(
            Materialize(SYS_RULE, INFINITY, INFINITY, [4])
        )
        self._sys_element = store.materialize(
            Materialize(SYS_ELEMENT, INFINITY, INFINITY, [2, 3])
        )
        self._sys_node = store.materialize(
            Materialize(SYS_NODE, INFINITY, INFINITY, [1])
        )
        if refresh_period > 0:
            self._timer = node.sim.every(
                refresh_period, self.refresh, start_delay=refresh_period
            )
        else:
            self._timer = None
        self.refresh()

    def refresh(self) -> None:
        """Re-publish all reflection rows from current node state."""
        node = self._node
        address = node.address

        for table in node.store.tables():
            if table.name in _REFLECTION_TABLES:
                continue
            lifetime = (
                -1 if table.lifetime is INFINITY else float(table.lifetime)
            )
            size = -1 if table.max_size is INFINITY else int(table.max_size)
            self._sys_table.insert(
                Tuple(
                    SYS_TABLE,
                    (
                        address,
                        table.name,
                        lifetime,
                        size,
                        len(table),
                        table.total_inserts,
                    ),
                )
            )

        for strand in node.strands:
            self._sys_rule.insert(
                Tuple(
                    SYS_RULE,
                    (
                        address,
                        strand.rule_id,
                        strand.program_name,
                        strand.strand_id,
                        strand.trigger_name,
                        strand.rule.source,
                    ),
                )
            )
            for position, element in enumerate(strand.elements()):
                self._sys_element.insert(
                    Tuple(
                        SYS_ELEMENT,
                        (
                            address,
                            strand.strand_id,
                            position,
                            element.kind,
                            element.label,
                            element.invocations,
                        ),
                    )
                )

        self._sys_node.insert(
            Tuple(
                SYS_NODE,
                (
                    address,
                    len(node.store.names()),
                    len(node.strands),
                    node.live_tuples(),
                    node.rule_executions,
                ),
            )
        )

    def dataflow_text(self) -> str:
        """A printable Figure-1-style rendering of the node's dataflow."""
        lines: List[str] = [f"dataflow for node {self._node.address}"]
        lines.append("  [network-in] -> [unmarshal] -> [queue] -> [demux]")
        for strand in self._node.strands:
            chain = " -> ".join(
                f"[{e.describe()}]" for e in strand.elements()
            )
            lines.append(f"  strand {strand.rule_id}: {chain}")
        lines.append("  [mux] -> [marshal] -> [network-out]")
        return "\n".join(lines)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
