"""The execution tracer: rule-level tracing into ``ruleExec`` (§2.1).

The planner's taps (strand hooks) deliver four signals — input observed,
precondition observed at a stage, output observed, stage completed — and
the tracer reconstructs rule executions from them using per-strand
*tracer records* with pipelined stage association, following §2.1.2:

- a record is associated with a contiguous range of pipeline stages
  (the stateful join elements it currently occupies);
- a new input reuses a record with no associated stages (or creates
  one) and associates it with stage 1;
- a precondition at stage *i* goes to the record currently occupying
  stage *i* (a record that just finished stage *i-1* is extended to
  *i*); any filled fields to the right of *i* are flushed, because
  tuples flow left-to-right through a strand;
- an output is attributed to the record deepest in the pipeline;
- when stage *i* completes, the record whose range starts at *i*
  advances; a record that advances past the last stage retires.

Each observed output produces the paper's normalized rows::

    ruleExec@N(Rule, CauseID, EffectID, InT, OutT, IsEvent)

one row with the triggering event as cause (IsEvent = true) and one per
filled precondition (IsEvent = false).  Rows reference tuples by their
``tupleTable`` IDs; reference counts are maintained via table observers
so tuple memos die with their last referring row.

Only completed executions are stored (the paper's "only store executions
that produce a valid output" optimization), and the ruleExec table is
bounded (the "fixed number of execution records" optimization).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.overlog.ast import Materialize
from repro.runtime.node import P2Node
from repro.runtime.strand import RuleStrand, TraceHooks
from repro.runtime.tuples import Tuple
from repro.introspect.tuple_table import TUPLE_TABLE, TupleRegistry

RULE_EXEC = "ruleExec"

_META_TABLES = (RULE_EXEC, TUPLE_TABLE)


class _Record:
    """One tracer record: the observations for one in-flight execution."""

    __slots__ = ("input_id", "input_time", "precs", "lo", "hi")

    def __init__(self) -> None:
        self.input_id: Optional[int] = None
        self.input_time = 0.0
        self.precs: Dict[int, tuple] = {}
        # Associated stage range [lo, hi]; empty when lo > hi.
        self.lo = 1
        self.hi = 0

    @property
    def empty_range(self) -> bool:
        return self.lo > self.hi


class Tracer(TraceHooks):
    """Per-node execution tracer writing the ``ruleExec`` table."""

    def __init__(
        self,
        node: P2Node,
        lifetime: Any = 120.0,
        max_entries: Any = 5000,
        tuple_entries: Any = 100000,
    ) -> None:
        self._node = node
        self.registry = TupleRegistry(
            node, lifetime=lifetime, max_entries=tuple_entries
        )
        self._table = node.store.materialize(
            Materialize(RULE_EXEC, lifetime, max_entries, [2, 3, 4, 7])
        )
        self._table.on_insert.append(self._row_inserted)
        self._table.on_remove.append(self._row_removed)
        self._records: Dict[str, List[_Record]] = {}
        self._deferred_decrefs: List[int] = []
        self.executions_recorded = 0

        node.hooks = self
        node.registry = self.registry

    # ------------------------------------------------------------------
    # TraceHooks implementation

    def input_observed(self, strand: RuleStrand, tup: Tuple, when: float) -> None:
        if self._skip(strand):
            return
        self._node.work.charge("trace")
        records = self._records.setdefault(strand.strand_id, [])
        record = next((r for r in records if r.empty_range), None)
        if record is None:
            record = _Record()
            records.append(record)
        record.lo, record.hi = 1, 1
        record.input_id = self.registry.id_of(tup)
        record.input_time = when
        record.precs.clear()

    def precondition_observed(
        self, strand: RuleStrand, stage: int, tup: Tuple, when: float
    ) -> None:
        if self._skip(strand):
            return
        self._node.work.charge("trace")
        records = self._records.get(strand.strand_id, [])
        record = next(
            (r for r in records if r.lo <= stage <= r.hi), None
        )
        if record is None:
            record = next((r for r in records if r.hi == stage - 1), None)
            if record is not None:
                record.hi = stage
        if record is None:
            return
        record.precs[stage] = (self.registry.id_of(tup), when)
        for later in [s for s in record.precs if s > stage]:
            del record.precs[later]

    def output_observed(self, strand: RuleStrand, tup: Tuple, when: float) -> None:
        if self._skip(strand):
            return
        self._node.work.charge("trace")
        records = self._records.get(strand.strand_id, [])
        candidates = [r for r in records if r.input_id is not None]
        if not candidates:
            return
        record = max(candidates, key=lambda r: r.hi)
        effect_id = self.registry.id_of(tup)
        rule_id = strand.rule_id
        address = self._node.address
        rows = [
            Tuple(
                RULE_EXEC,
                (
                    address,
                    rule_id,
                    record.input_id,
                    effect_id,
                    record.input_time,
                    when,
                    True,
                ),
            )
        ]
        for stage in sorted(record.precs):
            prec_id, prec_time = record.precs[stage]
            rows.append(
                Tuple(
                    RULE_EXEC,
                    (
                        address,
                        rule_id,
                        prec_id,
                        effect_id,
                        prec_time,
                        when,
                        False,
                    ),
                )
            )
        for row in rows:
            self._table.insert(row)
        self.executions_recorded += 1

    def stage_completed(self, strand: RuleStrand, stage: int) -> None:
        if self._skip(strand):
            return
        records = self._records.get(strand.strand_id, [])
        record = next((r for r in records if r.lo == stage), None)
        if record is None:
            return
        record.lo = stage + 1
        if record.lo > strand.num_stages:
            records.remove(record)
        else:
            # Completing stage i moves the execution *into* stage i+1,
            # even before any stage-i+1 precondition is observed —
            # otherwise the record's range would go empty and the next
            # input would steal it (losing the in-flight execution).
            record.hi = max(record.hi, record.lo)

    # ------------------------------------------------------------------
    # Reference counting via table observers

    def _row_inserted(self, row: Tuple, outcome) -> None:
        self.registry.incref(row.values[2])
        self.registry.incref(row.values[3])
        # Settle decrefs deferred from a same-key replacement, now that
        # the replacing row holds its references.
        while self._deferred_decrefs:
            self.registry.decref(self._deferred_decrefs.pop())

    def _row_removed(self, row: Tuple, reason) -> None:
        from repro.runtime.table import RemoveReason

        if reason == RemoveReason.REPLACED:
            # The replacing insert is notified right after this removal;
            # decrementing now would transiently zero the refcount and
            # discard memos the new row still references.
            self._deferred_decrefs.append(row.values[2])
            self._deferred_decrefs.append(row.values[3])
            return
        self.registry.decref(row.values[2])
        self.registry.decref(row.values[3])

    # ------------------------------------------------------------------

    def _skip(self, strand: RuleStrand) -> bool:
        """Never trace rules triggered by the trace tables themselves —
        tracing a ruleExec-triggered rule would write more ruleExec rows
        and recurse forever."""
        return strand.trigger_name in _META_TABLES

    def pending_records(self, strand_id: str) -> int:
        return len(self._records.get(strand_id, []))


def enable_tracing(
    node: P2Node,
    lifetime: Any = 120.0,
    max_entries: Any = 5000,
    tuple_entries: Any = 100000,
) -> Tracer:
    """Switch on execution logging for ``node`` (the §4 'logging' knob)."""
    return Tracer(
        node,
        lifetime=lifetime,
        max_entries=max_entries,
        tuple_entries=tuple_entries,
    )
