"""Introspection: reflection, event logging, and execution tracing (§2.1).

Everything a node knows about itself is reflected into queryable tables:

- :mod:`repro.introspect.reflect` — the ``sysTable`` / ``sysRule`` /
  ``sysElement`` / ``sysNode`` reflection tables (the dataflow graph of
  Figure 1, as data);
- :mod:`repro.introspect.logger` — the event log: tuple arrivals and
  table changes buffered into bounded P2 tables;
- :mod:`repro.introspect.tuple_table` — the ``tupleTable``: node-unique
  tuple IDs, memoization, cross-network identity (source address +
  source tuple ID), and reference counting from ``ruleExec``;
- :mod:`repro.introspect.tracer` — the execution tracer: per-strand
  tracer records with pipelined stage association (§2.1.2) feeding the
  normalized ``ruleExec`` table.

``enable_tracing(node)`` is the one-call entry point, corresponding to
the paper's "execution logging" switch whose cost §4 measures.
"""

from repro.introspect.tuple_table import TupleRegistry
from repro.introspect.tracer import Tracer, enable_tracing
from repro.introspect.reflect import Reflector
from repro.introspect.logger import EventLogger

__all__ = [
    "TupleRegistry",
    "Tracer",
    "enable_tracing",
    "Reflector",
    "EventLogger",
]
