"""The ``tupleTable``: tuple identity, memoization, and refcounting.

Each node assigns node-unique IDs to the tuples it observes (tuples are
immutable, so identity is content-addressed per node).  The mapping is
exposed as the queryable ``tupleTable`` relation with the paper's
schema::

    tupleTable@NAddr(LocalID, SrcAddr, SrcTID, LocSpec)

- ``SrcAddr``/``SrcTID`` tie a received tuple to its identity on the
  sending node (the sender piggybacks its local ID on the wire);
- ``LocSpec`` is where the tuple lives — the destination for sent
  tuples, the local address otherwise.

Rows are reference-counted by ``ruleExec`` entries: a row (and its
memoized contents) is discarded when the last referring ``ruleExec``
row is removed, or when its own lifetime expires — exactly the paper's
flushing policy.  tupleTable rows are not themselves registered in the
tupleTable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple as PyTuple

from repro.overlog.ast import Materialize
from repro.overlog.types import INFINITY
from repro.runtime.node import P2Node
from repro.runtime.table import RemoveReason
from repro.runtime.tuples import Tuple

TUPLE_TABLE = "tupleTable"


class TupleRegistry:
    """Per-node tuple identity and the backing ``tupleTable`` relation."""

    def __init__(
        self,
        node: P2Node,
        lifetime: Any = 120.0,
        max_entries: Any = 100000,
    ) -> None:
        self._node = node
        self._table = node.store.materialize(
            Materialize(TUPLE_TABLE, lifetime, max_entries, [2])
        )
        self._table.on_remove.append(self._row_removed)
        self._ids: Dict[Tuple, int] = {}
        self._memo: Dict[int, Tuple] = {}
        self._refs: Dict[int, int] = {}
        self._counter = 0
        # (src, wire mid) pairs already accounted for: a retransmitted
        # or fabric-duplicated message must not re-write tupleTable rows
        # (each re-write replaces the row and re-fires its observers —
        # double-counting the arrival in every downstream monitor).
        self._seen_mids: Set[PyTuple] = set()
        self.duplicates_ignored = 0
        #: Observers of identity-row writes: ``(tid, src, src_tid,
        #: loc_spec, tup)`` per ``tupleTable`` row written, where
        #: ``tup`` is the memoized contents.  The forensic event store
        #: (:mod:`repro.store`) taps this to persist tuple identity and
        #: payloads beyond the in-memory ring's lifetime.
        self.on_register: List[Callable[[int, Any, Any, Any, Tuple], None]] = []

    # ------------------------------------------------------------------
    # Identity

    def ensure(self, tup: Tuple, loc_spec: Any) -> int:
        """Get-or-assign the local ID of ``tup`` (a no-op for tupleTable
        rows themselves, which are never registered)."""
        if tup.name == TUPLE_TABLE:
            return -1
        tid = self._ids.get(tup)
        if tid is not None:
            return tid
        self._counter += 1
        tid = self._counter
        self._ids[tup] = tid
        self._memo[tid] = tup
        self._refs[tid] = 0
        self._write_row(tid, self._node.address, tid, loc_spec)
        return tid

    def id_of(self, tup: Tuple) -> int:
        """The local ID of ``tup``, assigning one if needed."""
        return self.ensure(tup, loc_spec=tup.location)

    def peek(self, tup: Tuple) -> Optional[int]:
        """The local ID of ``tup`` if it is currently registered.

        Unlike :meth:`id_of` this never mints a fresh ID, so callers
        can distinguish "this node has forgotten the tuple" (rotation,
        restart) and fall back to the durable store's identity records.
        """
        return self._ids.get(tup)

    def on_arrival(
        self,
        tup: Tuple,
        src: Optional[str],
        src_tid: Optional[int],
        mid: Optional[int] = None,
    ) -> int:
        """Register a tuple received from the network.

        Records the sender's address and the sender's local ID for it,
        which is what lets distributed trace walks (§3.2) hop from the
        receiving node back to the rule execution that produced the
        tuple on the sender.

        ``mid`` is the sender's wire-level message id.  A (src, mid)
        pair seen before marks a retransmission or fabric duplicate of
        a message already registered: the existing local ID is returned
        and no tupleTable row is re-written, so duplicates do not
        double-count in the refcount path or re-fire row observers.
        """
        if tup.name == TUPLE_TABLE:
            return -1
        if src is not None and mid is not None:
            if (src, mid) in self._seen_mids:
                self.duplicates_ignored += 1
                tid = self._ids.get(tup)
                return tid if tid is not None else self.ensure(
                    tup, loc_spec=tup.location
                )
            self._seen_mids.add((src, mid))
        tid = self.ensure(tup, loc_spec=tup.location)
        if src is not None and src_tid is not None:
            self._write_row(tid, src, src_tid, tup.location)
        return tid

    def on_send(self, tup: Tuple, destination: str) -> int:
        """Register that ``tup`` was sent; returns the local ID to ship."""
        if tup.name == TUPLE_TABLE:
            return -1
        tid = self.ensure(tup, loc_spec=destination)
        self._write_row(tid, self._node.address, tid, destination)
        return tid

    def lookup(self, tid: int) -> Optional[Tuple]:
        """The memoized tuple for a local ID, if still retained."""
        return self._memo.get(tid)

    def source_of(self, tid: int) -> Optional[tuple]:
        """(SrcAddr, SrcTID) recorded for a local ID, if retained."""
        row = self._table.lookup_key((tid,))
        if row is None:
            return None
        return row.values[2], row.values[3]

    # ------------------------------------------------------------------
    # Reference counting (driven by ruleExec observers)

    def incref(self, tid: int) -> None:
        if tid in self._refs:
            self._refs[tid] += 1

    def decref(self, tid: int) -> None:
        count = self._refs.get(tid)
        if count is None:
            return
        count -= 1
        self._refs[tid] = count
        if count <= 0:
            self._discard(tid)

    def _discard(self, tid: int) -> None:
        tup = self._memo.pop(tid, None)
        self._refs.pop(tid, None)
        if tup is not None:
            self._ids.pop(tup, None)
        row = self._table.lookup_key((tid,))
        if row is not None:
            self._table.delete(row)

    def _row_removed(self, row: Tuple, reason: RemoveReason) -> None:
        # TTL expiry / eviction of a tupleTable row drops the memo too
        # (the paper's "or times out").  DELETED comes from _discard and
        # REPLACED from metadata updates; both keep the memo.
        if reason in (RemoveReason.EXPIRED, RemoveReason.EVICTED):
            tid = row.values[1]
            tup = self._memo.pop(tid, None)
            self._refs.pop(tid, None)
            if tup is not None:
                self._ids.pop(tup, None)

    # ------------------------------------------------------------------

    def _write_row(
        self, tid: int, src: Any, src_tid: Any, loc_spec: Any
    ) -> None:
        row = Tuple(
            TUPLE_TABLE,
            (self._node.address, tid, src, src_tid, loc_spec),
        )
        self._table.insert(row)
        if self.on_register:
            tup = self._memo.get(tid)
            for callback in list(self.on_register):
                callback(tid, src, src_tid, loc_spec, tup)

    def retained(self) -> int:
        """Number of memoized tuples currently held."""
        return len(self._memo)

    def resume_from(self, counter: int) -> None:
        """Advance the tid counter past ``counter`` (crash-recovery:
        replayed ``tupleTable`` rows keep their pre-crash IDs, so new
        assignments must start above the replayed maximum)."""
        if counter > self._counter:
            self._counter = counter
