"""Event logging: system events buffered into queryable P2 tables.

§2.1: "We extend this principle further to the logging of system events
such as arrival of a tuple or removal of a tuple from a table.  Log
entries are tuples stored (more precisely, buffered) in P2 tables."

:class:`EventLogger` maintains two bounded log relations:

- ``tupleLog@N(Seq, Time, Name, Repr)`` — one row per locally delivered
  tuple (message arrivals, local events, periodic firings);
- ``tableLog@N(Seq, Time, Table, Op, Repr)`` — one row per table change
  (insert / replace / delete / expire / evict).

Being ordinary tables, both can be joined from OverLog monitoring rules
— the "querying P2 logs in P2 itself" the paper found so convenient.
"""

from __future__ import annotations

from typing import Any

from repro.overlog.ast import Materialize
from repro.runtime.node import P2Node
from repro.runtime.table import InsertOutcome, RemoveReason, Table
from repro.runtime.tuples import Tuple

TUPLE_LOG = "tupleLog"
TABLE_LOG = "tableLog"

_INTERNAL = (TUPLE_LOG, TABLE_LOG, "ruleExec", "tupleTable")


class EventLogger:
    """Buffers node events into the tupleLog / tableLog relations."""

    def __init__(
        self,
        node: P2Node,
        lifetime: Any = 120.0,
        capacity: Any = 2000,
    ) -> None:
        self._node = node
        self._tuple_log = node.store.materialize(
            Materialize(TUPLE_LOG, lifetime, capacity, [2])
        )
        self._table_log = node.store.materialize(
            Materialize(TABLE_LOG, lifetime, capacity, [2])
        )
        self._seq = 0
        self.enabled = True

        node.on_deliver.append(self._tuple_delivered)
        for table in node.store.tables():
            self._observe(table)
        node.store.on_create.append(self._observe)

    def _observe(self, table: Table) -> None:
        if table.name in _INTERNAL:
            return
        table.on_insert.append(
            lambda tup, outcome, _t=table: self._table_changed(
                _t.name, outcome.value, tup
            )
        )
        table.on_remove.append(
            lambda tup, reason, _t=table: self._table_changed(
                _t.name, reason.value, tup
            )
        )

    def _tuple_delivered(self, tup: Tuple) -> None:
        if not self.enabled or tup.name in _INTERNAL:
            return
        self._seq += 1
        self._node.work.charge("trace")
        self._tuple_log.insert(
            Tuple(
                TUPLE_LOG,
                (
                    self._node.address,
                    self._seq,
                    self._node.work_clock(),
                    tup.name,
                    repr(tup),
                ),
            )
        )

    def _table_changed(self, table_name: str, op: str, tup: Tuple) -> None:
        if not self.enabled:
            return
        self._seq += 1
        self._node.work.charge("trace")
        self._table_log.insert(
            Tuple(
                TABLE_LOG,
                (
                    self._node.address,
                    self._seq,
                    self._node.work_clock(),
                    table_name,
                    op,
                    repr(tup),
                ),
            )
        )

    def resume_from(self, seq: int) -> None:
        """Advance the log sequence past ``seq`` (crash-recovery: log
        rows replayed from the durable image keep their pre-crash
        sequence numbers, so fresh entries must sort after them)."""
        if seq > self._seq:
            self._seq = seq
