"""Causal-chain reconstruction from the trace tables.

``trace_back`` walks the event-causality spine of a tuple: for the
current tuple, find the ``ruleExec`` row (IsEvent = true) whose effect
it is, step to the cause tuple, and — when the cause arrived over the
network — hop to the sending node via ``tupleTable``'s (SrcAddr,
SrcTID).  The result is the chain of rule executions, newest first,
exactly what the paper's ep rules accumulate on-line.

The in-memory trace tables are bounded rings, so a long-lived system
eventually rotates the very rows an investigation needs.  Passing a
:class:`~repro.store.store.ForensicStore` as ``store`` makes every
lookup fall back to the durable segments when memory comes up empty —
producer rows, cross-node source hops, preconditions, and memoized
tuple contents alike — so a walk that starts on a live node can finish
in last week's history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


@dataclass
class Precondition:
    """A table row whose existence allowed a rule execution to fire."""

    tuple_id: int
    contents: Optional[Tuple]  # memoized contents, if still retained
    fetched_at: float


@dataclass
class CausalLink:
    """One step: ``rule`` on ``node`` turned ``cause`` into ``effect``.

    ``preconditions`` are the joined table rows recorded by the tracer
    (ruleExec rows with IsEvent = false) — §3.4's suggestion that a
    trace walk can "trace back individual preconditions of the
    execution trace (e.g., specific successor tuples)".
    """

    node: str
    rule: str
    cause_id: int
    effect_id: int
    in_time: float
    out_time: float
    cause: Optional[Tuple]   # memoized contents, if still retained
    effect: Optional[Tuple]
    crossed_network: bool    # effect was shipped to another node
    preconditions: List[Precondition] = None


def trace_back(
    nodes: Dict[str, P2Node],
    start_node: str,
    tup: Tuple,
    max_depth: int = 100,
    store=None,
) -> List[CausalLink]:
    """Walk the causal spine of ``tup`` backwards across nodes.

    ``nodes`` maps address -> node (all must have tracing enabled).
    Returns links newest-first; an empty list means the tuple has no
    recorded producer on ``start_node`` (e.g. it was injected).

    With ``store``, any link memory no longer holds — its ring rotated,
    its memo was flushed, the node crashed — is read from the durable
    store instead; the walk can even hop through addresses that no
    longer exist in ``nodes``.
    """
    chain: List[CausalLink] = []
    address = start_node
    node = nodes.get(address)
    current_id = None
    if node is not None and node.registry is not None:
        current_id = node.registry.peek(tup)
    if current_id is None and store is not None:
        # The node is gone or its registry rotated the tuple away;
        # resolve the identity from the durable records instead.
        from repro.store import format as fmt

        current_id = store.tid_of(address, fmt.tuple_payload(tup))
    if current_id is None:
        # Nobody knows this tuple — not the live registry, not the
        # store.  Minting a fresh id here would pollute the registry
        # with a historyless entry, so just report an empty chain.
        return chain
    crossed = False

    for _ in range(max_depth):
        values = _producer_values(node, store, address, current_id)
        if values is None:
            # Maybe the tuple arrived over the network: hop to its source.
            source = None
            if node is not None and node.registry is not None:
                source = node.registry.source_of(current_id)
            if source is None and store is not None:
                source = store.source_of(address, current_id)
            if source is None:
                break
            src_addr, src_tid = source
            if src_addr == address and src_tid == current_id:
                break
            next_node = nodes.get(src_addr)
            if (next_node is None or next_node.registry is None) and (
                store is None
            ):
                break
            node = next_node
            address = src_addr
            current_id = src_tid
            crossed = True
            continue
        _, rule, cause_id, effect_id, in_t, out_t, _ = values
        chain.append(
            CausalLink(
                node=address,
                rule=rule,
                cause_id=cause_id,
                effect_id=effect_id,
                in_time=in_t,
                out_time=out_t,
                cause=_contents(node, store, address, cause_id),
                effect=_contents(node, store, address, effect_id),
                crossed_network=crossed,
                preconditions=_preconditions_of(
                    node, store, address, rule, effect_id
                ),
            )
        )
        crossed = False
        current_id = cause_id
    return chain


def _contents(
    node: Optional[P2Node], store, address: str, tid: int
) -> Optional[Tuple]:
    """Memoized tuple contents, falling back to the store's payload."""
    if node is not None and node.registry is not None:
        tup = node.registry.lookup(tid)
        if tup is not None:
            return tup
    if store is not None:
        from repro.store import format as fmt

        return fmt.payload_tuple(store.contents_of(address, tid))
    return None


def _preconditions_of(
    node: Optional[P2Node], store, address: str, rule: str, effect_id: int
):
    """Precondition rows (IsEvent=false) of one rule execution."""
    out: List[Precondition] = []
    seen = set()
    if node is not None and node.store.has("ruleExec"):
        for row in node.store.get("ruleExec").scan():
            _, r, cause_id, eid, in_t, _, is_event = row.values
            if r == rule and eid == effect_id and is_event is False:
                seen.add(cause_id)
                out.append(
                    Precondition(
                        tuple_id=cause_id,
                        contents=_contents(node, store, address, cause_id),
                        fetched_at=in_t,
                    )
                )
    if store is not None:
        for edge in store.edges_to(address, effect_id):
            if edge["ev"] or edge["r"] != rule or edge["c"] in seen:
                continue
            seen.add(edge["c"])
            out.append(
                Precondition(
                    tuple_id=edge["c"],
                    contents=_contents(node, store, address, edge["c"]),
                    fetched_at=edge["ti"],
                )
            )
    return out


def dependencies(chain: List[CausalLink], name: str) -> List[Tuple]:
    """All precondition tuples named ``name`` anywhere in a chain.

    §3.4's oscillator forensics: given a lookup's chain, ask which
    ``succ``/``finger`` rows it depended on, then check those against
    the oscillation reports.
    """
    out: List[Tuple] = []
    for link in chain:
        for precondition in link.preconditions or ():
            contents = precondition.contents
            if contents is not None and contents.name == name:
                out.append(contents)
    return out


def _producer_values(
    node: Optional[P2Node], store, address: str, effect_id: int
):
    """The IsEvent=true producer row values for ``effect_id``.

    Memory first (the live ring); then the store, where the *latest*
    recorded event edge wins — matching the ring's replace-on-repeat
    semantics so memory-backed and store-backed walks agree while both
    still hold the row.
    """
    if node is not None and node.store.has("ruleExec"):
        for row in node.store.get("ruleExec").scan():
            if row.values[3] == effect_id and row.values[6] is True:
                return row.values
    if store is not None:
        best = None
        for edge in store.edges_to(address, effect_id):
            if not edge["ev"]:
                continue
            if best is None or edge["to"] >= best["to"]:
                best = edge
        if best is not None:
            return (
                address,
                best["r"],
                best["c"],
                best["e"],
                best["ti"],
                best["to"],
                True,
            )
    return None


def _producer_row(node: P2Node, effect_id: int):
    """The IsEvent=true ruleExec row whose effect is ``effect_id``."""
    if not node.store.has("ruleExec"):
        return None
    for row in node.store.get("ruleExec").scan():
        if row.values[3] == effect_id and row.values[6] is True:
            return row
    return None
