"""Causal-chain reconstruction from the trace tables.

``trace_back`` walks the event-causality spine of a tuple: for the
current tuple, find the ``ruleExec`` row (IsEvent = true) whose effect
it is, step to the cause tuple, and — when the cause arrived over the
network — hop to the sending node via ``tupleTable``'s (SrcAddr,
SrcTID).  The result is the chain of rule executions, newest first,
exactly what the paper's ep rules accumulate on-line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


@dataclass
class Precondition:
    """A table row whose existence allowed a rule execution to fire."""

    tuple_id: int
    contents: Optional[Tuple]  # memoized contents, if still retained
    fetched_at: float


@dataclass
class CausalLink:
    """One step: ``rule`` on ``node`` turned ``cause`` into ``effect``.

    ``preconditions`` are the joined table rows recorded by the tracer
    (ruleExec rows with IsEvent = false) — §3.4's suggestion that a
    trace walk can "trace back individual preconditions of the
    execution trace (e.g., specific successor tuples)".
    """

    node: str
    rule: str
    cause_id: int
    effect_id: int
    in_time: float
    out_time: float
    cause: Optional[Tuple]   # memoized contents, if still retained
    effect: Optional[Tuple]
    crossed_network: bool    # effect was shipped to another node
    preconditions: List[Precondition] = None


def trace_back(
    nodes: Dict[str, P2Node],
    start_node: str,
    tup: Tuple,
    max_depth: int = 100,
) -> List[CausalLink]:
    """Walk the causal spine of ``tup`` backwards across nodes.

    ``nodes`` maps address -> node (all must have tracing enabled).
    Returns links newest-first; an empty list means the tuple has no
    recorded producer on ``start_node`` (e.g. it was injected).
    """
    chain: List[CausalLink] = []
    node = nodes.get(start_node)
    if node is None or node.registry is None:
        return chain
    current_id = node.registry.id_of(tup)
    crossed = False

    for _ in range(max_depth):
        row = _producer_row(node, current_id)
        if row is None:
            # Maybe the tuple arrived over the network: hop to its source.
            source = node.registry.source_of(current_id)
            if source is None:
                break
            src_addr, src_tid = source
            if src_addr == node.address and src_tid == current_id:
                break
            next_node = nodes.get(src_addr)
            if next_node is None or next_node.registry is None:
                break
            node = next_node
            current_id = src_tid
            crossed = True
            continue
        _, rule, cause_id, effect_id, in_t, out_t, _ = row.values
        chain.append(
            CausalLink(
                node=node.address,
                rule=rule,
                cause_id=cause_id,
                effect_id=effect_id,
                in_time=in_t,
                out_time=out_t,
                cause=node.registry.lookup(cause_id),
                effect=node.registry.lookup(effect_id),
                crossed_network=crossed,
                preconditions=_preconditions_of(node, rule, effect_id),
            )
        )
        crossed = False
        current_id = cause_id
    return chain


def _preconditions_of(node: P2Node, rule: str, effect_id: int):
    """Precondition rows (IsEvent=false) of one rule execution."""
    out: List[Precondition] = []
    if not node.store.has("ruleExec"):
        return out
    for row in node.store.get("ruleExec").scan():
        _, r, cause_id, eid, in_t, _, is_event = row.values
        if r == rule and eid == effect_id and is_event is False:
            out.append(
                Precondition(
                    tuple_id=cause_id,
                    contents=node.registry.lookup(cause_id),
                    fetched_at=in_t,
                )
            )
    return out


def dependencies(chain: List[CausalLink], name: str) -> List[Tuple]:
    """All precondition tuples named ``name`` anywhere in a chain.

    §3.4's oscillator forensics: given a lookup's chain, ask which
    ``succ``/``finger`` rows it depended on, then check those against
    the oscillation reports.
    """
    out: List[Tuple] = []
    for link in chain:
        for precondition in link.preconditions or ():
            contents = precondition.contents
            if contents is not None and contents.name == name:
                out.append(contents)
    return out


def _producer_row(node: P2Node, effect_id: int):
    """The IsEvent=true ruleExec row whose effect is ``effect_id``."""
    if not node.store.has("ruleExec"):
        return None
    for row in node.store.get("ruleExec").scan():
        if row.values[3] == effect_id and row.values[6] is True:
            return row
    return None
