"""Latency breakdowns from causal chains.

Splits the end-to-end latency of a traced computation into the paper's
three bins — time inside rule strands, time crossing the network, and
time spent locally between rules — mirroring what the ep1-ep6 OverLog
rules accumulate on-line.  Tests use this to cross-check the on-line
profiler against an independent implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.causality import CausalLink


@dataclass
class LatencyBreakdown:
    """Accumulated time per bin, in (virtual) seconds."""

    rule_time: float = 0.0
    net_time: float = 0.0
    local_time: float = 0.0
    hops: int = 0

    @property
    def total(self) -> float:
        return self.rule_time + self.net_time + self.local_time


def latency_breakdown(
    chain: List[CausalLink], observed_at: float = None
) -> LatencyBreakdown:
    """Fold a newest-first causal chain into a latency breakdown.

    For each link, the rule's own execution time (out - in) goes to
    ``rule_time``.  The gap between a link's output and the downstream
    link's input goes to ``net_time`` when the tuple crossed the network
    and to ``local_time`` otherwise — the same attribution rules ep3/ep4
    implement.

    ``observed_at`` is when the final tuple was observed at its
    destination; passing it also accounts the last delivery hop (the
    gap between the newest link's output and the observation), matching
    the on-line profiler's totals.
    """
    out = LatencyBreakdown()
    if observed_at is not None and chain:
        newest = chain[0]
        gap = max(observed_at - newest.out_time, 0.0)
        if newest.crossed_network:
            out.net_time += gap
        else:
            out.local_time += gap
    for index, link in enumerate(chain):
        out.rule_time += max(link.out_time - link.in_time, 0.0)
        out.hops += 1
        if index > 0:
            downstream = chain[index - 1]
            gap = max(downstream.in_time - link.out_time, 0.0)
            # ``link.crossed_network`` marks that this link's effect was
            # shipped to the downstream link's node.
            if link.crossed_network:
                out.net_time += gap
            else:
                out.local_time += gap
    return out
