"""Offline forensic analysis over the trace tables.

Python-side counterparts to the OverLog trace walks of §3.2, for when a
human (or a test) wants the whole causal story at once rather than an
on-line traversal:

- :mod:`repro.analysis.causality` — reconstruct the cross-node causal
  chain that produced a tuple, from ``ruleExec`` + ``tupleTable``;
- :mod:`repro.analysis.forensics` — latency breakdowns (rule / network /
  local time) computed from a causal chain, used to cross-check the
  on-line ep-rule profiler.
"""

from repro.analysis.causality import CausalLink, dependencies, trace_back
from repro.analysis.forensics import LatencyBreakdown, latency_breakdown
from repro.analysis.snapshots import (
    SnapshotGraph,
    gather_snapshot,
    mutual_edges,
    ring_properties,
    single_points_of_failure,
    snapshot_statistics,
)

__all__ = [
    "CausalLink",
    "trace_back",
    "dependencies",
    "LatencyBreakdown",
    "latency_breakdown",
    "SnapshotGraph",
    "gather_snapshot",
    "ring_properties",
    "mutual_edges",
    "single_points_of_failure",
    "snapshot_statistics",
]
