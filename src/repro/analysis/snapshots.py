"""Global property detection on consistent snapshots (§3.3/§3.4).

"Many properties beyond consistency can be performed on thus obtained
consistent snapshots to compute statistics, detect graph properties,
identify vulnerabilities, etc."  This module is that toolbox: it
gathers one snapshot ID's state from every node into a global graph
and evaluates stable properties on it — properties that are only
meaningful on a *consistent* cut, which is exactly what Chandy-Lamport
provides.

Detectors:

- :func:`ring_properties` — is the snapped successor graph a single
  ring covering every participant?  (wrap count, cycle structure,
  orphaned nodes);
- :func:`mutual_edges` — the §3.1.1 invariant, globally: every node is
  its successor's predecessor *in the snapshot*;
- :func:`single_points_of_failure` — articulation points of the
  snapped routing graph (vulnerability identification);
- :func:`snapshot_statistics` — in/out-degree stats over snapped
  fingers (the "compute statistics" use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple as PyTuple

import networkx as nx

from repro.runtime.node import P2Node


@dataclass
class SnapshotGraph:
    """One snapshot ID's global state, gathered from all nodes."""

    snap_id: int
    succ_edges: Dict[str, str] = field(default_factory=dict)
    pred_edges: Dict[str, str] = field(default_factory=dict)
    finger_edges: List[PyTuple] = field(default_factory=list)
    participants: Set[str] = field(default_factory=set)

    def successor_digraph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self.participants)
        for src, dst in self.succ_edges.items():
            graph.add_edge(src, dst)
        return graph

    def routing_digraph(self) -> "nx.DiGraph":
        """Successor plus finger edges — the full routing graph."""
        graph = self.successor_digraph()
        for src, _position, dst in self.finger_edges:
            graph.add_edge(src, dst)
        return graph


def gather_snapshot(
    nodes: Iterable[P2Node], snap_id: int
) -> SnapshotGraph:
    """Collect snapshot ``snap_id``'s snapped state from every node."""
    graph = SnapshotGraph(snap_id=snap_id)
    for node in nodes:
        best = [
            t
            for t in node.query("snapBestSucc")
            if t.values[1] == snap_id
        ]
        if not best:
            continue  # this node has no state for that snapshot
        graph.participants.add(node.address)
        graph.succ_edges[node.address] = best[0].values[3]
        for row in node.query("snapPred"):
            if row.values[1] == snap_id and row.values[3] != "-":
                graph.pred_edges[node.address] = row.values[3]
        for row in node.query("snapFingers"):
            if row.values[1] == snap_id:
                graph.finger_edges.append(
                    (node.address, row.values[2], row.values[4])
                )
    return graph


@dataclass
class RingReport:
    """Outcome of the global ring-structure check."""

    is_single_ring: bool
    cycle: List[str]
    orphans: Set[str]         # participants not on the main cycle
    missing_edges: Set[str]   # participants with no snapped successor


def ring_properties(graph: SnapshotGraph) -> RingReport:
    """Is the snapped successor graph one ring over all participants?"""
    missing = graph.participants - set(graph.succ_edges)
    if not graph.succ_edges:
        return RingReport(False, [], set(graph.participants), missing)
    digraph = graph.successor_digraph()
    cycles = list(nx.simple_cycles(digraph))
    main_cycle = max(cycles, key=len) if cycles else []
    on_cycle = set(main_cycle)
    orphans = graph.participants - on_cycle
    is_ring = (
        not missing
        and len(cycles) == 1
        and on_cycle == graph.participants
    )
    return RingReport(is_ring, main_cycle, orphans, missing)


def mutual_edges(graph: SnapshotGraph) -> List[str]:
    """Violations of 'I am my successor's predecessor', on the cut.

    Returns human-readable violation strings (empty = invariant holds).
    """
    violations: List[str] = []
    for src, dst in sorted(graph.succ_edges.items()):
        claimed_pred = graph.pred_edges.get(dst)
        if claimed_pred != src:
            violations.append(
                f"{src} -> succ {dst}, but {dst}'s snapped pred is "
                f"{claimed_pred}"
            )
    return violations


def single_points_of_failure(graph: SnapshotGraph) -> Set[str]:
    """Articulation points of the undirected routing graph: nodes whose
    loss disconnects somebody (vulnerability identification)."""
    undirected = graph.routing_digraph().to_undirected()
    if undirected.number_of_nodes() < 3:
        return set()
    return set(nx.articulation_points(undirected))


@dataclass
class SnapshotStatistics:
    participants: int
    finger_edges: int
    mean_out_degree: float
    max_in_degree: int
    most_pointed_at: Optional[str]


def snapshot_statistics(graph: SnapshotGraph) -> SnapshotStatistics:
    """Degree statistics over the snapped routing graph."""
    routing = graph.routing_digraph()
    n = routing.number_of_nodes()
    in_degrees = dict(routing.in_degree())
    most = max(in_degrees, key=in_degrees.get) if in_degrees else None
    return SnapshotStatistics(
        participants=len(graph.participants),
        finger_edges=len(graph.finger_edges),
        mean_out_degree=(
            sum(d for _, d in routing.out_degree()) / n if n else 0.0
        ),
        max_in_degree=in_degrees.get(most, 0) if most else 0,
        most_pointed_at=most,
    )
