"""Batch-execution kernel: tick-at-a-time, node-grouped event dispatch.

The legacy loop (:meth:`repro.sim.simulator.Simulator.run_until`) pops
one event at a time and lets each delivery pump its node to fixpoint
before the next.  At a thousand nodes that per-tuple discipline is pure
overhead: every message is its own heap entry, its own callback frame,
its own decode, its own strand firing.

This kernel executes one *tick* at a time instead:

1. advance the clock to the earliest pending event time ``t`` (in tick
   mode every event sits on the tick grid);
2. drain **all** events at ``t`` in canonical order
   ``(priority, origin, origin_seq)``;
3. gather grouped events per *group* (the node that executes them) and
   hand each node its whole tick at once — batched delivery, deltaset
   strand firing, one pump;
4. treat ungrouped (control/harness) events as ordering barriers: the
   grouped events that canonically precede a control event are flushed
   to their executors before it runs, because control code can touch
   node state directly (injects, kills) and so *is* ordered relative
   to each node's own event stream.

Equivalence contract (docs/SCALE.md): within a tick, nodes interact
only through events scheduled for *later* ticks, and all per-message
randomness is drawn from per-entity streams, so regrouping a tick per
node cannot change any node's observable history.  The differential
battery (``tests/batchexec/``) pins this: per-tuple and batched runs of
every bundled program produce identical final tables, alarm streams,
and campaign verdicts.

``ExecutionConfig`` is the one knob surface:

- ``batch_size=1`` — compatibility mode: the legacy per-tuple loop
  runs, bit-identical to the pre-batch scheduler (with ``tick=0``) or
  in canonical tick order (with ``tick>0``).
- ``batch_size=None`` (default) — unbounded deltasets: a node fires
  each strand once over all of a tick's triggers.
- ``batch_size=k`` — deltasets are chunked to at most ``k`` triggers
  per firing; the Hypothesis battery checks chunking never changes
  fixpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Default tick width (seconds).  Matches the default one-way network
#: latency, so a message sent during tick ``t`` is delivered exactly at
#: tick ``t + 1`` and quantization does not stretch the fabric.
DEFAULT_TICK = 0.01


@dataclass(frozen=True)
class ExecutionConfig:
    """How a :class:`~repro.core.system.System` executes events.

    ``tick`` quantizes all scheduling onto a grid (required for
    batching; 0 keeps continuous time and implies the legacy loop).
    ``batch_size`` bounds one strand firing's deltaset; ``None`` means
    unbounded and ``1`` selects the per-tuple compatibility kernel.
    """

    batch_size: Optional[int] = None
    tick: float = DEFAULT_TICK

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1 or None: {self.batch_size}"
            )
        if self.tick < 0:
            raise SimulationError(f"tick must be non-negative: {self.tick}")
        if self.batched and self.tick <= 0:
            raise SimulationError("batched execution requires tick > 0")

    @property
    def batched(self) -> bool:
        """True when the batch kernel (not the legacy loop) runs."""
        return self.batch_size != 1

    @property
    def label(self) -> str:
        if not self.batched:
            return f"per-tuple(tick={self.tick:g})"
        size = "inf" if self.batch_size is None else str(self.batch_size)
        return f"batch(size={size},tick={self.tick:g})"


#: A group executor takes one tick's worth of that group's events.
GroupExecutor = Callable[[list], None]


class BatchKernel:
    """Tick-at-a-time event dispatch over a simulator's queue."""

    def __init__(self, sim) -> None:
        self._sim = sim
        self._executors: Dict[str, GroupExecutor] = {}
        #: Ticks executed (one per distinct event time processed).
        self.ticks = 0
        #: Largest single-tick event batch seen (for BENCH_scale).
        self.max_tick_events = 0
        #: Tick-barrier hooks, called with the tick time after all of a
        #: tick's events have run.  The forensic store registers here so
        #: its segment cuts align with tick boundaries instead of
        #: landing mid-tick between two events of the same instant.
        self.on_tick: List[Callable[[float], None]] = []

    def register_group(self, key: str, executor: GroupExecutor) -> None:
        """Route group ``key``'s per-tick events through ``executor``."""
        self._executors[str(key)] = executor

    def unregister_group(self, key: str) -> None:
        self._executors.pop(str(key), None)

    def run_until(self, when: float) -> None:
        sim = self._sim
        while True:
            t = sim._peek_time()
            if t is None or t > when:
                break
            events = sim._drain_tick(t)
            if not events:
                continue
            self.ticks += 1
            if len(events) > self.max_tick_events:
                self.max_tick_events = len(events)
            sim._count_event(len(events))
            groups: Dict[str, List] = {}
            for event in events:
                # An earlier event this tick may have cancelled a later
                # one (crash cancelling timers); honour it like the
                # legacy loop's lazy-cancellation pop does.
                if event.cancelled:
                    continue
                group = event.group
                if group is None:
                    # Control code can inject into or kill nodes, so a
                    # control event is ordered relative to each node's
                    # own stream: everything gathered so far sorts
                    # canonically before it and must run first.
                    self._flush(groups)
                    sim._set_origin("")
                    event.callback()
                else:
                    bucket = groups.get(group)
                    if bucket is None:
                        groups[group] = [event]
                    else:
                        bucket.append(event)
            self._flush(groups)
            for hook in self.on_tick:
                hook(t)
        sim._set_origin("")
        sim.clock.advance_to(when)

    def _flush(self, groups: Dict[str, List]) -> None:
        """Hand each group its gathered events, in stable address order.

        Node histories are interaction-free within a tick, so group
        order is unobservable; sorting makes it deterministic.
        """
        if not groups:
            return
        sim = self._sim
        executors = self._executors
        for key in sorted(groups):
            live = [e for e in groups[key] if not e.cancelled]
            if not live:
                continue
            sim._set_origin(key)
            executor = executors.get(key)
            if executor is not None:
                executor(live)
            else:
                for event in live:
                    if not event.cancelled:
                        event.callback()
        groups.clear()
