"""The discrete-event simulator driving all virtual nodes and channels.

Usage::

    sim = Simulator(seed=42)
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run_until(10.0)

Components receive the simulator at construction time and use
:meth:`schedule` / :meth:`schedule_at` for one-shot callbacks, or
:meth:`every` for fixed-period timers.  ``run_until`` processes events in
deterministic order and leaves the clock exactly at the requested time so
back-to-back runs compose.

Two execution regimes (docs/SCALE.md):

- **Legacy (tick=0)** — the continuous-time loop above, bit-identical
  to the pre-batch scheduler: every event fires at its exact scheduled
  instant in ``(time, priority, seq)`` order.
- **Tick mode (tick>0)** — scheduling quantizes onto a grid of
  ``tick``-second boundaries (always rounding to a *strictly future*
  boundary), so co-temporal work coalesces into discrete ticks.  Events
  additionally carry an *origin key*: the entity (node) whose
  processing created them, plus a per-origin sequence number.  Ordering
  within a tick is ``(priority, origin, origin_seq)`` — independent of
  how the previous tick's work was interleaved across entities, which
  is what lets the batched kernel regroup a tick per node without
  changing any node's observable event order.

When a :class:`~repro.sim.batch.BatchKernel` is installed (see
:meth:`use_batch_kernel`), ``run_until`` delegates to it; harness code
never needs to know which kernel is driving.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.rand import SimRandom

#: Origin key used for events created outside any entity's processing
#: turn (harness code, fault schedules, campaign probes).  The empty
#: string sorts before every node address, so control events at a tick
#: run before that tick's node work in both kernels.
GLOBAL_ORIGIN = ""


class Simulator:
    """Event loop over a virtual clock."""

    def __init__(self, seed: int = 0, tick: float = 0.0) -> None:
        if tick < 0:
            raise SimulationError(f"tick must be non-negative: {tick}")
        self.clock = Clock()
        self.random = SimRandom(seed)
        self.tick = tick
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0
        # Batch kernel (repro.sim.batch.BatchKernel) or None.
        self._kernel = None
        # Entity whose event is currently executing; schedules inherit
        # it as their origin key (tick mode only).
        self._origin = GLOBAL_ORIGIN
        self._origin_seqs: dict = {}
        self._timer_ids = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def det_order(self) -> bool:
        """True in tick mode: same-tick ordering is origin-canonical."""
        return self.tick > 0

    @property
    def events_processed(self) -> int:
        """Total events dispatched since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    @property
    def kernel(self):
        """The installed batch kernel, or None (legacy loop)."""
        return self._kernel

    def use_batch_kernel(self, kernel) -> None:
        """Route ``run_until`` through ``kernel`` from now on."""
        if self.tick <= 0:
            raise SimulationError("the batch kernel requires tick > 0")
        self._kernel = kernel

    # ------------------------------------------------------------------
    # Scheduling

    def _quantize(self, when: float) -> float:
        """Snap ``when`` onto the tick grid (strictly after ``now``).

        An event landing on the current instant is deferred one full
        tick: both kernels apply the same rule, so no event is ever
        added to a tick already being processed.
        """
        tick = self.tick
        # Robust grid snap: a value already (numerically) on the grid
        # stays, anything else rounds up.
        k = math.ceil(when / tick - 1e-9)
        when = k * tick
        now = self.clock.now
        if when <= now:
            when = (math.floor(now / tick + 1e-9) + 1) * tick
        return when

    def _push(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int,
        group: Optional[str],
    ) -> ScheduledEvent:
        if self.tick > 0:
            when = self._quantize(when)
            okey = self._origin
            seqs = self._origin_seqs
            oseq = seqs.get(okey, 0)
            seqs[okey] = oseq + 1
            return self._queue.push(
                when, callback, priority, okey=okey, oseq=oseq, group=group
            )
        return self._queue.push(when, callback, priority, group=group)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        group: Optional[str] = None,
    ) -> ScheduledEvent:
        """Run ``callback`` after ``delay`` seconds of virtual time.

        ``group`` names the entity that will execute the event (a node
        address); the batch kernel gathers each tick's events per group
        and the legacy loop ignores it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self._push(self.clock.now + delay, callback, priority, group)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = 0,
        group: Optional[str] = None,
    ) -> ScheduledEvent:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        return self._push(when, callback, priority, group)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        stream: str = "timers",
        group: Optional[str] = None,
    ) -> "PeriodicTimer":
        """Install a repeating timer; returns a handle with ``.cancel()``.

        ``start_delay`` defaults to one full period.  ``jitter`` adds a
        uniform random offset in ``[0, jitter)`` to each firing, drawn
        from a per-timer random stream derived from ``stream`` and the
        timer's creation index (deterministic under the master seed and
        independent of how other timers interleave).
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive: {period}")
        self._timer_ids += 1
        timer = PeriodicTimer(
            self, period, callback, jitter,
            f"{stream}.{self._timer_ids}" if jitter > 0 else stream,
            group,
        )
        first = period if start_delay is None else start_delay
        timer._arm(first)
        return timer

    # ------------------------------------------------------------------
    # Execution

    def run_until(self, when: float) -> None:
        """Process all events with time <= ``when``; leave clock at ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot run backwards: {when} < {self.clock.now}"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        if self._kernel is not None:
            self._running = True
            try:
                self._kernel.run_until(when)
            finally:
                self._running = False
            return
        self._running = True
        queue = self._queue
        clock = self.clock
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > when:
                    break
                event = queue.pop()
                assert event is not None
                clock.advance_to(event.time)
                self._events_processed += 1
                self._origin = event.group if event.group is not None else GLOBAL_ORIGIN
                event.callback()
            clock.advance_to(when)
        finally:
            self._origin = GLOBAL_ORIGIN
            self._running = False

    def run_for(self, duration: float) -> None:
        """Process events for ``duration`` seconds of virtual time."""
        self.run_until(self.clock.now + duration)

    # Internal: the batch kernel borrows these.

    def _drain_tick(self, time: float):
        self.clock.advance_to(time)
        return self._queue.drain_at(time)

    def _peek_time(self) -> Optional[float]:
        return self._queue.peek_time()

    def _count_event(self, n: int = 1) -> None:
        self._events_processed += n

    def _set_origin(self, okey: str) -> None:
        self._origin = okey


class PeriodicTimer:
    """Handle for a repeating timer created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        jitter: float,
        stream: str,
        group: Optional[str] = None,
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._stream = stream
        self._group = group
        self._cancelled = False
        self._pending: Optional[ScheduledEvent] = None

    def _arm(self, delay: float) -> None:
        if self._jitter > 0:
            delay += self._sim.random.stream(self._stream).uniform(0, self._jitter)
        self._pending = self._sim.schedule(delay, self._fire, group=self._group)

    def _fire(self) -> None:
        if self._cancelled:
            return
        # Re-arm first so the callback may cancel the timer.
        self._arm(self._period)
        self._callback()

    def cancel(self) -> None:
        """Stop the timer; any pending firing is dropped."""
        self._cancelled = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
