"""The discrete-event simulator driving all virtual nodes and channels.

Usage::

    sim = Simulator(seed=42)
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run_until(10.0)

Components receive the simulator at construction time and use
:meth:`schedule` / :meth:`schedule_at` for one-shot callbacks, or
:meth:`every` for fixed-period timers.  ``run_until`` processes events in
deterministic order and leaves the clock exactly at the requested time so
back-to-back runs compose.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.rand import SimRandom


class Simulator:
    """Event loop over a virtual clock."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.random = SimRandom(seed)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total events dispatched since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self._queue.push(self.clock.now + delay, callback, priority)

    def schedule_at(
        self, when: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        return self._queue.push(when, callback, priority)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        stream: str = "timers",
    ) -> "PeriodicTimer":
        """Install a repeating timer; returns a handle with ``.cancel()``.

        ``start_delay`` defaults to one full period.  ``jitter`` adds a
        uniform random offset in ``[0, jitter)`` to each firing, drawn from
        the named random stream (deterministic under the master seed).
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive: {period}")
        timer = PeriodicTimer(self, period, callback, jitter, stream)
        first = period if start_delay is None else start_delay
        timer._arm(first)
        return timer

    def run_until(self, when: float) -> None:
        """Process all events with time <= ``when``; leave clock at ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot run backwards: {when} < {self.clock.now}"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > when:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                self._events_processed += 1
                event.callback()
            self.clock.advance_to(when)
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Process events for ``duration`` seconds of virtual time."""
        self.run_until(self.clock.now + duration)


class PeriodicTimer:
    """Handle for a repeating timer created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        jitter: float,
        stream: str,
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._stream = stream
        self._cancelled = False
        self._pending: Optional[ScheduledEvent] = None

    def _arm(self, delay: float) -> None:
        if self._jitter > 0:
            delay += self._sim.random.stream(self._stream).uniform(0, self._jitter)
        self._pending = self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        # Re-arm first so the callback may cancel the timer.
        self._arm(self._period)
        self._callback()

    def cancel(self) -> None:
        """Stop the timer; any pending firing is dropped."""
        self._cancelled = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
