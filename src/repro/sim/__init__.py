"""Discrete-event simulation kernel.

The paper evaluates P2 on a real testbed of 21 processes; this package is
the deterministic substitute: a virtual clock, an ordered event queue, and
a seeded random source.  Everything above it (network, nodes, monitors)
schedules callbacks here, so entire distributed runs are reproducible from
a single seed.
"""

from repro.sim.clock import Clock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.simulator import Simulator
from repro.sim.rand import SimRandom

__all__ = ["Clock", "EventQueue", "ScheduledEvent", "Simulator", "SimRandom"]
