"""Ordered event queue for the discrete-event simulator.

Events are ordered by (time, priority, sequence number).  The sequence
number makes ordering total and deterministic: two events scheduled for
the same instant fire in scheduling order.  Priority lets the network
deliver messages before timers that fire at the same instant (or vice
versa) in a controlled way; the default priority of 0 is fine for nearly
all uses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled to run at a virtual time.

    Cancellation is lazy: :meth:`cancel` marks the event and the queue
    skips it on pop, so cancelling is O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True


class EventQueue:
    """A heap of :class:`ScheduledEvent` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> ScheduledEvent:
        """Schedule ``callback`` at virtual time ``time``; returns a handle."""
        event = ScheduledEvent(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
