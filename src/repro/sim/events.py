"""Ordered event queue for the discrete-event simulator.

Events are ordered by ``(time, priority, origin key, origin seq,
global seq)``.  The global sequence number makes ordering total and
deterministic: two events scheduled for the same instant fire in
scheduling order.  Priority lets the network deliver messages before
timers that fire at the same instant (or vice versa) in a controlled
way; the default priority of 0 is fine for nearly all uses.

The *origin* fields are the batch-execution kernel's determinism
contract (docs/SCALE.md).  When the simulator runs in tick mode it
stamps every event with the entity that created it (``okey`` — a node
address, or ``""`` for harness/control code) and a per-origin counter
(``oseq``).  Because each entity's own processing order is preserved by
both the per-tuple and the batched kernel, the pair ``(okey, oseq)`` is
identical across kernels, which makes same-tick ordering independent of
how the previous tick's work was interleaved globally.  In legacy mode
every event carries ``("", 0)`` there, so ordering falls through to the
global sequence number — bit-identical to the pre-batch scheduler.

The heap stores plain key tuples (C-speed comparisons) rather than
ordered dataclass instances; :class:`ScheduledEvent` is the cancellation
handle riding along in the last slot.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional


class ScheduledEvent:
    """A callback scheduled to run at a virtual time.

    Cancellation is lazy: :meth:`cancel` marks the event and the queue
    skips it on pop, so cancelling is O(1).  ``group`` names the entity
    that will *execute* the event (a node address for deliveries and
    node timers); the batch kernel gathers a tick's events per group.
    """

    __slots__ = (
        "time", "priority", "okey", "oseq", "seq",
        "callback", "group", "cancelled",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        okey: str = "",
        oseq: int = 0,
        group: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.okey = okey
        self.oseq = oseq
        self.seq = seq
        self.callback = callback
        self.group = group
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True

    def sort_key(self):
        """The queue's total order key (for tests and introspection)."""
        return (self.time, self.priority, self.okey, self.oseq, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScheduledEvent t={self.time} prio={self.priority} "
            f"origin={self.okey}:{self.oseq} seq={self.seq} "
            f"group={self.group!r}{' cancelled' if self.cancelled else ''}>"
        )


class EventQueue:
    """A heap of :class:`ScheduledEvent` with deterministic ordering."""

    def __init__(self) -> None:
        # Heap entries are (time, priority, okey, oseq, seq, event):
        # tuple comparison never reaches the event object because seq is
        # unique, and runs at C speed.
        self._heap: list = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry[5].cancelled)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        okey: str = "",
        oseq: int = 0,
        group: Optional[str] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at virtual time ``time``; returns a handle."""
        seq = next(self._seq)
        event = ScheduledEvent(time, priority, seq, callback, okey, oseq, group)
        heapq.heappush(self._heap, (time, priority, okey, oseq, seq, event))
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[5]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][5].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def drain_at(self, time: float) -> List[ScheduledEvent]:
        """Pop every live event whose time equals ``time``, in order.

        The returned list is in full queue order (priority, origin,
        seq) — the batch kernel's one tick's worth of work.  Events at
        earlier times must already have been drained; this never skips
        ahead past ``time``.
        """
        heap = self._heap
        batch: List[ScheduledEvent] = []
        while heap and heap[0][0] <= time:
            event = heapq.heappop(heap)[5]
            if not event.cancelled:
                batch.append(event)
        return batch
