"""Seeded random source for simulations.

A thin wrapper over :class:`random.Random` that namespaces independent
streams: each component asks for a named stream, so adding randomness to
one component does not perturb the draws seen by another.  This keeps
regression tests stable as the system grows.
"""

from __future__ import annotations

import random
import zlib


class SimRandom:
    """Deterministic, stream-partitioned randomness."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        The stream's seed mixes the master seed with a stable hash of the
        name (``zlib.crc32``, not Python's randomized ``hash``), so draws
        are reproducible across processes.
        """
        if name not in self._streams:
            mixed = (self._seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            self._streams[name] = random.Random(mixed)
        return self._streams[name]
