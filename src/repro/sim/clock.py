"""Virtual clock for the discrete-event simulator.

Time is a float in seconds, starting at 0.0.  Only the simulator advances
the clock; all other components hold a reference and read it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """A monotonically non-decreasing virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`SimulationError` if ``when`` is in the past; the
        simulator must never deliver events out of order.
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
