"""The :class:`System` façade: simulator + network + nodes in one object."""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.net.address import Address
from repro.net.network import Network, ReliableConfig
from repro.net.topology import ConstantLatency, LatencyModel
from repro.obs.hooks import ObsTraceHooks
from repro.obs.telemetry import Telemetry, wire_system_metrics
from repro.obs.export import (
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.overload.controller import OverloadConfig
from repro.overlog.program import Program
from repro.overlog.types import DEFAULT_ID_BITS
from repro.runtime.node import P2Node
from repro.runtime.strand import CompositeTraceHooks
from repro.sim.batch import BatchKernel, ExecutionConfig
from repro.sim.simulator import Simulator
from repro.introspect import EventLogger, Reflector, Tracer, enable_tracing
from repro.store.store import RINGS, ForensicStore, StoreConfig


class System:
    """A simulated deployment of P2 nodes.

    Owns the discrete-event simulator and the network; creates nodes and
    optionally wires their introspection (tracing / event logging /
    reflection).  All randomness derives from ``seed``.

    The telemetry plane (:mod:`repro.obs`) always exists — its metrics
    registry is a lazy read layer over counters the runtime maintains
    anyway — but spans and the flight recorder only activate with
    ``observability=True``; disabled, no hot path ever calls into it.
    """

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        id_bits: int = DEFAULT_ID_BITS,
        transport: str = "udp",
        reliable: Optional[ReliableConfig] = None,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        observability: bool = False,
        obs_capacity: int = 65536,
        obs_sample_rate: float = 1.0,
        overload: Optional[OverloadConfig] = None,
        execution: Optional[ExecutionConfig] = None,
        store: Optional[StoreConfig] = None,
        trace_lifetime: float = 120.0,
        trace_entries: int = 5000,
        log_capacity: int = 2000,
        tuple_entries: int = 100000,
    ) -> None:
        #: How events execute (:mod:`repro.sim.batch`).  ``None`` keeps
        #: the original continuous-time per-tuple loop, bit-identical to
        #: every pre-batch release.  An :class:`ExecutionConfig` puts the
        #: simulator in tick mode; its ``batch_size`` selects the batch
        #: kernel (default) or the per-tuple compatibility kernel (1).
        self.execution = execution
        self.sim = Simulator(
            seed=seed,
            tick=execution.tick if execution is not None else 0.0,
        )
        self.telemetry = Telemetry(
            clock=lambda: self.sim.now,
            enabled=observability,
            capacity=obs_capacity,
            sample_rate=obs_sample_rate,
            rng=(
                self.sim.random.stream("obs.sampling")
                if obs_sample_rate < 1.0
                else None
            ),
        )
        self.network = Network(
            self.sim,
            latency if latency is not None else ConstantLatency(0.01),
            loss_rate=loss_rate,
            transport=transport,
            reliable=reliable,
            reorder_rate=reorder_rate,
            duplicate_rate=duplicate_rate,
            obs=self.telemetry if observability else None,
        )
        #: The batch kernel driving ``run_until`` (None = legacy loop).
        self.kernel: Optional[BatchKernel] = None
        if execution is not None and execution.batched:
            self.kernel = BatchKernel(self.sim)
            self.sim.use_batch_kernel(self.kernel)
            if transport == "udp":
                self.network.enable_batch_fabric()
        self.id_bits = id_bits
        #: Overload-protection config applied to every node (None keeps
        #: all hot paths exactly as before; see :mod:`repro.overload`).
        self.overload = overload
        #: System-wide introspection-ring capacity defaults; ``add_node``
        #: arguments override them per node.
        self.trace_lifetime = trace_lifetime
        self.trace_entries = trace_entries
        self.log_capacity = log_capacity
        self.tuple_entries = tuple_entries
        #: The durable forensic event store (:mod:`repro.store`), or
        #: None.  Enabled, it taps every traced/logged node's hooks and
        #: keeps answering provenance queries after the rings rotate.
        self.store: Optional[ForensicStore] = None
        if store is not None:
            self.store = ForensicStore(store, clock=lambda: self.sim.now)
            if self.kernel is not None:
                # Cut segments at tick barriers, never mid-tick.
                self.store.tick_mode = True
                self.kernel.on_tick.append(self.store.on_tick_barrier)
        #: Ring evictions per ``(node address, ring name)`` — the
        #: counter behind ``store_ring_rotations_total``.  A ring's
        #: first eviction also emits one ``store.ring_rotated`` recorder
        #: event: the moment in-memory forensics start losing history.
        self.ring_rotations: Dict[tuple, int] = {}
        self.nodes: Dict[Address, P2Node] = {}
        self.tracers: Dict[Address, Tracer] = {}
        self.loggers: Dict[Address, EventLogger] = {}
        self.reflectors: Dict[Address, Reflector] = {}
        #: Per-address ``add_node`` options, kept so ``restart_node`` can
        #: rebuild a crashed node with identical introspection wiring.
        self._node_config: Dict[Address, dict] = {}
        #: Set by :class:`repro.recovery.manager.RecoveryManager`.
        self.recovery = None
        wire_system_metrics(self.telemetry, self)

    # ------------------------------------------------------------------

    def add_node(
        self,
        address: Address,
        tracing: bool = False,
        logging: bool = False,
        reflection: bool = False,
        trace_lifetime: Optional[float] = None,
        trace_entries: Optional[int] = None,
        log_capacity: Optional[int] = None,
        tuple_entries: Optional[int] = None,
    ) -> P2Node:
        """Create and register a node; optionally enable introspection.

        Ring capacities (``trace_entries``, ``log_capacity``,
        ``tuple_entries``) and the trace lifetime default to the
        system-wide values given at construction.
        """
        if address in self.nodes:
            raise ReproError(f"node {address!r} already exists")
        trace_lifetime = (
            self.trace_lifetime if trace_lifetime is None else trace_lifetime
        )
        trace_entries = (
            self.trace_entries if trace_entries is None else trace_entries
        )
        log_capacity = (
            self.log_capacity if log_capacity is None else log_capacity
        )
        tuple_entries = (
            self.tuple_entries if tuple_entries is None else tuple_entries
        )
        for name, value in (
            ("trace_entries", trace_entries),
            ("log_capacity", log_capacity),
            ("tuple_entries", tuple_entries),
        ):
            if value < 1:
                raise ReproError(
                    f"{name} must be at least 1, got {value!r}"
                )
        node = P2Node(
            address,
            self.sim,
            self.network,
            id_bits=self.id_bits,
            overload=self.overload,
        )
        if node.overload is not None and self.telemetry.enabled:
            node.overload.telemetry = self.telemetry
        if self.kernel is not None:
            node.enable_batch(self.kernel, self.execution.batch_size)
            self.network.attach_batch(address, node.receive_batch)
        self.nodes[address] = node
        self._node_config[address] = {
            "tracing": tracing,
            "logging": logging,
            "reflection": reflection,
            "trace_lifetime": trace_lifetime,
            "trace_entries": trace_entries,
            "log_capacity": log_capacity,
            "tuple_entries": tuple_entries,
        }
        if tracing:
            self.tracers[address] = enable_tracing(
                node,
                lifetime=trace_lifetime,
                max_entries=trace_entries,
                tuple_entries=tuple_entries,
            )
        if logging:
            self.loggers[address] = EventLogger(node, capacity=log_capacity)
        if reflection:
            self.reflectors[address] = Reflector(node)
        if self.store is not None and (tracing or logging):
            self.store.attach_node(
                node,
                tracer=self.tracers.get(address),
                logger=self.loggers.get(address),
            )
        if tracing or logging:
            self._watch_rings(address, node)
        if self.telemetry.enabled:
            node.obs = self.telemetry
            obs_hooks = ObsTraceHooks(self.telemetry, str(address))
            if node.hooks is not None:
                node.hooks = CompositeTraceHooks([node.hooks, obs_hooks])
            else:
                node.hooks = obs_hooks
        return node

    def _watch_rings(self, address: Address, node: P2Node) -> None:
        """Count evictions from the introspection rings.

        The first eviction of each ``(node, ring)`` also emits a
        ``store.ring_rotated`` recorder event — the signal that
        in-memory forensics on that node are now lossy and post-mortems
        should consult the durable store.
        """
        from repro.runtime.table import RemoveReason

        label = str(address)

        def observe(ring: str) -> None:
            def on_remove(row, reason) -> None:
                if reason is not RemoveReason.EVICTED:
                    return
                key = (label, ring)
                first = key not in self.ring_rotations
                self.ring_rotations[key] = self.ring_rotations.get(key, 0) + 1
                if self.store is not None:
                    self.store.ring_rotated(label, ring)
                if first:
                    self.telemetry.event(
                        "store.ring_rotated", node=label, ring=ring
                    )

            node.store.get(ring).on_remove.append(on_remove)

        for ring in RINGS:
            if node.store.has(ring):
                observe(ring)

    def node(self, address: Address) -> P2Node:
        node = self.nodes.get(address)
        if node is None:
            raise ReproError(f"no node {address!r}")
        return node

    def install(
        self, program: Program, on: Optional[List[Address]] = None
    ) -> None:
        """Install ``program`` on the given nodes (default: all)."""
        targets = on if on is not None else list(self.nodes)
        for address in targets:
            self.node(address).install(program)

    def install_source(
        self,
        source: str,
        name: str = "program",
        bindings: Optional[dict] = None,
        on: Optional[List[Address]] = None,
    ) -> None:
        """Compile once, install on the given nodes (default: all)."""
        program = Program.compile(source, name=name, bindings=bindings)
        self.install(program, on=on)

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, duration: float) -> None:
        self.sim.run_for(duration)

    def run_until(self, when: float) -> None:
        self.sim.run_until(when)

    # ------------------------------------------------------------------

    def crash(self, address: Address) -> None:
        """Fail-stop a node (it stops processing and leaves the network)."""
        self.node(address).stop()
        reflector = self.reflectors.get(address)
        if reflector is not None:
            reflector.stop()

    def restart_node(self, address: Address) -> P2Node:
        """Replace a crashed node with a fresh, empty one.

        The new node gets the same introspection configuration the old
        one was created with.  State replay and ring re-join are the
        :class:`~repro.recovery.manager.RecoveryManager`'s job — this
        only rebuilds the process.
        """
        old = self.nodes.get(address)
        if old is None:
            raise ReproError(f"no node {address!r} to restart")
        if not old.stopped:
            raise ReproError(
                f"node {address!r} is still running; crash it first"
            )
        config = self._node_config.get(address, {})
        restarts = old.restarts + 1
        del self.nodes[address]
        self.tracers.pop(address, None)
        self.loggers.pop(address, None)
        self.reflectors.pop(address, None)
        node = self.add_node(address, **config)
        node.restarts = restarts
        return node

    def live_nodes(self) -> List[Address]:
        return [a for a, n in self.nodes.items() if not n.stopped]

    def total_live_tuples(self) -> int:
        return sum(n.live_tuples() for n in self.nodes.values())

    def collect(self, name: str, on: Optional[List[Address]] = None) -> list:
        """Subscribe on the given nodes; returns one shared live list."""
        sink: list = []
        targets = on if on is not None else list(self.nodes)
        for address in targets:
            self.node(address).subscribe(name, sink.append)
        return sink

    # ------------------------------------------------------------------

    def export_telemetry(
        self,
        directory: str,
        prefix: str = "telemetry",
        meta: Optional[dict] = None,
    ) -> Dict[str, str]:
        """Write the three telemetry artifacts into ``directory``.

        Returns ``{"trace": ..., "jsonl": ..., "prom": ...}`` paths.  The
        exports are byte-stable for a given seed and workload: every
        timestamp comes from the virtual clock and every ordering is
        explicitly sorted.
        """
        os.makedirs(directory, exist_ok=True)
        if meta is None:
            meta = {
                "seed": self.sim.random.seed,
                "now": self.sim.now,
                "nodes": len(self.nodes),
            }
        paths = {
            "trace": os.path.join(directory, f"{prefix}.trace.json"),
            "jsonl": os.path.join(directory, f"{prefix}.jsonl"),
            "prom": os.path.join(directory, f"{prefix}.prom"),
        }
        write_chrome_trace(self.telemetry, paths["trace"], meta=meta)
        write_jsonl(self.telemetry, paths["jsonl"], meta=meta)
        write_prometheus(self.telemetry, paths["prom"])
        return paths

    def close_store(self) -> Optional[ForensicStore]:
        """Flush and finalize the forensic store (if one is enabled).

        Returns the store so callers can chain into offline queries:
        ``system.close_store()`` then ``python -m repro.store ...`` on
        its directory.  Capture stops; the segments and manifest on
        disk are complete and byte-stable for the seeded run.
        """
        if self.store is not None:
            self.store.close()
        return self.store
