"""Measurement windows over a running system.

The paper's §4 reports, per configuration: CPU utilization (%), process
memory (MB), transmitted messages, and live tuples.  :class:`Meter`
measures the simulated equivalents over a window of virtual time:

- **cpu_percent** — work-model busy-seconds accumulated in the window
  divided by the window length (×100): the simulated analogue of OS CPU%
  (see :mod:`repro.runtime.work` for the substitution rationale);
- **tx_messages** — network messages sent during the window (per node
  or aggregate, matching Figures 6/7's "Tx messages");
- **live_tuples** — mean over periodic samples of the node's total
  table occupancy (the paper plots exactly this series);
- **memory_bytes** — mean over samples of estimated tuple bytes (our
  proxy for process memory, which in P2 is tuple-dominated).

Every number is read through the system's telemetry registry
(:class:`repro.obs.metrics.MetricsRegistry`), whose callback adapters
expose the network and work-model counters — the meter never reaches
into ``NetworkStats`` or a node's work model directly, so it measures
exactly what the exporters export.

Usage::

    meter = Meter(system, addresses=["n20:10020"])
    meter.start()
    system.run_for(60.0)
    result = meter.stop()
    print(result.cpu_percent, result.live_tuples)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError


@dataclass
class MetricsSample:
    """One measurement window's results (averaged over the node set)."""

    elapsed: float
    cpu_percent: float
    tx_messages: int
    live_tuples: float
    memory_bytes: float
    # Bytes of tuples *delivered* during the window: the transient
    # allocation churn behind the paper's process-memory growth for
    # rules whose outputs are events rather than stored state.
    churn_bytes: int = 0
    # Transport-layer overhead in the window: retransmissions performed
    # by the reliable transport and the per-reason drop breakdown (see
    # ``NetworkStats.drop_reasons``) — campaign verdicts read these
    # rather than guessing from the aggregate drop count.
    tx_retransmits: int = 0
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    per_node_cpu: Dict[str, float] = field(default_factory=dict)
    per_node_tx: Dict[str, int] = field(default_factory=dict)
    # Work-model operation counts accumulated during the window, summed
    # over the measured node set (e.g. ``ops["join_probe"]`` = rows
    # examined by scanning joins, ``ops["join_indexed"]`` = rows examined
    # through hash-index buckets — the benchmarks compare the two to
    # quantify the index win).
    ops: Dict[str, int] = field(default_factory=dict)

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)

    @property
    def join_rows_examined(self) -> int:
        """Rows examined by all join probes (scanned + indexed)."""
        return self.ops.get("join_probe", 0) + self.ops.get("join_indexed", 0)


class Meter:
    """Windowed measurement of a node subset (default: all nodes)."""

    def __init__(
        self,
        system,
        addresses: Optional[List[str]] = None,
        sample_period: float = 1.0,
    ) -> None:
        self._system = system
        self._addresses = addresses
        self._sample_period = sample_period
        self._running = False
        self._timer = None
        self._t0 = 0.0
        self._busy0: Dict[str, float] = {}
        self._tx0: Dict[str, int] = {}
        self._retrans0 = 0
        self._drops0: Dict[str, int] = {}
        self._churn0: Dict[str, int] = {}
        self._ops0: Dict[str, Dict[str, int]] = {}
        self._tuple_samples: List[float] = []
        self._byte_samples: List[float] = []

    def _targets(self) -> List[str]:
        if self._addresses is not None:
            return list(self._addresses)
        return list(self._system.nodes)

    @property
    def _registry(self):
        return self._system.telemetry.metrics

    def start(self) -> None:
        if self._running:
            raise ReproError("meter already running")
        self._running = True
        self._t0 = self._system.sim.now
        self._tuple_samples = []
        self._byte_samples = []
        reg = self._registry
        self._retrans0 = reg.value(
            "net_counters_total", ("messages_retransmitted",)
        )
        self._drops0 = {
            key[0]: count
            for key, count in reg.snapshot("net_dropped_total").items()
        }
        self._churn0 = {}
        busy = reg.snapshot("node_busy_seconds")
        sent = reg.snapshot("net_sent_total")
        churn = reg.snapshot("node_bytes_delivered_total")
        ops = reg.snapshot("node_work_ops_total")
        for address in self._targets():
            key = (address,)
            self._busy0[address] = busy.get(key, 0.0)
            self._tx0[address] = sent.get(key, 0)
            self._churn0[address] = churn.get(key, 0)
            self._ops0[address] = {
                op: count
                for (node, op), count in ops.items()
                if node == address
            }
        self._sample()
        self._timer = self._system.sim.every(
            self._sample_period, self._sample
        )

    def _sample(self) -> None:
        reg = self._registry
        tuples = reg.snapshot("node_live_tuples")
        memory = reg.snapshot("node_memory_bytes")
        targets = self._targets()
        self._tuple_samples.append(
            sum(tuples.get((a,), 0) for a in targets)
        )
        self._byte_samples.append(
            sum(memory.get((a,), 0) for a in targets)
        )

    def stop(self) -> MetricsSample:
        if not self._running:
            raise ReproError("meter not running")
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._sample()
        elapsed = max(self._system.sim.now - self._t0, 1e-9)
        reg = self._registry
        busy_now = reg.snapshot("node_busy_seconds")
        sent_now = reg.snapshot("net_sent_total")
        churn_now = reg.snapshot("node_bytes_delivered_total")
        ops_now = reg.snapshot("node_work_ops_total")
        per_node_cpu: Dict[str, float] = {}
        per_node_tx: Dict[str, int] = {}
        for address in self._targets():
            key = (address,)
            busy = busy_now.get(key, 0.0) - self._busy0[address]
            per_node_cpu[address] = 100.0 * busy / elapsed
            per_node_tx[address] = (
                sent_now.get(key, 0) - self._tx0[address]
            )
        churn = sum(
            churn_now.get((address,), 0) - self._churn0[address]
            for address in self._targets()
        )
        targets = set(self._targets())
        ops: Dict[str, int] = {}
        for (node, op), count in ops_now.items():
            if node not in targets:
                continue
            delta = count - self._ops0.get(node, {}).get(op, 0)
            if delta:
                ops[op] = ops.get(op, 0) + delta
        drop_reasons: Dict[str, int] = {}
        for (reason,), count in reg.snapshot("net_dropped_total").items():
            delta = count - self._drops0.get(reason, 0)
            if delta:
                drop_reasons[reason] = delta
        n = max(len(per_node_cpu), 1)
        return MetricsSample(
            elapsed=elapsed,
            cpu_percent=sum(per_node_cpu.values()) / n,
            tx_messages=sum(per_node_tx.values()),
            live_tuples=sum(self._tuple_samples) / len(self._tuple_samples) / n,
            memory_bytes=sum(self._byte_samples) / len(self._byte_samples) / n,
            churn_bytes=churn,
            tx_retransmits=int(
                reg.value("net_counters_total", ("messages_retransmitted",))
                - self._retrans0
            ),
            drop_reasons=drop_reasons,
            per_node_cpu=per_node_cpu,
            per_node_tx=per_node_tx,
            ops=ops,
        )
