"""Ad-hoc distributed queries over a running system (§1.3).

The paper's first usage scenario: "simply querying program state and
logs ... a scalable distributed query processor enables this approach
to be used on-line: logs and state can be queried in place."

:class:`QueryConsole` offers both flavors:

- :meth:`snapshot` — an out-of-band, instantaneous read of one table
  across nodes (the operator's "what does the system look like now");
- :meth:`stream` — an in-band continuous query: a generated OverLog
  rule is installed on every target node, shipping matching rows to the
  console's own P2 node periodically, until :meth:`StreamHandle.stop`
  uninstalls it.  This is the paper's "queries to monitor particular
  conditions ... simply left in place" mechanism, made disposable.

The console is itself a P2 node, so streamed results are ordinary
tuples: they can be logged, traced, or queried by further rules.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.overlog.program import Program
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple

_console_ids = itertools.count()


class StreamHandle:
    """A running continuous query; ``rows`` accumulates results."""

    def __init__(
        self,
        console: "QueryConsole",
        event_name: str,
        installs: List,
    ) -> None:
        self._console = console
        self.event_name = event_name
        self._installs = installs  # [(node, compiled)]
        self.rows: List[Tuple] = []
        self.stopped = False

    def stop(self) -> None:
        """Uninstall the query's rules from every target node."""
        if self.stopped:
            return
        self.stopped = True
        for node, compiled in self._installs:
            if compiled in node.programs:
                node.uninstall(compiled)

    def latest_by_origin(self) -> Dict[str, Tuple]:
        """The most recent row from each origin node."""
        out: Dict[str, Tuple] = {}
        for row in self.rows:
            out[row.values[1]] = row
        return out


class QueryConsole:
    """An operator console attached to a running :class:`System`."""

    def __init__(self, system, address: Optional[str] = None) -> None:
        self._system = system
        self.address = address or f"console{next(_console_ids)}:1"
        self.node: P2Node = system.add_node(self.address)

    # ------------------------------------------------------------------
    # Out-of-band snapshot

    def snapshot(
        self,
        table: str,
        where: Optional[Callable[[Tuple], bool]] = None,
    ) -> Dict[str, List[Tuple]]:
        """Read ``table`` on every live node, optionally filtered."""
        out: Dict[str, List[Tuple]] = {}
        for address, node in self._system.nodes.items():
            if node.stopped or address == self.address:
                continue
            rows = node.query(table)
            if where is not None:
                rows = [row for row in rows if where(row)]
            out[address] = rows
        return out

    def counts(self, table: str) -> Dict[str, int]:
        """Row count of ``table`` per node — the classic ops one-liner."""
        return {
            address: len(rows)
            for address, rows in self.snapshot(table).items()
        }

    # ------------------------------------------------------------------
    # In-band continuous query

    def stream(
        self,
        table: str,
        arity: int,
        period: float = 5.0,
        where: str = "",
        nodes: Optional[List[P2Node]] = None,
    ) -> StreamHandle:
        """Install a continuous query shipping ``table`` rows here.

        ``arity`` is the table's field count including the location.
        ``where`` is an optional OverLog condition over the row's
        variables ``F1..Fn`` (e.g. ``"F2 > 10"``).  Rows arrive as
        ``<event> (console, origin, F1, ..., Fn)`` tuples.
        """
        if arity < 1:
            raise ReproError("arity includes the location field (>= 1)")
        event = f"consoleRow_{next(_console_ids)}"
        fields = [f"F{i}" for i in range(1, arity)]
        head_args = ", ".join(["NAddr"] + fields)
        body_args = ", ".join(fields)
        condition = f", {where}" if where else ""
        source = (
            f'cq {event}@"{self.address}"({head_args}) :- '
            f"periodic@NAddr(E, {period}), "
            f"{table}@NAddr({body_args}){condition}."
        )
        program = Program.compile(source, name=event)

        targets = (
            nodes
            if nodes is not None
            else [
                node
                for address, node in self._system.nodes.items()
                if not node.stopped
                and address != self.address
                # Only nodes that actually materialize the table can
                # host the query (on others the reference would be an
                # unjoinable event).
                and node.store.has(table)
            ]
        )
        installs = [(node, node.install(program)) for node in targets]
        handle = StreamHandle(self, event, installs)
        self.node.subscribe(event, handle.rows.append)
        return handle
