"""High-level API: the :class:`System` façade and the metrics layer.

This is what a downstream user imports::

    from repro.core import System

    system = System(seed=7)
    node = system.add_node("n0:10000", tracing=True)
    node.install_source(my_overlog_program)
    system.run_for(60.0)

plus :class:`Meter` / :class:`MetricsSample` for the measurement windows
the benchmark harness uses to regenerate the paper's figures.
"""

from repro.core.system import System
from repro.core.metrics import Meter, MetricsSample
from repro.core.console import QueryConsole, StreamHandle

__all__ = [
    "System",
    "Meter",
    "MetricsSample",
    "QueryConsole",
    "StreamHandle",
]
