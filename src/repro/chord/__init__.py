"""P2-Chord: the Chord DHT written in OverLog, plus a deployment harness.

The program in :mod:`repro.chord.program` follows the P2 Chord of Loo et
al. (SOSP 2005) — the system the paper runs all of its monitors against —
with table and message names matching the paper exactly (``node``,
``succ``, ``bestSucc``, ``pred``, ``finger``, ``uniqueFinger``,
``pingNode``, ``faultyNode``, ``stabilizeRequest``, ``sendPred``,
``returnSucc``, ``lookup``, ``lookupResults``), so the paper's §3
monitoring rules install verbatim.

:mod:`repro.chord.harness` builds populations of nodes, scripts joins,
and provides oracle-side ring checks used by tests and benchmarks.
"""

from repro.chord.program import ChordParams, chord_program, chord_source
from repro.chord.harness import ChordNetwork

__all__ = ["ChordParams", "chord_program", "chord_source", "ChordNetwork"]
