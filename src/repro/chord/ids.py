"""Chord identifier helpers shared by the harness, tests, and monitors."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.overlog.builtins import stable_hash_id
from repro.overlog.types import DEFAULT_ID_BITS, NodeID


def node_id_for(address: str, bits: int = DEFAULT_ID_BITS) -> NodeID:
    """The deterministic ring ID of a node address (SHA-1 based)."""
    return stable_hash_id(address, bits)


def ring_order(ids: Dict[str, NodeID]) -> List[str]:
    """Addresses sorted clockwise by ring ID (ties broken by address)."""
    return sorted(ids, key=lambda a: (ids[a].value, a))


def successor_map(ids: Dict[str, NodeID]) -> Dict[str, str]:
    """Oracle: each address's correct immediate successor on the ring."""
    ordered = ring_order(ids)
    return {
        addr: ordered[(i + 1) % len(ordered)]
        for i, addr in enumerate(ordered)
    }


def predecessor_map(ids: Dict[str, NodeID]) -> Dict[str, str]:
    """Oracle: each address's correct immediate predecessor."""
    ordered = ring_order(ids)
    return {
        addr: ordered[(i - 1) % len(ordered)]
        for i, addr in enumerate(ordered)
    }


def owner_of(key: NodeID, ids: Dict[str, NodeID]) -> Optional[str]:
    """Oracle: the address responsible for ``key`` (its successor)."""
    if not ids:
        return None
    ordered = ring_order(ids)
    for addr in ordered:
        if ids[addr].value >= key.value:
            return addr
    return ordered[0]  # wrap around


def count_wraps(ids: Dict[str, NodeID]) -> int:
    """Wrap-arounds in a full clockwise traversal (1 for a correct ring)."""
    ordered = ring_order(ids)
    if len(ordered) < 2:
        return 1
    wraps = 0
    for i, addr in enumerate(ordered):
        succ = ordered[(i + 1) % len(ordered)]
        if ids[addr].value >= ids[succ].value:
            wraps += 1
    return wraps
