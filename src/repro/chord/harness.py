"""Deployment harness for P2-Chord populations.

Builds a :class:`repro.core.System`, creates N nodes with deterministic
ring IDs, installs the Chord program, scripts staggered joins (with
retries, since a join lookup can race the landmark's own bootstrap), and
provides oracle-side correctness checks used by tests, examples, and the
benchmark harness.

The paper's evaluation setup is 21 virtual nodes — 20 that start and
stabilize first, then a 21st whose costs are measured.  See
``ChordNetwork.paper_setup`` for that exact configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.system import System
from repro.chord import ids as ring
from repro.errors import ReproError
from repro.chord.program import ChordParams, chord_program
from repro.net.address import make_address
from repro.net.network import ReliableConfig
from repro.net.topology import ConstantLatency, LatencyModel
from repro.overload.controller import OverloadConfig
from repro.overlog.types import NodeID
from repro.sim.batch import ExecutionConfig
from repro.store.store import StoreConfig
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


class ChordNetwork:
    """A population of Chord nodes inside one simulated system."""

    def __init__(
        self,
        num_nodes: int = 21,
        seed: int = 0,
        params: Optional[ChordParams] = None,
        tracing: bool = False,
        logging: bool = False,
        reflection: bool = False,
        recycle_dead_bug: bool = False,
        latency: float = 0.01,
        latency_model: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        transport: str = "udp",
        reliable: Optional[ReliableConfig] = None,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        observability: bool = False,
        overload: Optional[OverloadConfig] = None,
        execution: Optional[ExecutionConfig] = None,
        store: Optional[StoreConfig] = None,
        trace_lifetime: float = 120.0,
        trace_entries: int = 5000,
        log_capacity: int = 2000,
        tuple_entries: int = 100000,
    ) -> None:
        self.params = params if params is not None else ChordParams()
        self.system = System(
            seed=seed,
            latency=(
                latency_model
                if latency_model is not None
                else ConstantLatency(latency)
            ),
            id_bits=self.params.id_bits,
            loss_rate=loss_rate,
            transport=transport,
            reliable=reliable,
            reorder_rate=reorder_rate,
            duplicate_rate=duplicate_rate,
            observability=observability,
            overload=overload,
            execution=execution,
            store=store,
            trace_lifetime=trace_lifetime,
            trace_entries=trace_entries,
            log_capacity=log_capacity,
            tuple_entries=tuple_entries,
        )
        self.program = chord_program(self.params, recycle_dead_bug)
        self.addresses: List[str] = [
            make_address(i) for i in range(num_nodes)
        ]
        self.ids: Dict[str, NodeID] = {
            addr: ring.node_id_for(addr, self.params.id_bits)
            for addr in self.addresses
        }
        self.landmark = self.addresses[0]
        self._joined: set = set()
        #: Set by :meth:`enable_recovery`.
        self.recovery = None
        for addr in self.addresses:
            self.system.add_node(
                addr,
                tracing=tracing,
                logging=logging,
                reflection=reflection,
            )

    # ------------------------------------------------------------------
    # Bootstrap

    def start(
        self,
        join_spacing: float = 1.0,
        join_retry: float = 15.0,
        max_retries: int = 5,
    ) -> None:
        """Install Chord everywhere and schedule staggered joins.

        The landmark joins first (forming the single-node ring); node i
        joins at ``i * join_spacing``.  If a node has no successor
        ``join_retry`` seconds after joining (its join lookup was lost
        or raced the landmark), the join event is re-injected.
        """
        for addr in self.addresses:
            self._prepare(addr)
        for index, addr in enumerate(self.addresses):
            self.system.sim.schedule(
                index * join_spacing,
                lambda a=addr: self._join(a, max_retries),
            )

    def _prepare(self, addr: str) -> None:
        node = self.system.node(addr)
        node.install(self.program)
        node.inject("node", (addr, self.ids[addr]))
        node.inject("landmark", (addr, self.landmark))
        node.inject("nextFingerFix", (addr, 0))

    def _join(self, addr: str, retries: int, join_retry: float = 15.0) -> None:
        node = self.system.node(addr)
        if node.stopped:
            return
        nonce = self.system.sim.random.stream("chord.join").randrange(1 << 31)
        node.inject("join", (addr, nonce))
        self._joined.add(addr)
        if retries > 0:
            self.system.sim.schedule(
                join_retry,
                lambda: self._retry_join(addr, retries - 1, join_retry),
            )

    def _retry_join(self, addr: str, retries: int, join_retry: float) -> None:
        node = self.system.node(addr)
        if node.stopped or node.query("bestSucc"):
            return
        self._join(addr, retries, join_retry)

    def ensure_joined(self, addr: str, retries: int = 3) -> bool:
        """Re-inject a join for a node that lost its ring membership.

        A node isolated (or silenced) longer than the ping-eviction
        horizon is dropped by every neighbor while its own successor
        entries expire; once the network heals, nothing routes to it
        and it routes to nobody — it must re-join through the landmark,
        exactly Chord's prescribed recovery.  No-op (returns False) for
        nodes that still hold a plausible successor, so calling this on
        every node after a fault window only touches the evicted ones.
        """
        node = self.system.node(addr)
        if node.stopped:
            return False
        succ = self.best_succ_of(addr)
        if succ is not None and (succ != addr or len(self.addresses) == 1):
            return False
        # Bootstrap through any node still holding a ring position —
        # the original landmark may itself be the evicted node.
        for other in self.live_addresses():
            if other == addr:
                continue
            other_succ = self.best_succ_of(other)
            if other_succ is not None and other_succ != other:
                node.inject("landmark", (addr, other))
                break
        self._join(addr, retries)
        return True

    def add_late_node(
        self,
        tracing: bool = False,
        logging: bool = False,
        reflection: bool = False,
    ) -> str:
        """Create one more node (joined separately) and return its address.

        This is the paper's "21st node": the measured node added after
        the rest of the population has stabilized.
        """
        addr = make_address(len(self.addresses))
        self.addresses.append(addr)
        self.ids[addr] = ring.node_id_for(addr, self.params.id_bits)
        self.system.add_node(
            addr, tracing=tracing, logging=logging, reflection=reflection
        )
        self._prepare(addr)
        self._join(addr, retries=5)
        return addr

    @classmethod
    def paper_setup(
        cls, seed: int = 0, tracing: bool = False, **kwargs
    ) -> "tuple[ChordNetwork, str]":
        """The paper's §4 configuration: 20 nodes stabilize, then the
        21st (measured) node joins.  Returns (network, measured_addr).

        The pre-population runs for 5 simulated minutes before the
        measured node appears, as in the paper.
        """
        net = cls(num_nodes=20, seed=seed, tracing=tracing, **kwargs)
        net.start()
        net.system.run_for(300.0)
        measured = net.add_late_node(tracing=tracing)
        net.system.run_for(60.0)
        return net, measured

    # ------------------------------------------------------------------
    # Running and fault injection

    def run_for(self, duration: float) -> None:
        self.system.run_for(duration)

    def kill(self, addr: str) -> None:
        """Fail-stop one node."""
        if self.recovery is not None:
            self.recovery.crash(addr)
        else:
            self.system.crash(addr)

    def enable_recovery(
        self, checkpoint_interval: float = 30.0, rejoin_delay: float = 5.0
    ):
        """Protect every node with durable checkpoint+WAL state.

        After :meth:`restart`, the recovered node re-enters the ring
        through the existing :meth:`ensure_joined` machinery.  One check
        is not enough: a successor entry whose TTL survived the downtime
        replays as *stale* state, making the first ``ensure_joined`` a
        no-op — and once it expires, nothing else would ever retry.  So
        the hook arms a retry ladder (``rejoin_delay`` then 30 s apart)
        long enough to outlive any replayed successor's remaining TTL;
        every call after a successful re-join is a no-op.
        """
        from repro.recovery.manager import RecoveryManager

        if self.recovery is not None:
            return self.recovery
        self.recovery = RecoveryManager(
            self.system, checkpoint_interval=checkpoint_interval
        )
        self.recovery.protect_all()

        def rejoin(addr, node, report, _delay=rejoin_delay):
            for attempt in range(5):
                self.system.sim.schedule(
                    _delay + attempt * 30.0,
                    lambda a=addr: self.ensure_joined(a),
                )

        self.recovery.on_restart.append(rejoin)
        return self.recovery

    def restart(self, addr: str):
        """Recover a crashed node from its durable image (requires
        :meth:`enable_recovery` before the crash)."""
        if self.recovery is None:
            raise ReproError(
                "enable_recovery() was never called on this network"
            )
        return self.recovery.restart(addr)

    def node(self, addr: str) -> P2Node:
        return self.system.node(addr)

    def live_addresses(self) -> List[str]:
        return [
            a
            for a in self.addresses
            if not self.system.node(a).stopped and a in self._joined
        ]

    def live_ids(self) -> Dict[str, NodeID]:
        return {a: self.ids[a] for a in self.live_addresses()}

    # ------------------------------------------------------------------
    # Oracle checks

    def best_succ_of(self, addr: str) -> Optional[str]:
        rows = self.system.node(addr).query("bestSucc")
        if not rows:
            return None
        return rows[0].values[2]

    def pred_of(self, addr: str) -> Optional[str]:
        rows = self.system.node(addr).query("pred")
        if not rows:
            return None
        value = rows[0].values[2]
        return None if value == "-" else value

    def ring_correct(self) -> bool:
        """Every live node's bestSucc matches the oracle successor map."""
        live = self.live_ids()
        if not live:
            return False
        expected = ring.successor_map(live)
        for addr in live:
            if self.best_succ_of(addr) != expected[addr]:
                return False
        return True

    def ring_errors(self) -> List[str]:
        """Human-readable list of successor mismatches (for debugging)."""
        live = self.live_ids()
        expected = ring.successor_map(live)
        errors = []
        for addr in sorted(live):
            actual = self.best_succ_of(addr)
            if actual != expected[addr]:
                errors.append(
                    f"{addr}: bestSucc={actual} expected={expected[addr]}"
                )
        return errors

    def wait_stable(
        self, max_time: float = 300.0, check_interval: float = 5.0
    ) -> bool:
        """Run until the ring is oracle-correct (or the deadline passes)."""
        deadline = self.system.now + max_time
        while self.system.now < deadline:
            if self.ring_correct():
                return True
            self.system.run_for(check_interval)
        return self.ring_correct()

    # ------------------------------------------------------------------
    # Lookups

    def lookup(
        self, src: str, key: NodeID, timeout: float = 10.0
    ) -> Optional[Tuple]:
        """Issue a lookup from ``src`` and wait for its result.

        Returns the ``lookupResults`` tuple, or None on timeout (e.g.
        the request was routed into a dead node).
        """
        node = self.system.node(src)
        nonce = self.system.sim.random.stream("chord.lookup").randrange(1 << 31)
        results: List[Tuple] = []

        def on_result(tup: Tuple) -> None:
            if tup.values[4] == nonce:
                results.append(tup)

        node.subscribe("lookupResults", on_result)
        node.inject("lookup", (src, key, src, nonce))
        deadline = self.system.now + timeout
        while not results and self.system.now < deadline:
            self.system.run_for(0.05)
        return results[0] if results else None

    def lookup_owner(self, key: NodeID) -> Optional[str]:
        """Oracle answer for ``key`` over currently live nodes."""
        return ring.owner_of(key, self.live_ids())
