"""The Chord DHT as an OverLog program.

Structure (rule prefixes):

- ``j*``  — join protocol: a joining node looks up its own ID through a
  landmark and adopts the result as its successor;
- ``l*``  — lookups: the paper's rules l1-l3 (greedy finger-based
  routing with the successor closing the interval).  l3 is split into
  an aggregate + forward pair: the positional finger table lists the
  same best finger at many positions, and forwarding once per matching
  *row* (as the paper's l3 reads literally) duplicates every hop,
  compounding exponentially along the path;
- ``sb*`` — stabilization: ask the successor for its predecessor
  (``stabilizeRequest``/``sendPred``) and for its successors
  (``reqSuccList``/``returnSucc``), notify the successor of ourselves;
- ``bs*`` — best-successor selection: min ring distance over ``succ``;
- ``f*``  — finger fixing: periodic lookups for NID + 2**i with eager
  filling of subsequent positions (P2 Chord's optimization);
- ``pg*`` — liveness pings and failure detection (``pingReq`` /
  ``pingResp`` / ``pendingPing`` / ``faultyNode``) and purging of faulty
  state.

Two variants of successor adoption exist:

- the **correct** variant filters candidates against the recently
  deceased in ``faultyNode`` (expressed with a count-guard, since the
  dialect has no negation);
- the **buggy** variant (``recycle_dead_bug=True``) adopts any gossiped
  successor — the paper's §3.1.3 "recycled dead neighbor" pathology,
  which the oscillation monitors are designed to catch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlog.program import Program
from repro.overlog.types import DEFAULT_ID_BITS


@dataclass
class ChordParams:
    """Protocol timers and sizes; defaults follow the paper's §4 setup
    (fix fingers every 10 s, stabilize every 5 s, ping every 5 s)."""

    stabilize_period: float = 5.0
    ping_period: float = 5.0
    finger_period: float = 10.0
    ping_timeout: float = 4.0
    succ_ttl: float = 30.0
    succ_size: int = 16
    # Successor-list trimming: keep the k closest successors ("it
    # chooses the k closest and discards the rest", §3.1.3); the table
    # cap (succ_size) is only the hard backstop.
    succ_keep: int = 4
    finger_ttl: float = 180.0
    faulty_ttl: float = 30.0
    id_bits: int = DEFAULT_ID_BITS

    def bindings(self) -> dict:
        return {
            "tStab": self.stabilize_period,
            "tPing": self.ping_period,
            "tFix": self.finger_period,
            "tPingTimeout": self.ping_timeout,
            "mBits": self.id_bits,
            "succKeep": self.succ_keep,
        }


_TABLES = """
materialize(node, infinity, 1, keys(1)).
materialize(landmark, infinity, 1, keys(1)).
materialize(joinRecord, infinity, 1, keys(1)).
materialize(succ, {succ_ttl}, {succ_size}, keys(1,3)).
materialize(pred, infinity, 1, keys(1)).
materialize(bestSucc, {best_ttl}, 1, keys(1)).
materialize(finger, {finger_ttl}, 160, keys(1,2)).
materialize(uniqueFinger, {finger_ttl}, 160, keys(1,2)).
materialize(nextFingerFix, infinity, 1, keys(1)).
materialize(fingerLookupRecord, 60, 10, keys(1,2)).
materialize(pingNode, 30, 64, keys(1,2)).
materialize(pendingPing, 30, 64, keys(1,2)).
materialize(faultyNode, {faulty_ttl}, 16, keys(1,2)).
"""

_JOIN = """
j0 pred@NAddr(0, "-") :- join@NAddr(E).
j1 joinRecord@NAddr(E) :- join@NAddr(E), node@NAddr(NID),
   landmark@NAddr(LAddr), LAddr != NAddr.
j2 lookup@LAddr(NID, NAddr, E) :- join@NAddr(E), node@NAddr(NID),
   landmark@NAddr(LAddr), LAddr != NAddr.
j3 succ@NAddr(NID, NAddr) :- join@NAddr(E), node@NAddr(NID),
   landmark@NAddr(LAddr), LAddr == NAddr.
j4 succ@NAddr(SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RespAddr),
   joinRecord@NAddr(E).
"""

_LOOKUP = """
l1 lookupResults@ReqAddr(K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
   lookup@NAddr(K, ReqAddr, E), bestSucc@NAddr(SID, SAddr), K in (NID, SID].
l2 bestLookupDist@NAddr(K, ReqAddr, E, min<D>) :- node@NAddr(NID),
   lookup@NAddr(K, ReqAddr, E), finger@NAddr(FPos, FID, FAddr),
   D := K - FID - 1, FID in (NID, K).
l3 lookupFwd@NAddr(K, ReqAddr, E, min<FAddr>) :- node@NAddr(NID),
   bestLookupDist@NAddr(K, ReqAddr, E, D), finger@NAddr(FPos, FID, FAddr),
   D == K - FID - 1, FID in (NID, K).
l3b lookup@FAddr(K, ReqAddr, E) :- lookupFwd@NAddr(K, ReqAddr, E, FAddr).
"""

_STABILIZE_COMMON = """
sb1 stabilizeRequest@SAddr(NID, NAddr) :- periodic@NAddr(E, tStab),
    bestSucc@NAddr(SID, SAddr), node@NAddr(NID), SAddr != NAddr.
sb2 sendPred@ReqAddr(PID, PAddr, NAddr) :- stabilizeRequest@NAddr(SomeID, ReqAddr),
    pred@NAddr(PID, PAddr), PAddr != "-", PAddr != ReqAddr.
sb5 notify@SAddr(NID, NAddr) :- periodic@NAddr(E, tStab), node@NAddr(NID),
    bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
sb6 pred@NAddr(PID, PAddr) :- notify@NAddr(PID, PAddr), node@NAddr(NID),
    pred@NAddr(OldID, OldAddr), PAddr != NAddr,
    (OldAddr == "-") || (PID in (OldID, NID)).
sb8 reqSuccList@SAddr(NAddr) :- periodic@NAddr(E, tStab),
    bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
sb9 returnSucc@ReqAddr(SID, SAddr, NAddr) :- reqSuccList@NAddr(ReqAddr),
    succ@NAddr(SID, SAddr), SAddr != ReqAddr.
sb13 selfStab@NAddr(E) :- periodic@NAddr(E, tStab),
     bestSucc@NAddr(SID, SAddr), SAddr == NAddr.
sb14 succ@NAddr(PID, PAddr) :- selfStab@NAddr(E), pred@NAddr(PID, PAddr),
     PAddr != "-", PAddr != NAddr.
sb15 bestCount@NAddr(count<*>) :- periodic@NAddr(E, tStab),
     bestSucc@NAddr(SID, SAddr).
sb16 succ@NAddr(PID, PAddr) :- bestCount@NAddr(C), C == 0,
     pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.
sw1 succCount@NAddr(count<*>) :- succ@NAddr(SID, SAddr).
sw2 evictSucc@NAddr(T) :- succCount@NAddr(C), C > succKeep, T := f_now().
sw3 maxSuccDist@NAddr(max<D>) :- evictSucc@NAddr(T), succ@NAddr(SID, SAddr),
    node@NAddr(NID), D := SID - NID - 1.
sw4 delete succ@NAddr(SID, SAddr) :- maxSuccDist@NAddr(D),
    succ@NAddr(SID, SAddr), node@NAddr(NID), D == SID - NID - 1.
"""

# Correct successor adoption: a count-guard keeps recently deceased
# neighbors (still in faultyNode) from being recycled into succ.
_ADOPT_CORRECT = """
sb3 predCand@NAddr(SID, SAddr, count<*>) :- sendPred@NAddr(SID, SAddr, Src),
    faultyNode@NAddr(SAddr, T).
sb4 succ@NAddr(SID, SAddr) :- predCand@NAddr(SID, SAddr, C), C == 0.
sb10 succCand@NAddr(SID, SAddr, count<*>) :- returnSucc@NAddr(SID, SAddr, Src),
     faultyNode@NAddr(SAddr, T).
sb7 succ@NAddr(SID, SAddr) :- succCand@NAddr(SID, SAddr, C), C == 0.
sb11a stabRefresh@NAddr(SID, SAddr) :- periodic@NAddr(E, tStab),
      bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
sb11 stabSucc@NAddr(SID, SAddr, count<*>) :- stabRefresh@NAddr(SID, SAddr),
     faultyNode@NAddr(SAddr, T).
sb12 succ@NAddr(SID, SAddr) :- stabSucc@NAddr(SID, SAddr, C), C == 0.
"""

# Buggy adoption (the paper's §3.1.3 pathology): gossiped state is
# adopted unconditionally, so a dead neighbor keeps oscillating back in.
_ADOPT_BUGGY = """
sb4 succ@NAddr(SID, SAddr) :- sendPred@NAddr(SID, SAddr, Src).
sb7 succ@NAddr(SID, SAddr) :- returnSucc@NAddr(SID, SAddr, Src).
sb12 succ@NAddr(SID, SAddr) :- periodic@NAddr(E, tStab),
     bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
"""

_BEST_SUCC = """
bs0 succEval@NAddr(E) :- periodic@NAddr(E, tStab), node@NAddr(NID).
bs1 bestSuccDist@NAddr(min<D>) :- succ@NAddr(SID, SAddr), node@NAddr(NID),
    D := SID - NID - 1.
bs1b bestSuccDist@NAddr(min<D>) :- succEval@NAddr(E), succ@NAddr(SID, SAddr),
     node@NAddr(NID), D := SID - NID - 1.
bs2 bestSucc@NAddr(SID, SAddr) :- bestSuccDist@NAddr(D),
    succ@NAddr(SID, SAddr), node@NAddr(NID), D == SID - NID - 1.
"""

_FINGERS = """
f0 finger@NAddr(0, SID, SAddr) :- bestSucc@NAddr(SID, SAddr).
f0b finger@NAddr(0, SID, SAddr) :- succEval@NAddr(E),
    bestSucc@NAddr(SID, SAddr).
f1 fingerLookup@NAddr(E, I) :- periodic@NAddr(E, tFix),
   nextFingerFix@NAddr(I).
f2 fingerLookupRecord@NAddr(E, I) :- fingerLookup@NAddr(E, I).
f3 lookup@NAddr(K, NAddr, E) :- fingerLookup@NAddr(E, I), node@NAddr(NID),
   K := NID + f_pow(2, I).
f4 eagerFinger@NAddr(I, BID, BAddr) :-
   lookupResults@NAddr(K, BID, BAddr, E, RespAddr),
   fingerLookupRecord@NAddr(E, I).
f5 finger@NAddr(I, BID, BAddr) :- eagerFinger@NAddr(I, BID, BAddr).
f6 uniqueFinger@NAddr(BAddr, BID) :- eagerFinger@NAddr(I, BID, BAddr).
f7 eagerFinger@NAddr(I1, BID, BAddr) :- eagerFinger@NAddr(I, BID, BAddr),
   node@NAddr(NID), I1 := I + 1, I1 < mBits, K := NID + f_pow(2, I1),
   K in (NID, BID], BAddr != NAddr.
f8 nextFingerFix@NAddr(I1) :- eagerFinger@NAddr(I, BID, BAddr),
   I1 := (I + 1) % mBits.
f9 delete fingerLookupRecord@NAddr(E, I) :- eagerFinger@NAddr(I, BID, BAddr),
   fingerLookupRecord@NAddr(E, I).
"""

_PINGS = """
pp0 pingEval@NAddr(E) :- periodic@NAddr(E, tPing), node@NAddr(NID).
pp1 pingNode@NAddr(SAddr) :- succ@NAddr(SID, SAddr), SAddr != NAddr.
pp2 pingNode@NAddr(PAddr) :- pred@NAddr(PID, PAddr), PAddr != "-",
    PAddr != NAddr.
pp3 pingNode@NAddr(FAddr) :- uniqueFinger@NAddr(FAddr, FID), FAddr != NAddr.
pp4 pingNode@NAddr(SAddr) :- pingEval@NAddr(E), succ@NAddr(SID, SAddr),
    SAddr != NAddr.
pp5 pingNode@NAddr(PAddr) :- pingEval@NAddr(E), pred@NAddr(PID, PAddr),
    PAddr != "-", PAddr != NAddr.
pp6 pingNode@NAddr(FAddr) :- pingEval@NAddr(E),
    uniqueFinger@NAddr(FAddr, FID), FAddr != NAddr.
pg0 doPing@NAddr(RAddr, T) :- periodic@NAddr(E, tPing),
    pingNode@NAddr(RAddr), T := f_now().
pg1 pingReq@RAddr(NAddr) :- doPing@NAddr(RAddr, T).
pg2a pendCount@NAddr(RAddr, T, count<*>) :- doPing@NAddr(RAddr, T),
     pendingPing@NAddr(RAddr, T2).
pg2 pendingPing@NAddr(RAddr, T) :- pendCount@NAddr(RAddr, T, C), C == 0.
pg3 pingResp@SAddr(NAddr) :- pingReq@NAddr(SAddr).
pg4 delete pendingPing@NAddr(RAddr, T) :- pingResp@NAddr(RAddr).
pg5 faultyNode@NAddr(RAddr, T) :- periodic@NAddr(E, tPing),
    pendingPing@NAddr(RAddr, T1), T1 < f_now() - tPingTimeout, T := f_now().
pg6 delete succ@NAddr(SID, FAddr) :- faultyNode@NAddr(FAddr, T).
pg7 delete finger@NAddr(FPos, FID, FAddr) :- faultyNode@NAddr(FAddr, T).
pg8 delete uniqueFinger@NAddr(FAddr, FID) :- faultyNode@NAddr(FAddr, T).
pg9 pred@NAddr(0, "-") :- faultyNode@NAddr(FAddr, T), pred@NAddr(PID, FAddr).
pg10 delete pingNode@NAddr(FAddr) :- faultyNode@NAddr(FAddr, T).
pg11 delete pendingPing@NAddr(FAddr, T2) :- faultyNode@NAddr(FAddr, T).
"""


def chord_source(
    params: ChordParams = None, recycle_dead_bug: bool = False
) -> str:
    """Assemble the OverLog source text for the Chord program."""
    params = params if params is not None else ChordParams()
    tables = _TABLES.format(
        succ_ttl=params.succ_ttl,
        succ_size=params.succ_size,
        finger_ttl=params.finger_ttl,
        faulty_ttl=params.faulty_ttl,
        best_ttl=3.0 * params.stabilize_period,
    )
    adopt = _ADOPT_BUGGY if recycle_dead_bug else _ADOPT_CORRECT
    return "\n".join(
        [
            tables,
            _JOIN,
            _LOOKUP,
            _STABILIZE_COMMON,
            adopt,
            _BEST_SUCC,
            _FINGERS,
            _PINGS,
        ]
    )


def chord_program(
    params: ChordParams = None, recycle_dead_bug: bool = False
) -> Program:
    """Compile the Chord program with the given parameters."""
    params = params if params is not None else ChordParams()
    return Program.compile(
        chord_source(params, recycle_dead_bug),
        name="chord" + ("-buggy" if recycle_dead_bug else ""),
        bindings=params.bindings(),
    )
