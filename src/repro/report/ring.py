"""Ring rendering: each node's edge view, checked against the oracle."""

from __future__ import annotations

from typing import List

from repro.chord import ids as ring
from repro.chord.harness import ChordNetwork


def render_ring(net: ChordNetwork) -> str:
    """One line per live node, clockwise, flagging oracle mismatches.

    Example output::

        ring of 5 nodes (clockwise by ID)
          n3:10003  id=   29478696  succ=n2:10002  pred=n4:10004
          n2:10002  id=   33825472  succ=n1:10001  pred=n3:10003
          ...
        1 disagreement:
          n2:10002: bestSucc=n0:10000 expected=n1:10001
    """
    live = net.live_ids()
    ordered = ring.ring_order(live)
    expected_succ = ring.successor_map(live)
    width = max((len(a) for a in ordered), default=0)

    lines: List[str] = [f"ring of {len(ordered)} nodes (clockwise by ID)"]
    errors: List[str] = []
    for addr in ordered:
        succ = net.best_succ_of(addr)
        pred = net.pred_of(addr)
        marker = ""
        if succ != expected_succ[addr]:
            marker = "  <-- WRONG successor"
            errors.append(
                f"{addr}: bestSucc={succ} expected={expected_succ[addr]}"
            )
        lines.append(
            f"  {addr:<{width}}  id={live[addr].value:>11}  "
            f"succ={succ}  pred={pred}{marker}"
        )
    if errors:
        lines.append(f"{len(errors)} disagreement(s):")
        lines.extend(f"  {error}" for error in errors)
    else:
        lines.append("ring is oracle-correct")
    return "\n".join(lines)
