"""Causal-chain rendering: the §3.2 walk, human-readable."""

from __future__ import annotations

from typing import List

from repro.analysis.causality import CausalLink


def render_chain(chain: List[CausalLink], show_preconditions: bool = True) -> str:
    """Render a newest-first chain oldest-first as an indented tree.

    Example::

        causal chain (3 rule executions, 1 network hop)
        cs1 @ n0:10000  [+0.000 ms rule]
        └─ cs2 @ n0:10000  [+0.015 ms rule]
           ├─ precondition: uniqueFinger@n0:10000(...)
           └─ l1 @ n3:10003  [+0.012 ms rule]  <~~ network
    """
    if not chain:
        return "causal chain (empty: no recorded producer)"
    ordered = list(reversed(chain))  # oldest first
    hops = sum(1 for link in chain if link.crossed_network)
    lines: List[str] = [
        f"causal chain ({len(chain)} rule executions, {hops} network hop(s))"
    ]
    for depth, link in enumerate(ordered):
        rule_ms = (link.out_time - link.in_time) * 1000.0
        net_mark = "  <~~ network" if link.crossed_network else ""
        prefix = "" if depth == 0 else "   " * (depth - 1) + "└─ "
        lines.append(
            f"{prefix}{link.rule} @ {link.node}  "
            f"[+{rule_ms:.3f} ms rule]{net_mark}"
        )
        if show_preconditions and link.preconditions:
            pad = "   " * depth
            for precondition in link.preconditions:
                contents = (
                    repr(precondition.contents)
                    if precondition.contents is not None
                    else f"<tuple #{precondition.tuple_id}, expired>"
                )
                lines.append(f"{pad}├─ precondition: {contents}")
    final = ordered[-1]
    if final.effect is not None:
        lines.append(f"=> {final.effect!r}")
    return "\n".join(lines)
