"""A one-page monitoring dashboard over a running system."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.system import System
from repro.monitors.base import MonitorHandle


class Dashboard:
    """Aggregates node metrics and monitor alarms into a text page.

    Register monitor handles as they are installed; ``render()`` at any
    time produces a deterministic snapshot.  ``diff_since_last()``
    highlights what changed between renders (new alarms, newly seen
    drop reasons), the piece an operator actually scans for.

    All numbers are read through the system's telemetry registry
    (:class:`repro.obs.metrics.MetricsRegistry`), so the page shows the
    same values the exporters write.
    """

    def __init__(self, system: System, title: str = "deployment") -> None:
        self._system = system
        self.title = title
        self._handles: Dict[str, MonitorHandle] = {}
        self._agg_handles: Dict[str, object] = {}
        self._last_counts: Dict[str, Dict[str, int]] = {}
        self._last_drops: Dict[str, int] = {}
        self._last_status: Dict[str, str] = {}
        self._last_sheds: Dict[str, int] = {}
        self._last_shed_state: Dict[str, bool] = {}
        self._last_agg_alarms: Dict[str, int] = {}

    def add_monitor(self, handle: MonitorHandle) -> None:
        self._handles[handle.monitor.name] = handle

    def add_aggregate(self, handle) -> None:
        """Register an installed global monitor
        (:class:`repro.aggtree.runtime.AggHandle`) for the tree panel."""
        self._agg_handles[handle.name] = handle

    # ------------------------------------------------------------------

    def _drop_breakdown(self) -> Dict[str, int]:
        reg = self._system.telemetry.metrics
        return {
            key[0]: int(count)
            for key, count in reg.snapshot("net_dropped_total").items()
        }

    def render(self) -> str:
        system = self._system
        reg = system.telemetry.metrics
        sent = int(reg.value("net_counters_total", ("messages_sent",)))
        dropped = int(reg.value("net_counters_total", ("messages_dropped",)))
        drops = self._drop_breakdown()
        breakdown = ""
        if drops:
            inner = ", ".join(
                f"{reason}={count}" for reason, count in sorted(drops.items())
            )
            breakdown = f" ({inner})"
        lines: List[str] = [
            f"== {self.title} @ t={system.now:.1f}s ==",
            f"nodes: {len(system.live_nodes())} live / "
            f"{len(system.nodes)} total   "
            f"messages sent: {sent}   "
            f"dropped: {dropped}{breakdown}",
            "",
            "node                 status         cpu%      tuples   rule-execs",
        ]
        tuples = reg.snapshot("node_live_tuples")
        execs = reg.snapshot("node_rule_executions_total")
        for address in sorted(system.nodes):
            node = system.nodes[address]
            status = node.status
            if node.restarts and not node.stopped:
                status = f"{status} x{node.restarts}"
            if node.stopped:
                lines.append(f"{address:<18} {status:<12}")
                continue
            lines.append(
                f"{address:<18} {status:<12} {100 * node.cpu_utilization():7.3f}  "
                f"{tuples.get((address,), 0):>9}   "
                f"{execs.get((address,), 0):>9}"
            )
        recovery = getattr(system, "recovery", None)
        if recovery is not None:
            lines.append("")
            lines.append("durability (checkpoint + WAL):")
            medium = recovery.medium
            for address in medium.addresses():
                image = medium.ensure(address)
                lines.append(
                    f"  {address:<18} ckpt={image.checkpoint_bytes}B "
                    f"@t={image.checkpoint_time:.1f}  "
                    f"wal={len(image.wal)} rec/{image.wal_bytes}B  "
                    f"restarts={system.nodes[address].restarts}"
                )
        store = getattr(system, "store", None)
        if store is not None:
            lines.append("")
            lines.append("forensic store (durable events):")
            ratio = store.compression_ratio
            lines.append(
                f"  segments={store.segments_written} "
                f"({store.bytes_written}B)  "
                f"events={store.events_appended} -> "
                f"records={store.records_written} "
                f"(ratio {ratio:.2f}x)  "
                f"buffered={len(store._buffer)}  "
                f"flushes={store.flushes}"
            )
            rotations = getattr(system, "ring_rotations", {})
            if rotations:
                per_ring: Dict[str, int] = {}
                for (_, ring), count in rotations.items():
                    per_ring[ring] = per_ring.get(ring, 0) + count
                inner = ", ".join(
                    f"{ring}={count}"
                    for ring, count in sorted(per_ring.items())
                )
                lines.append(
                    f"  ring rotations: {inner} "
                    f"(in-memory forensics lossy; slice from the store)"
                )
        controllers = [
            (address, system.nodes[address].overload)
            for address in sorted(system.nodes)
            if system.nodes[address].overload is not None
        ]
        if controllers:
            lines.append("")
            lines.append("overload / saturation:")
            for address, ctrl in controllers:
                cap = ctrl.mailbox.state.capacity
                cap_text = "inf" if cap is None else str(cap)
                state = "SHED" if ctrl.shed_active else "ok"
                sheds = ", ".join(
                    f"{cls}={counts['shed']}"
                    for cls, counts in ctrl.totals().items()
                )
                deferred = sum(
                    counts.deferred for counts in ctrl.counts.values()
                )
                lines.append(
                    f"  {address:<18} {state:<5} "
                    f"mailbox {len(ctrl.mailbox)}/{cap_text} "
                    f"(peak {ctrl.mailbox.depth_peak})  "
                    f"strand peak {ctrl.strand_state.depth_peak}  "
                    f"shed {sheds}  deferred={deferred}"
                )
        if self._agg_handles:
            lines.append("")
            lines.append("in-network aggregation:")
            for name in sorted(self._agg_handles):
                handle = self._agg_handles[name]
                totals = handle.ledger.totals()
                tree = handle.last_tree
                shape = (
                    f"depth={tree.max_depth()} fanout={tree.fanout} "
                    f"members={len(tree)}"
                    if tree is not None
                    else "tree not built yet"
                )
                lines.append(
                    f"  {name:<24} [{handle.mode}] root={handle.collector} "
                    f"{shape}"
                )
                lines.append(
                    f"    merged {totals['merged']}/{totals['expected']} "
                    f"origins  late={totals['late_origins']}  "
                    f"missing={totals['missing']}  "
                    f"collector-inbound={totals['inbound_tuples']}  "
                    f"alarms={handle.alarm_count()}"
                )
                fallbacks = getattr(handle.plan, "fallbacks", [])
                if fallbacks:
                    reasons = ", ".join(
                        f"{rule.rule_id}:{rule.reason}" for rule in fallbacks
                    )
                    lines.append(f"    fallbacks: {reasons}")
        lines.append("")
        lines.append("monitor alarms:")
        if not self._handles:
            lines.append("  (no monitors registered)")
        for name in sorted(self._handles):
            handle = self._handles[name]
            counts = ", ".join(
                f"{event}={len(tuples)}"
                for event, tuples in sorted(handle.alarms.items())
            )
            lines.append(f"  {name:<24} {counts}")
        return "\n".join(lines)

    def diff_since_last(self) -> List[str]:
        """What changed since the previous call (empty = all quiet).

        Reports new alarms per monitor, drop reasons seen for the
        first time — a fresh reason (e.g. the first ``down`` after a
        partition) is a different signal than more of a known one —
        plus overload activity: shed-count growth per node and
        shedding/recovered state transitions of admission control.
        """
        news: List[str] = []
        for name, handle in sorted(self._handles.items()):
            previous = self._last_counts.get(name, {})
            for event, tuples in sorted(handle.alarms.items()):
                fresh = len(tuples) - previous.get(event, 0)
                if fresh > 0:
                    news.append(f"{name}: +{fresh} {event}")
            self._last_counts[name] = {
                event: len(tuples) for event, tuples in handle.alarms.items()
            }
        for name, handle in sorted(self._agg_handles.items()):
            total = handle.alarm_count()
            fresh = total - self._last_agg_alarms.get(name, 0)
            if fresh > 0:
                news.append(f"{name}: +{fresh} global alarms")
            self._last_agg_alarms[name] = total
        drops = self._drop_breakdown()
        for reason in sorted(drops):
            if reason not in self._last_drops:
                news.append(
                    f"drops: new reason {reason} (+{drops[reason]})"
                )
        self._last_drops = drops
        for address in sorted(self._system.nodes):
            ctrl = self._system.nodes[address].overload
            if ctrl is None:
                continue
            total = sum(counts.shed for counts in ctrl.counts.values())
            grown = total - self._last_sheds.get(address, 0)
            if grown > 0:
                news.append(f"overload {address}: +{grown} shed")
            self._last_sheds[address] = total
            active = ctrl.shed_active
            before = self._last_shed_state.get(address)
            if before is not None and before != active:
                news.append(
                    f"overload {address}: "
                    f"{'shedding' if active else 'recovered'}"
                )
            self._last_shed_state[address] = active
        status = {
            address: self._system.nodes[address].status
            for address in sorted(self._system.nodes)
        }
        for address, state in status.items():
            before = self._last_status.get(address)
            if before is not None and before != state:
                news.append(f"node {address}: {before} -> {state}")
        self._last_status = status
        return news
