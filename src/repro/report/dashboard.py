"""A one-page monitoring dashboard over a running system."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.system import System
from repro.monitors.base import MonitorHandle


class Dashboard:
    """Aggregates node metrics and monitor alarms into a text page.

    Register monitor handles as they are installed; ``render()`` at any
    time produces a deterministic snapshot.  ``diff_since_last()``
    highlights what changed between renders (new alarms), the piece an
    operator actually scans for.
    """

    def __init__(self, system: System, title: str = "deployment") -> None:
        self._system = system
        self.title = title
        self._handles: Dict[str, MonitorHandle] = {}
        self._last_counts: Dict[str, Dict[str, int]] = {}

    def add_monitor(self, handle: MonitorHandle) -> None:
        self._handles[handle.monitor.name] = handle

    # ------------------------------------------------------------------

    def render(self) -> str:
        system = self._system
        lines: List[str] = [
            f"== {self.title} @ t={system.now:.1f}s ==",
            f"nodes: {len(system.live_nodes())} live / "
            f"{len(system.nodes)} total   "
            f"messages sent: {system.network.stats.messages_sent}   "
            f"dropped: {system.network.stats.messages_dropped}",
            "",
            "node                 cpu%      tuples   rule-execs",
        ]
        for address in sorted(system.nodes):
            node = system.nodes[address]
            if node.stopped:
                lines.append(f"{address:<18} (stopped)")
                continue
            lines.append(
                f"{address:<18} {100 * node.cpu_utilization():7.3f}  "
                f"{node.live_tuples():>9}   {node.rule_executions:>9}"
            )
        lines.append("")
        lines.append("monitor alarms:")
        if not self._handles:
            lines.append("  (no monitors registered)")
        for name in sorted(self._handles):
            handle = self._handles[name]
            counts = ", ".join(
                f"{event}={len(tuples)}"
                for event, tuples in sorted(handle.alarms.items())
            )
            lines.append(f"  {name:<24} {counts}")
        return "\n".join(lines)

    def diff_since_last(self) -> List[str]:
        """New alarms since the previous call (empty = all quiet)."""
        news: List[str] = []
        for name, handle in sorted(self._handles.items()):
            previous = self._last_counts.get(name, {})
            for event, tuples in sorted(handle.alarms.items()):
                fresh = len(tuples) - previous.get(event, 0)
                if fresh > 0:
                    news.append(f"{name}: +{fresh} {event}")
            self._last_counts[name] = {
                event: len(tuples) for event, tuples in handle.alarms.items()
            }
        return news
