"""Operator-facing reports: text renderings of system state.

The paper leaves the user interface as future work ("a visual user
interface ... would be an invaluable addition"); this package is the
terminal-grade version: deterministic text renderings suitable for
logs, CI output, and incident write-ups.

- :mod:`repro.report.ring` — the ring as each node sees it, annotated
  with oracle disagreements;
- :mod:`repro.report.chains` — causal chains as indented trees with
  per-hop timing and preconditions;
- :mod:`repro.report.dashboard` — a one-page monitoring dashboard:
  node metrics plus per-monitor alarm counts.
"""

from repro.report.ring import render_ring
from repro.report.chains import render_chain
from repro.report.dashboard import Dashboard

__all__ = ["render_ring", "render_chain", "Dashboard"]
