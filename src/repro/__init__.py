"""repro — a reproduction of "Using Queries for Distributed Monitoring
and Forensics" (Singh, Roscoe, Maniatis, Druschel; EuroSys 2006).

A Python implementation of the P2 declarative-networking system with the
paper's monitoring extensions: the OverLog language and its distributed
continuous query processor, a comprehensive introspection model
(reflection + event logging), rule-level execution tracing with
cross-network tuple identity, a Chord DHT written in OverLog, and the
paper's full catalogue of on-line monitors — ring checks, oscillation
detectors, consistency probes, execution profiling, and Chandy-Lamport
consistent snapshots with snapshot-scoped queries.

Quickstart::

    from repro import System

    system = System(seed=1)
    node = system.add_node("n0:10000", tracing=True)
    node.install_source('''
        materialize(link, 100, 20, keys(1,2)).
        materialize(path, 100, 100, keys(1,2,3)).
        p0 path@A(B, [A, B], W) :- link@A(B, W).
        p1 path@B(C, [B, A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y).
    ''')
    node.inject("link", ("n0:10000", "n1:10001", 1))
    system.run_for(5.0)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.system import System
from repro.core.metrics import Meter, MetricsSample
from repro.core.console import QueryConsole
from repro.overlog.program import Program
from repro.overlog.types import NodeID, INFINITY
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple
from repro.chord.harness import ChordNetwork
from repro.chord.program import ChordParams, chord_program, chord_source
from repro.gossip.harness import GossipNetwork
from repro.gossip.program import GossipParams, gossip_program

__version__ = "1.0.0"

__all__ = [
    "System",
    "Meter",
    "MetricsSample",
    "QueryConsole",
    "Program",
    "NodeID",
    "INFINITY",
    "P2Node",
    "Tuple",
    "ChordNetwork",
    "ChordParams",
    "chord_program",
    "chord_source",
    "GossipNetwork",
    "GossipParams",
    "gossip_program",
    "__version__",
]
