"""Overload protection for the monitoring plane.

The paper's bargain — monitoring is "just more queries" running inside
the monitored system — means a hot ring-check or a tracing-heavy
profiling query competes for the same per-node budget as the
application itself.  This package makes that competition safe:

- :mod:`repro.overload.policy` — the three priority classes (``data`` >
  ``monitor`` > ``trace``), the per-node :class:`PriorityMap` derived
  at program-install time, and the built-in trace-relation set;
- :mod:`repro.overload.queues` — :class:`BoundedQueue`, a capacity- and
  watermark-tracking queue with hysteresis between ``normal`` and
  ``shedding`` states;
- :mod:`repro.overload.controller` — :class:`OverloadController`, the
  per-node admission-control and load-shedding brain, plus
  :class:`OverloadConfig`.

The invariant the whole package enforces (and the storm campaign in
:mod:`repro.faults.campaign` proves over randomized seeds): under
overload, **application (DATA) tuples are never shed while lower-
priority MONITOR/TRACE tuples were still being admitted** — the
monitoring plane degrades first, the monitored system last.
"""

from repro.overload.policy import (
    CLASS_DATA,
    CLASS_MONITOR,
    CLASS_TRACE,
    CLASSES,
    PriorityMap,
    TRACE_RELATIONS,
)
from repro.overload.queues import BoundedQueue, QueueState
from repro.overload.controller import OverloadConfig, OverloadController

__all__ = [
    "CLASS_DATA",
    "CLASS_MONITOR",
    "CLASS_TRACE",
    "CLASSES",
    "PriorityMap",
    "TRACE_RELATIONS",
    "BoundedQueue",
    "QueueState",
    "OverloadConfig",
    "OverloadController",
]
