"""Priority classes and the install-time priority map.

Every tuple moving through a node belongs to one of three classes:

- ``data`` — application relations (Chord's ring state, lookups,
  gossip payloads): the system being monitored;
- ``monitor`` — relations produced by installed monitoring programs
  (ring probes, oscillation checks, consistency sweeps): the paper's
  "just more queries";
- ``trace`` — the introspection feeds (``ruleExec``, ``tupleLog``,
  reflection tables) and any program installed with ``role="trace"``:
  the heaviest, most expendable plane.

Classification is *derived at program-install time*: when a node
installs a :class:`~repro.overlog.program.Program`, every relation the
program materializes or derives is mapped to the program's ``role``.
A relation claimed by programs of different roles keeps the
highest-priority claim (a relation the application writes is ``data``
even if a monitor also derives it), so misclassifying can only ever
*protect more*, never shed application state by accident.
"""

from __future__ import annotations

from typing import Dict, Iterable

#: The three priority classes, highest priority first.
CLASS_DATA = "data"
CLASS_MONITOR = "monitor"
CLASS_TRACE = "trace"
CLASSES = (CLASS_DATA, CLASS_MONITOR, CLASS_TRACE)

#: Class -> shed rank: higher sheds first.  DATA (rank 0) is only ever
#: deferred (backpressure) or dropped at hard-full, after both lower
#: classes are already being shed.
SHED_RANK: Dict[str, int] = {
    CLASS_DATA: 0,
    CLASS_MONITOR: 1,
    CLASS_TRACE: 2,
}

#: Relations the introspection layer materializes directly (outside any
#: OverLog program); always classed ``trace``.
TRACE_RELATIONS = frozenset(
    {
        "ruleExec",
        "tupleLog",
        "tableLog",
        "tupleTable",
        "sysTable",
        "sysRule",
        "sysElement",
        "sysNode",
    }
)


class PriorityMap:
    """Relation-name -> priority-class mapping, learned at install time."""

    def __init__(self) -> None:
        self._classes: Dict[str, str] = {}

    def assign(self, relation: str, cls: str) -> None:
        """Claim ``relation`` for ``cls``; higher-priority claims win."""
        if cls not in SHED_RANK:
            raise ValueError(f"unknown priority class: {cls!r}")
        current = self._classes.get(relation)
        if current is None or SHED_RANK[cls] < SHED_RANK[current]:
            self._classes[relation] = cls

    def learn(self, relations: Iterable[str], cls: str) -> None:
        for relation in relations:
            self.assign(relation, cls)

    def classify(self, relation: str) -> str:
        """The class of ``relation`` (unknown relations default to
        ``data`` — admission control must never starve traffic it has
        not been told is expendable)."""
        cls = self._classes.get(relation)
        if cls is not None:
            return cls
        if relation in TRACE_RELATIONS:
            return CLASS_TRACE
        return CLASS_DATA

    def known(self) -> Dict[str, str]:
        """Copy of the learned mapping (tests, dashboards)."""
        return dict(self._classes)

    def __repr__(self) -> str:
        return f"<PriorityMap {len(self._classes)} relations>"
