"""Bounded queues with high/low-watermark hysteresis.

:class:`QueueState` is the pure watermark state machine: feed it depth
observations, read back ``normal`` / ``shedding`` with hysteresis (the
state only flips *up* at the high watermark and *down* at the low one,
so a queue hovering at the boundary cannot flap between shed and admit
on every single tuple).  :class:`BoundedQueue` couples the state
machine to an actual deque; the runtime's mailbox uses it directly,
while the node's pending-strand deque keeps its raw form (uninstall
rebuilds it) and drives a bare :class:`QueueState` instead.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, List, Optional

from repro.errors import ReproError

#: Default watermark fractions of capacity.
DEFAULT_HIGH = 0.8
DEFAULT_LOW = 0.5

STATE_NORMAL = "normal"
STATE_SHEDDING = "shedding"


class QueueState:
    """Watermark hysteresis over one queue's observed depth.

    ``capacity=None`` means unbounded: the queue is never full and
    never sheds (observe-only mode for control-arm campaigns, which
    still track ``depth_peak``).  ``capacity=0`` is the degenerate
    bound: permanently full and permanently shedding — nothing
    sheddable is ever admitted.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        high: float = DEFAULT_HIGH,
        low: float = DEFAULT_LOW,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ReproError(f"queue capacity must be >= 0: {capacity}")
        if not 0.0 <= low <= high <= 1.0:
            raise ReproError(
                f"watermarks need 0 <= low <= high <= 1: {low}, {high}"
            )
        self.capacity = capacity
        if capacity is None:
            self.high_mark = None
            self.low_mark = None
        else:
            self.high_mark = max(0, int(capacity * high))
            self.low_mark = int(capacity * low)
            if self.low_mark >= self.high_mark:
                self.low_mark = max(0, self.high_mark - 1)
        self.shedding = capacity == 0
        self.depth_peak = 0
        self.transitions = 0

    def observe(self, depth: int) -> bool:
        """Update hysteresis with the current depth; True on transition."""
        if depth > self.depth_peak:
            self.depth_peak = depth
        if self.capacity is None:
            return False
        if self.capacity == 0:
            return False  # permanently shedding
        if not self.shedding and depth >= self.high_mark:
            self.shedding = True
            self.transitions += 1
            return True
        if self.shedding and depth <= self.low_mark:
            self.shedding = False
            self.transitions += 1
            return True
        return False

    def full(self, depth: int) -> bool:
        if self.capacity is None:
            return False
        return depth >= self.capacity

    def __repr__(self) -> str:
        state = STATE_SHEDDING if self.shedding else STATE_NORMAL
        return (
            f"<QueueState cap={self.capacity} {state} "
            f"peak={self.depth_peak}>"
        )


class BoundedQueue:
    """A deque fused with a :class:`QueueState`.

    ``push`` refuses entries beyond capacity (returns False); the
    caller decides what refusal means (shed, defer, nack).  Every push
    and pop feeds the watermark state machine, so ``shedding`` always
    reflects the *current* depth.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        high: float = DEFAULT_HIGH,
        low: float = DEFAULT_LOW,
    ) -> None:
        self.state = QueueState(capacity, high=high, low=low)
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterable[Any]:
        return iter(self._items)

    @property
    def shedding(self) -> bool:
        return self.state.shedding

    @property
    def full(self) -> bool:
        return self.state.full(len(self._items))

    @property
    def depth_peak(self) -> int:
        return self.state.depth_peak

    def push(self, item: Any) -> bool:
        """Append ``item`` unless at capacity; feeds the watermarks."""
        if self.state.full(len(self._items)):
            return False
        self._items.append(item)
        self.state.observe(len(self._items))
        return True

    def pop(self) -> Any:
        item = self._items.popleft()
        self.state.observe(len(self._items))
        return item

    def clear(self) -> List[Any]:
        """Drop everything (node stop); returns the abandoned items."""
        items = list(self._items)
        self._items.clear()
        self.state.observe(0)
        return items

    def __repr__(self) -> str:
        return f"<BoundedQueue {len(self._items)}/{self.state.capacity}>"
