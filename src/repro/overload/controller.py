"""The per-node overload controller: admission, shedding, accounting.

One :class:`OverloadController` hangs off a :class:`~repro.runtime.node.P2Node`
(``node.overload``; ``None`` keeps every hot path untouched).  It owns

- the **priority map** learned at program-install time
  (:mod:`repro.overload.policy`);
- the **inbound mailbox** — a :class:`~repro.overload.queues.BoundedQueue`
  of decoded-but-unprocessed network payloads, drained at the node's
  service rate (``service_time`` per message, scaled by the
  ``slow_node`` fault's factor), which is what makes queue buildup a
  real, measurable thing inside a discrete-event simulator;
- the **strand-queue watermark state** over the node's pending-strand
  deque;
- all **shed/defer accounting** by class and reason, plus the bounded
  shed log the storm campaign's priority invariant is checked against.

Admission policy (the invariant by construction):

========== =================== ============================
state       TRACE / MONITOR     DATA
========== =================== ============================
normal      admit               admit
shedding    shed (or BUSY-      admit
            defer if remote)
full        shed / defer        defer (BUSY) if remote,
                                shed (``*_full``) otherwise
========== =================== ============================

DATA is only ever shed when the queue is *hard full* — a state in
which both lower classes are already being refused (full implies past
the high watermark, where shedding engages).  ``invariant_ok()``
checks exactly that, pointwise: every recorded DATA shed must have
happened while ``shed_active`` was true, i.e. while MONITOR/TRACE
admission was closed.  A DATA shed at a moment when lower-priority
work was still being admitted is a violation, and the storm campaign
asserts none occur, per seed.

With ``shedding=False`` the controller runs observe-only: it classes
and counts everything and tracks depth peaks, but admits all traffic —
the control arm that demonstrates unbounded queue growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.overload.policy import (
    CLASS_DATA,
    CLASSES,
    PriorityMap,
)
from repro.overload.queues import BoundedQueue, QueueState

#: Shed-reason keys (every shed/defer increments exactly one).
SHED_MAILBOX = "mailbox"          # low-priority refused at the mailbox
SHED_MAILBOX_FULL = "mailbox_full"   # hard-full mailbox (local/UDP)
SHED_STRAND = "strand_queue"      # low-priority strand firing skipped
SHED_STRAND_FULL = "strand_queue_full"
SHED_PERIODIC = "periodic_skip"   # periodic monitor fire suppressed
SHED_STOPPED = "node_stopped"     # admitted but node crashed first
DEFER_BUSY = "busy"               # reliable-mode receiver pushback

#: Shed-log ring bound: enough for a whole storm window, small enough
#: that a pathological run cannot turn the log itself into the leak.
SHED_LOG_CAPACITY = 4096


@dataclass
class OverloadConfig:
    """Capacities and watermarks for one node's overload protection.

    ``None`` capacities mean unbounded (observe-only for that queue).
    ``service_time`` is the simulated per-message processing time that
    turns the mailbox into a real queue: at 0 every message is
    processed inline on arrival (today's behaviour, depth never
    exceeds the burst in flight); at ``s > 0`` the node drains one
    message every ``s * slow_factor`` seconds and a sustained arrival
    rate above ``1/s`` grows the mailbox into its watermarks.
    """

    mailbox_capacity: Optional[int] = 128
    strand_queue_capacity: Optional[int] = 512
    watch_capacity: int = 1000
    high_watermark: float = 0.8
    low_watermark: float = 0.5
    service_time: float = 0.0
    shedding: bool = True


@dataclass
class ClassCounts:
    """Offered/admitted/shed/deferred tallies for one priority class."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    deferred: int = 0
    shed_reasons: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "deferred": self.deferred,
            "shed_reasons": {
                reason: self.shed_reasons[reason]
                for reason in sorted(self.shed_reasons)
            },
        }


class OverloadController:
    """Admission control + load shedding for one node (see module doc)."""

    def __init__(
        self,
        config: Optional[OverloadConfig] = None,
        clock=None,
        telemetry=None,
        node_label: str = "",
    ) -> None:
        self.config = config if config is not None else OverloadConfig()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.telemetry = telemetry
        self.node_label = node_label
        self.priorities = PriorityMap()
        self.mailbox = BoundedQueue(
            self.config.mailbox_capacity,
            high=self.config.high_watermark,
            low=self.config.low_watermark,
        )
        self.strand_state = QueueState(
            self.config.strand_queue_capacity,
            high=self.config.high_watermark,
            low=self.config.low_watermark,
        )
        self.slow_factor = 1.0
        self.counts: Dict[str, ClassCounts] = {
            cls: ClassCounts() for cls in CLASSES
        }
        #: Bounded (time, class, reason, relation) shed records; the
        #: storm campaign's priority invariant reads these.
        self.shed_log: List[Tuple[float, str, str, str]] = []
        self.shed_log_dropped = 0
        #: Virtual time of the first shed per class (diagnostics).
        self.first_shed: Dict[str, float] = {}
        #: ``(time, reason, relation)`` of every DATA shed that happened
        #: while lower-priority admission was still open — the priority
        #: invariant's violation record (must stay empty).
        self.invariant_violations: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    # Classification

    def classify(self, relation: str) -> str:
        return self.priorities.classify(relation)

    def learn_program(self, compiled: Any, role: str) -> None:
        """Derive priority-map entries from one installed program.

        Every relation the program materializes plus every rule-head
        relation it derives is claimed for the program's role; the
        highest-priority claim wins (see :class:`PriorityMap`).
        """
        relations = set(compiled.table_names)
        for strand in compiled.strands:
            relations.add(strand.project.head.name)
        self.priorities.learn(sorted(relations), role)

    # ------------------------------------------------------------------
    # State

    @property
    def shed_active(self) -> bool:
        """True while either watermark state machine is shedding (and
        shedding is enabled at all)."""
        if not self.config.shedding:
            return False
        return self.mailbox.shedding or self.strand_state.shedding

    @property
    def service_delay(self) -> float:
        return self.config.service_time * self.slow_factor

    # ------------------------------------------------------------------
    # Admission decisions

    def admit_mailbox(self, relation: str) -> bool:
        """Local/UDP mailbox admission for one inbound tuple.

        Counts the offer; a refusal is a *shed* (UDP has no pushback)
        with its reason recorded.  The caller only pushes into the
        mailbox on True.
        """
        cls = self.classify(relation)
        counts = self.counts[cls]
        counts.offered += 1
        if not self.config.shedding:
            counts.admitted += 1
            return True
        if self.mailbox.full:
            self._shed(
                cls,
                SHED_MAILBOX_FULL if cls == CLASS_DATA else SHED_MAILBOX,
                relation,
            )
            return False
        if self.mailbox.shedding and cls != CLASS_DATA:
            self._shed(cls, SHED_MAILBOX, relation)
            return False
        counts.admitted += 1
        return True

    def admit_remote(self, relation: str) -> bool:
        """Reliable-transport admission gate (False = BUSY nack).

        Refusals here are *deferrals*, not sheds: the sender keeps the
        tuple, backs off, and retries — DATA is therefore never lost to
        overload on the reliable path, only delayed (or eventually
        surfaced to the sender as retry exhaustion).
        """
        if not self.config.shedding:
            return True
        cls = self.classify(relation)
        if self.mailbox.full or (
            self.mailbox.shedding and cls != CLASS_DATA
        ):
            counts = self.counts[cls]
            counts.offered += 1
            counts.deferred += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.event(
                    "overload.defer",
                    node=self.node_label,
                    cls=cls,
                    reason=DEFER_BUSY,
                    relation=relation,
                )
            return False
        return True

    def count_arrival(self, relation: str) -> None:
        """Count one preadmitted arrival.

        The reliable-transport gate (:meth:`admit_remote`) counts
        nothing when it accepts — the offer is tallied here, when the
        frame actually reaches :meth:`~repro.runtime.node.P2Node.receive`,
        so BUSY-then-retry-then-accept sequences come out as N offers,
        N-1 deferrals, one admission.
        """
        counts = self.counts[self.classify(relation)]
        counts.offered += 1
        counts.admitted += 1

    def shed_after_admit(
        self, relation: str, reason: str = SHED_MAILBOX_FULL
    ) -> None:
        """Retract one admission and record a shed instead.

        Covers the two paths where a tuple is dropped *after* passing
        its admission gate: a reordered reliable frame delivered into a
        mailbox that hit hard-full since arrival, and tuples abandoned
        in the mailbox when the node stops.
        """
        cls = self.classify(relation)
        self.counts[cls].admitted -= 1
        self._shed(cls, reason, relation)

    def admit_strand(self, cls: str, depth: int, relation: str = "") -> bool:
        """Pending-strand-queue admission for one (strand, tuple) firing."""
        state = self.strand_state
        was = state.shedding
        state.observe(depth)
        if state.shedding != was:
            self._state_event("strand_queue", state.shedding)
        counts = self.counts[cls]
        counts.offered += 1
        if not self.config.shedding:
            counts.admitted += 1
            return True
        if state.full(depth):
            self._shed(
                cls,
                SHED_STRAND_FULL if cls == CLASS_DATA else SHED_STRAND,
                relation,
            )
            return False
        if state.shedding and cls != CLASS_DATA:
            self._shed(cls, SHED_STRAND, relation)
            return False
        counts.admitted += 1
        return True

    def admit_periodic(self, cls: str, relation: str = "periodic") -> bool:
        """Should a periodic strand fire right now?  Low-priority
        periodic work (monitor probes, trace sweeps) skips fires while
        shedding is active."""
        if cls == CLASS_DATA or not self.shed_active:
            return True
        counts = self.counts[cls]
        counts.offered += 1
        self._shed(cls, SHED_PERIODIC, relation)
        return False

    # ------------------------------------------------------------------
    # Mailbox plumbing (the node pushes/pops; state events ride along)

    def mailbox_push(self, item: Any) -> bool:
        was = self.mailbox.shedding
        pushed = self.mailbox.push(item)
        if self.mailbox.shedding != was:
            self._state_event("mailbox", self.mailbox.shedding)
        return pushed

    def mailbox_pop(self) -> Any:
        was = self.mailbox.shedding
        item = self.mailbox.pop()
        if self.mailbox.shedding != was:
            self._state_event("mailbox", self.mailbox.shedding)
        return item

    def note_strand_depth(self, depth: int) -> None:
        """Feed a drain-side depth observation (pump pops)."""
        state = self.strand_state
        was = state.shedding
        state.observe(depth)
        if state.shedding != was:
            self._state_event("strand_queue", state.shedding)

    # ------------------------------------------------------------------
    # Accounting

    def _shed(self, cls: str, reason: str, relation: str) -> None:
        counts = self.counts[cls]
        counts.shed += 1
        counts.shed_reasons[reason] = counts.shed_reasons.get(reason, 0) + 1
        now = self._clock()
        if cls not in self.first_shed and reason != SHED_STOPPED:
            # Crash-time mailbox abandonment is not an overload
            # decision; keep it out of the priority-invariant record.
            self.first_shed[cls] = now
        if (
            cls == CLASS_DATA
            and reason != SHED_STOPPED
            and not self.shed_active
        ):
            self.invariant_violations.append((now, reason, relation))
        if len(self.shed_log) < SHED_LOG_CAPACITY:
            self.shed_log.append((now, cls, reason, relation))
        else:
            self.shed_log_dropped += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.event(
                "overload.shed",
                node=self.node_label,
                cls=cls,
                reason=reason,
                relation=relation,
            )

    def _state_event(self, queue: str, shedding: bool) -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.event(
                "overload.state",
                node=self.node_label,
                queue=queue,
                state="shedding" if shedding else "normal",
            )

    # ------------------------------------------------------------------
    # Read surface (metrics callbacks, dashboard, verdicts)

    def invariant_ok(self) -> bool:
        """The priority invariant, pointwise: every DATA shed happened
        while ``shed_active`` was true — i.e. while MONITOR/TRACE
        admission was already closed.  (No DATA sheds at all passes
        trivially.)  A recorded violation means the controller dropped
        protected application traffic at a moment when it was still
        admitting expendable monitoring traffic."""
        return not self.invariant_violations

    def totals(self) -> Dict[str, Dict[str, int]]:
        """Per-class counters, stably ordered for fingerprints."""
        return {cls: self.counts[cls].as_dict() for cls in CLASSES}

    def snapshot(self) -> dict:
        """Everything a saturation panel or verdict wants, JSON-ready."""
        return {
            "classes": self.totals(),
            "mailbox_depth": len(self.mailbox),
            "mailbox_peak": self.mailbox.depth_peak,
            "mailbox_shedding": self.mailbox.shedding,
            "strand_peak": self.strand_state.depth_peak,
            "strand_shedding": self.strand_state.shedding,
            "transitions": (
                self.mailbox.state.transitions
                + self.strand_state.transitions
            ),
            "slow_factor": self.slow_factor,
            "invariant_ok": self.invariant_ok(),
        }

    def __repr__(self) -> str:
        shed = sum(c.shed for c in self.counts.values())
        return (
            f"<OverloadController {self.node_label} "
            f"mailbox={len(self.mailbox)} shed={shed}>"
        )
