"""Soft-state tables.

A table is declared by ``materialize(name, lifetime, size, keys(...))``:
tuples expire ``lifetime`` seconds after their last (re-)insertion, the
table holds at most ``size`` tuples (oldest evicted first), and the
``keys`` positions form the primary key — inserting a tuple whose key
matches an existing row replaces that row.

Change callbacks drive the rest of the system: delta rule triggering,
event logging, and tupleTable reference counting all hang off
``on_insert`` / ``on_remove`` observers.

Secondary hash indexes (:class:`TableIndex`) accelerate join probes:
``index_on(positions)`` builds an index over an arbitrary column subset
which is then maintained automatically through every mutation path —
insert, replace, explicit delete, TTL expiry, and size-bound eviction.
``probe_index`` returns exactly the rows a full scan-and-filter would,
in the same relative order, so indexed and scanned evaluation are
observably identical (the differential harness in
``tests/runtime/test_join_differential.py`` enforces this).
"""

from __future__ import annotations

import enum
from operator import itemgetter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import SchemaError
from repro.overlog.types import INFINITY
from repro.runtime.tuples import Tuple


class InsertOutcome(enum.Enum):
    """What an insert did; only NEW and REPLACED count as changes."""

    NEW = "new"            # key was absent
    REPLACED = "replaced"  # key present with different values
    REFRESHED = "refreshed"  # identical tuple re-inserted (TTL renewed)


class RemoveReason(enum.Enum):
    """Why a tuple left the table (passed to on_remove observers)."""

    DELETED = "deleted"    # explicit delete (rule or API)
    EXPIRED = "expired"    # lifetime elapsed
    EVICTED = "evicted"    # displaced by the size bound
    REPLACED = "replaced"  # overwritten by a same-key insert


class _Row:
    __slots__ = ("tuple", "inserted_at", "expires_at", "seq", "order")

    def __init__(
        self, tup: Tuple, now: float, expires_at: float, seq: int, order: int
    ):
        self.tuple = tup
        self.inserted_at = now
        self.expires_at = expires_at
        self.seq = seq
        # Scan-order stamp: assigned when the primary key first enters the
        # table and inherited across same-key replacements, mirroring dict
        # insertion order so indexed probes can reproduce scan order.
        self.order = order


class DeltaBuffer:
    """Columnar buffer of one batch's change deltas for one table.

    The batch kernel delivers tuples in per-tick deltasets;
    :meth:`Table.insert_batch` records each row's insert outcome here.
    Storage is row-major on arrival (the tuples themselves) with lazy
    column materialization: :meth:`column` gathers one 0-based column
    across the whole batch in a single pass, which is how the batched
    join path builds probe-key vectors without touching every tuple
    object per probe.
    """

    __slots__ = ("name", "tuples", "outcomes", "_columns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.tuples: List[Tuple] = []
        self.outcomes: List[InsertOutcome] = []
        self._columns: Dict[int, List[Any]] = {}

    def append(self, tup: Tuple, outcome: InsertOutcome) -> None:
        self.tuples.append(tup)
        self.outcomes.append(outcome)
        if self._columns:
            self._columns.clear()

    def __len__(self) -> int:
        return len(self.tuples)

    def changed(self) -> List[Tuple]:
        """Rows whose insert was a state change (NEW or REPLACED)."""
        return [
            tup
            for tup, outcome in zip(self.tuples, self.outcomes)
            if outcome is not InsertOutcome.REFRESHED
        ]

    def column(self, position: int) -> List[Any]:
        """Column ``position`` (0-based) across the batch, one pass.

        Rows too short for the position contribute ``None``.
        """
        cached = self._columns.get(position)
        if cached is None:
            cached = [
                tup.values[position] if position < len(tup.values) else None
                for tup in self.tuples
            ]
            self._columns[position] = cached
        return cached


class TableIndex:
    """A secondary hash index over a subset of 0-based column positions.

    Rows whose projected key is unhashable land in a ``loose`` side set
    that every probe also examines (the probe's ``match_args`` pass does
    the filtering); rows too short for the positions are omitted
    entirely, since no pattern probing through this index can match
    them.  The index only *narrows* the candidate set — callers must
    still unify candidates against their pattern, which keeps indexed
    evaluation equivalent to a scan even for values with exotic
    equality (the scan path would reject them identically).
    """

    __slots__ = (
        "positions", "_buckets", "_loose", "_memo", "probes", "rows_served",
    )

    def __init__(self, positions: PyTuple) -> None:
        self.positions = tuple(positions)
        # index key -> {primary key: _Row}
        self._buckets: Dict[PyTuple, Dict[PyTuple, _Row]] = {}
        # primary key -> _Row, for rows with unhashable index keys
        self._loose: Dict[PyTuple, _Row] = {}
        # Probe memo: probe key -> candidate list, valid until the next
        # mutation.  A batched firing probes the same key once per
        # trigger (e.g. every succ-table probe at node n uses key (n,)),
        # so the sort-and-collect work is paid once per batch.
        self._memo: Dict[PyTuple, List[Tuple]] = {}
        # Probe counters for introspection and tests.
        self.probes = 0
        self.rows_served = 0

    def _project(self, row: _Row) -> PyTuple:
        values = row.tuple.values
        return tuple(values[i] for i in self.positions)

    def add(self, key: PyTuple, row: _Row) -> None:
        if self._memo:
            self._memo.clear()
        try:
            self._buckets.setdefault(self._project(row), {})[key] = row
        except IndexError:
            return  # row too short to match any pattern using this index
        except TypeError:
            self._loose[key] = row

    def discard(self, key: PyTuple, row: _Row) -> None:
        if self._memo:
            self._memo.clear()
        try:
            ikey = self._project(row)
            bucket = self._buckets.get(ikey)
        except IndexError:
            return
        except TypeError:
            self._loose.pop(key, None)
            return
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[ikey]

    def candidates(self, key_values: PyTuple) -> List[Tuple]:
        """Live rows whose indexed columns may equal ``key_values``.

        Returned in table scan order.  An unhashable probe key degrades
        to the full indexed row set (equivalent to a scan).  Results are
        memoized until the next index mutation; memo hits count toward
        the probe statistics exactly like cold probes, so counters stay
        kernel-independent.
        """
        self.probes += 1
        try:
            probe_key = tuple(key_values)
            cached = self._memo.get(probe_key)
        except TypeError:
            rows = [r for b in self._buckets.values() for r in b.values()]
            rows.extend(self._loose.values())
            rows.sort(key=lambda r: r.order)
            self.rows_served += len(rows)
            return [r.tuple for r in rows]
        if cached is not None:
            self.rows_served += len(cached)
            return cached
        bucket = self._buckets.get(probe_key)
        rows = list(bucket.values()) if bucket else []
        if self._loose:
            rows.extend(self._loose.values())
        # Bucket order drifts from global order on same-key replacement,
        # so always restore scan order (near-sorted: Timsort is linear).
        rows.sort(key=lambda r: r.order)
        self.rows_served += len(rows)
        result = [r.tuple for r in rows]
        self._memo[probe_key] = result
        return result

    def candidates_many(self, keys: List[PyTuple]) -> List[List[Tuple]]:
        """Probe a whole batch of keys in one call.

        Returns one candidate list per key, parallel to ``keys``.
        Repeated keys within the batch (the common case for a node
        firing one strand over a tick's deltaset) resolve through the
        memo after the first lookup.  Counters advance exactly as the
        equivalent per-key :meth:`candidates` calls would.
        """
        return [self.candidates(key) for key in keys]

    def warm_many(self, keys: List[PyTuple]) -> None:
        """Populate the probe memo for a batch of keys, in one pass.

        Unlike :meth:`candidates_many` this does *not* advance the
        probe counters: it is the batched firing path's prefetch, and
        the per-trigger probes that follow do the counting, so probe
        statistics stay identical across execution kernels.
        """
        memo = self._memo
        buckets = self._buckets
        loose = self._loose
        for key in keys:
            try:
                probe_key = tuple(key)
                if probe_key in memo:
                    continue
            except TypeError:
                continue  # unhashable keys take the scan-degrade path
            bucket = buckets.get(probe_key)
            rows = list(bucket.values()) if bucket else []
            if loose:
                rows.extend(loose.values())
            rows.sort(key=lambda r: r.order)
            memo[probe_key] = [r.tuple for r in rows]

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values()) + len(self._loose)


class Table:
    """One materialized soft-state relation on one node."""

    def __init__(
        self,
        name: str,
        lifetime: Any,
        max_size: Any,
        key_positions: List[int],
        now: Callable[[], float],
    ) -> None:
        """``key_positions`` are 1-based per the OverLog declaration."""
        if not key_positions:
            raise SchemaError(f"table {name!r} needs at least one key field")
        if any(k < 1 for k in key_positions):
            raise SchemaError(f"table {name!r}: key positions are 1-based")
        self.name = name
        self.lifetime = lifetime
        self.max_size = max_size
        self.key_positions = list(key_positions)
        self._key_idx = [k - 1 for k in key_positions]
        # Insert-path constants, hoisted: the per-row TTL as a float (or
        # None for infinity) and a C-level key projector.
        self._ttl = None if lifetime is INFINITY else float(lifetime)
        if len(self._key_idx) == 1:
            only = self._key_idx[0]
            self._key_get = lambda values: (values[only],)
        else:
            self._key_get = itemgetter(*self._key_idx)
        self._now = now
        self._rows: Dict[PyTuple, _Row] = {}
        self._seq = 0
        self._order = 0
        self._indexes: Dict[PyTuple, TableIndex] = {}
        # Earliest possible expiry among live rows (a lower bound: a
        # refresh may raise a row's expires_at without updating this).
        # Lets every table access skip the expiry pass in O(1) until a
        # deadline is actually reached.
        self._next_expiry = float("inf")
        self.on_insert: List[Callable[[Tuple, InsertOutcome], None]] = []
        self.on_remove: List[Callable[[Tuple, RemoveReason], None]] = []
        # Fired on REFRESHED inserts (identical tuple re-inserted, TTL
        # renewed).  Kept separate from on_insert because refreshes are
        # not state *changes* — delta rules must not re-trigger — but
        # durability (the recovery WAL) must still see the new deadline.
        self.on_refresh: List[Callable[[Tuple, float], None]] = []
        # Lifetime counters for introspection.
        self.total_inserts = 0
        self.total_removals = 0

    # ------------------------------------------------------------------

    def key_of(self, tup: Tuple) -> PyTuple:
        """The primary-key projection of ``tup``."""
        try:
            return self._key_get(tup.values)
        except IndexError:
            raise SchemaError(
                f"tuple {tup!r} too short for key positions "
                f"{self.key_positions} of table {self.name!r}"
            )

    def insert(self, tup: Tuple) -> InsertOutcome:
        """Insert/refresh ``tup``; fires observers; enforces bounds."""
        if tup.name != self.name:
            raise SchemaError(
                f"tuple {tup.name!r} inserted into table {self.name!r}"
            )
        self._expire_now()
        return self._insert_core(tup)

    def insert_batch(self, tuples: List[Tuple]) -> DeltaBuffer:
        """Insert a deltaset in order; one expiry pass for the batch.

        Semantically identical to calling :meth:`insert` per tuple —
        observers fire per row, in order — except the TTL expiry scan
        runs once up front.  Rows inserted earlier in the batch cannot
        expire mid-batch (their deadline is strictly in the future at
        the shared ``now``), so deferring expiry to the batch head is
        unobservable.  Returns the batch's :class:`DeltaBuffer`.
        """
        delta = DeltaBuffer(self.name)
        if not tuples:
            return delta
        self._expire_now()
        append = delta.append
        core = self._insert_core
        name = self.name
        for tup in tuples:
            if tup.name != name:
                raise SchemaError(
                    f"tuple {tup.name!r} inserted into table {name!r}"
                )
            append(tup, core(tup))
        return delta

    def _insert_core(self, tup: Tuple) -> InsertOutcome:
        try:
            key = self._key_get(tup.values)
        except IndexError:
            raise SchemaError(
                f"tuple {tup!r} too short for key positions "
                f"{self.key_positions} of table {self.name!r}"
            )
        now = self._now()
        ttl = self._ttl
        expires = float("inf") if ttl is None else now + ttl
        if expires < self._next_expiry:
            self._next_expiry = expires
        existing = self._rows.get(key)
        indexes = self._indexes
        if existing is not None:
            if existing.tuple == tup:
                existing.expires_at = expires
                existing.inserted_at = now
                for callback in list(self.on_refresh):
                    callback(tup, expires)
                return InsertOutcome.REFRESHED
            old = existing.tuple
            self._seq += 1
            # The replacing row keeps the dict slot (and therefore the
            # scan-order stamp) of the row it displaces.
            row = _Row(tup, now, expires, self._seq, existing.order)
            self._rows[key] = row
            if indexes:
                self._index_discard(key, existing)
                self._index_add(key, row)
            self.total_inserts += 1
            self.total_removals += 1
            self._notify_remove(old, RemoveReason.REPLACED)
            self._notify_insert(tup, InsertOutcome.REPLACED)
            return InsertOutcome.REPLACED

        self._seq += 1
        self._order += 1
        row = _Row(tup, now, expires, self._seq, self._order)
        self._rows[key] = row
        if indexes:
            self._index_add(key, row)
        self.total_inserts += 1
        if self.max_size is not INFINITY:
            self._enforce_size(protect=key)
        self._notify_insert(tup, InsertOutcome.NEW)
        return InsertOutcome.NEW

    def delete(self, tup: Tuple) -> bool:
        """Remove the row whose key matches ``tup``; True if removed."""
        self._expire_now()
        key = self.key_of(tup)
        row = self._rows.get(key)
        if row is None or row.tuple != tup:
            return False
        del self._rows[key]
        self._index_discard(key, row)
        self.total_removals += 1
        self._notify_remove(row.tuple, RemoveReason.DELETED)
        return True

    def delete_matching(self, values: List[Any]) -> int:
        """Delete all rows matching a pattern with None wildcards.

        Used by OverLog ``delete`` rules: unbound head variables become
        None entries and match any value.  Returns the removal count.
        """
        self._expire_now()
        victims = []
        for row in self._rows.values():
            tup = row.tuple
            if len(values) != len(tup.values):
                continue
            if all(
                pattern is None or _eq(pattern, actual)
                for pattern, actual in zip(values, tup.values)
            ):
                victims.append(tup)
        for tup in victims:
            key = self.key_of(tup)
            row = self._rows.pop(key)
            self._index_discard(key, row)
            self.total_removals += 1
            self._notify_remove(tup, RemoveReason.DELETED)
        return len(victims)

    # ------------------------------------------------------------------
    # Crash-recovery replay (repro.recovery)

    def restore(
        self,
        tup: Tuple,
        expires_at: float,
        inserted_at: Optional[float] = None,
    ) -> bool:
        """Silently (re)load a row during checkpoint/WAL replay.

        No observers fire (replayed state must not retro-trigger delta
        rules, matching P2's install semantics) and ``expires_at`` is an
        *absolute* deadline carried over from the durable record, so a
        tuple whose lifetime lapsed while the node was down is dropped
        here rather than resurrected.  Returns True if the row was kept.
        """
        if tup.name != self.name:
            raise SchemaError(
                f"tuple {tup.name!r} restored into table {self.name!r}"
            )
        now = self._now()
        if expires_at <= now:
            return False
        key = self.key_of(tup)
        existing = self._rows.get(key)
        self._seq += 1
        if existing is not None:
            row = _Row(
                tup,
                inserted_at if inserted_at is not None else now,
                expires_at,
                self._seq,
                existing.order,
            )
            self._index_discard(key, existing)
        else:
            self._order += 1
            row = _Row(
                tup,
                inserted_at if inserted_at is not None else now,
                expires_at,
                self._seq,
                self._order,
            )
        self._rows[key] = row
        self._index_add(key, row)
        if expires_at < self._next_expiry:
            self._next_expiry = expires_at
        return True

    def snapshot_rows(self) -> List[PyTuple]:
        """Live rows with their timing metadata, for checkpointing:
        ``(tuple, inserted_at, expires_at)`` triples in scan order."""
        self._expire_now()
        return [
            (row.tuple, row.inserted_at, row.expires_at)
            for row in self._rows.values()
        ]

    def restore_remove(self, tup: Tuple) -> bool:
        """Silently drop the row matching ``tup`` during WAL replay
        (the removal was already observed pre-crash; replaying it must
        not re-fire observers)."""
        key = self.key_of(tup)
        row = self._rows.get(key)
        if row is None or row.tuple != tup:
            return False
        del self._rows[key]
        self._index_discard(key, row)
        return True

    # ------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple]:
        """Iterate live tuples (expired rows are dropped first)."""
        self._expire_now()
        # Snapshot so rules may insert/delete while iterating.
        return iter([row.tuple for row in self._rows.values()])

    def lookup_key(self, key_values: PyTuple) -> Optional[Tuple]:
        """Fetch the live row with this primary key, if any."""
        self._expire_now()
        row = self._rows.get(tuple(key_values))
        return row.tuple if row is not None else None

    # ------------------------------------------------------------------
    # Secondary indexes

    def index_on(self, positions: List[int]) -> TableIndex:
        """Get or build a secondary index over 0-based column positions.

        Positions are canonicalized (sorted, deduplicated), so callers
        binding the same column subset share one index.  A new index is
        backfilled from the current rows — programs are routinely
        installed on nodes whose tables already hold state.
        """
        canon = tuple(sorted({int(p) for p in positions}))
        if not canon:
            raise SchemaError(
                f"table {self.name!r}: an index needs at least one column"
            )
        if canon[0] < 0:
            raise SchemaError(
                f"table {self.name!r}: index positions are 0-based "
                f"column offsets, got {positions!r}"
            )
        index = self._indexes.get(canon)
        if index is None:
            index = TableIndex(canon)
            for key, row in self._rows.items():
                index.add(key, row)
            self._indexes[canon] = index
        return index

    def indexes(self) -> List[TableIndex]:
        """The table's secondary indexes (for introspection)."""
        return list(self._indexes.values())

    def probe_index(self, index: TableIndex, key_values: PyTuple) -> List[Tuple]:
        """Live tuples whose ``index.positions`` columns may equal
        ``key_values``, in scan order (expired rows are dropped first,
        exactly as :meth:`scan` does)."""
        self._expire_now()
        return index.candidates(key_values)

    def probe_index_batch(
        self, index: TableIndex, keys: List[PyTuple]
    ) -> List[List[Tuple]]:
        """Probe a whole batch of keys against ``index`` in one call.

        One expiry pass covers the batch; repeated keys hit the index's
        probe memo.  Returns one candidate list per key, in scan order,
        exactly as per-key :meth:`probe_index` calls would.
        """
        self._expire_now()
        return index.candidates_many(keys)

    def warm_index(self, index: TableIndex, keys: List[PyTuple]) -> None:
        """Prefetch ``index``'s probe memo for a batch of keys (one
        expiry pass, no counter movement — see
        :meth:`TableIndex.warm_many`)."""
        self._expire_now()
        index.warm_many(keys)

    def _index_add(self, key: PyTuple, row: _Row) -> None:
        for index in self._indexes.values():
            index.add(key, row)

    def _index_discard(self, key: PyTuple, row: _Row) -> None:
        for index in self._indexes.values():
            index.discard(key, row)

    def __len__(self) -> int:
        self._expire_now()
        return len(self._rows)

    def __contains__(self, tup: Tuple) -> bool:
        self._expire_now()
        row = self._rows.get(self.key_of(tup))
        return row is not None and row.tuple == tup

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of live tuples."""
        self._expire_now()
        return sum(row.tuple.estimated_size() for row in self._rows.values())

    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Force expiry processing; returns number of tuples expired."""
        return self._expire_now()

    def _expire_now(self) -> int:
        if self.lifetime is INFINITY:
            return 0
        now = self._now()
        if now < self._next_expiry:
            return 0
        expired = [
            key for key, row in self._rows.items() if row.expires_at <= now
        ]
        for key in expired:
            row = self._rows.pop(key)
            self._index_discard(key, row)
            self.total_removals += 1
            self._notify_remove(row.tuple, RemoveReason.EXPIRED)
        # Recompute the bound from survivors; a stale (too-low) value
        # only costs one empty pass when that instant is reached.
        self._next_expiry = min(
            (row.expires_at for row in self._rows.values()),
            default=float("inf"),
        )
        return len(expired)

    def _enforce_size(self, protect: PyTuple) -> None:
        if self.max_size is INFINITY:
            return
        limit = int(self.max_size)
        while len(self._rows) > limit:
            # Evict the least-recently (re-)inserted row: refreshing a
            # tuple keeps it alive, which is the soft-state contract the
            # Chord stabilization rules rely on.
            victim_key = min(
                (k for k in self._rows if k != protect),
                key=lambda k: (self._rows[k].inserted_at, self._rows[k].seq),
                default=None,
            )
            if victim_key is None:
                return
            row = self._rows.pop(victim_key)
            self._index_discard(victim_key, row)
            self.total_removals += 1
            self._notify_remove(row.tuple, RemoveReason.EVICTED)

    def _notify_insert(self, tup: Tuple, outcome: InsertOutcome) -> None:
        callbacks = self.on_insert
        if len(callbacks) == 1:
            # Hot path: exactly one observer (the owning node).  A lone
            # callback that mutates the list mid-call sees the same
            # behaviour a snapshot would give it.
            callbacks[0](tup, outcome)
        elif callbacks:
            for callback in list(callbacks):
                callback(tup, outcome)

    def _notify_remove(self, tup: Tuple, reason: RemoveReason) -> None:
        callbacks = self.on_remove
        if len(callbacks) == 1:
            callbacks[0](tup, reason)
        elif callbacks:
            for callback in list(callbacks):
                callback(tup, reason)


def _eq(a: Any, b: Any) -> bool:
    try:
        result = a == b
    except Exception:
        return False
    return result is True
