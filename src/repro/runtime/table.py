"""Soft-state tables.

A table is declared by ``materialize(name, lifetime, size, keys(...))``:
tuples expire ``lifetime`` seconds after their last (re-)insertion, the
table holds at most ``size`` tuples (oldest evicted first), and the
``keys`` positions form the primary key — inserting a tuple whose key
matches an existing row replaces that row.

Change callbacks drive the rest of the system: delta rule triggering,
event logging, and tupleTable reference counting all hang off
``on_insert`` / ``on_remove`` observers.

Secondary hash indexes (:class:`TableIndex`) accelerate join probes:
``index_on(positions)`` builds an index over an arbitrary column subset
which is then maintained automatically through every mutation path —
insert, replace, explicit delete, TTL expiry, and size-bound eviction.
``probe_index`` returns exactly the rows a full scan-and-filter would,
in the same relative order, so indexed and scanned evaluation are
observably identical (the differential harness in
``tests/runtime/test_join_differential.py`` enforces this).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import SchemaError
from repro.overlog.types import INFINITY
from repro.runtime.tuples import Tuple


class InsertOutcome(enum.Enum):
    """What an insert did; only NEW and REPLACED count as changes."""

    NEW = "new"            # key was absent
    REPLACED = "replaced"  # key present with different values
    REFRESHED = "refreshed"  # identical tuple re-inserted (TTL renewed)


class RemoveReason(enum.Enum):
    """Why a tuple left the table (passed to on_remove observers)."""

    DELETED = "deleted"    # explicit delete (rule or API)
    EXPIRED = "expired"    # lifetime elapsed
    EVICTED = "evicted"    # displaced by the size bound
    REPLACED = "replaced"  # overwritten by a same-key insert


class _Row:
    __slots__ = ("tuple", "inserted_at", "expires_at", "seq", "order")

    def __init__(
        self, tup: Tuple, now: float, expires_at: float, seq: int, order: int
    ):
        self.tuple = tup
        self.inserted_at = now
        self.expires_at = expires_at
        self.seq = seq
        # Scan-order stamp: assigned when the primary key first enters the
        # table and inherited across same-key replacements, mirroring dict
        # insertion order so indexed probes can reproduce scan order.
        self.order = order


class TableIndex:
    """A secondary hash index over a subset of 0-based column positions.

    Rows whose projected key is unhashable land in a ``loose`` side set
    that every probe also examines (the probe's ``match_args`` pass does
    the filtering); rows too short for the positions are omitted
    entirely, since no pattern probing through this index can match
    them.  The index only *narrows* the candidate set — callers must
    still unify candidates against their pattern, which keeps indexed
    evaluation equivalent to a scan even for values with exotic
    equality (the scan path would reject them identically).
    """

    __slots__ = ("positions", "_buckets", "_loose", "probes", "rows_served")

    def __init__(self, positions: PyTuple) -> None:
        self.positions = tuple(positions)
        # index key -> {primary key: _Row}
        self._buckets: Dict[PyTuple, Dict[PyTuple, _Row]] = {}
        # primary key -> _Row, for rows with unhashable index keys
        self._loose: Dict[PyTuple, _Row] = {}
        # Probe counters for introspection and tests.
        self.probes = 0
        self.rows_served = 0

    def _project(self, row: _Row) -> PyTuple:
        values = row.tuple.values
        return tuple(values[i] for i in self.positions)

    def add(self, key: PyTuple, row: _Row) -> None:
        try:
            self._buckets.setdefault(self._project(row), {})[key] = row
        except IndexError:
            return  # row too short to match any pattern using this index
        except TypeError:
            self._loose[key] = row

    def discard(self, key: PyTuple, row: _Row) -> None:
        try:
            ikey = self._project(row)
            bucket = self._buckets.get(ikey)
        except IndexError:
            return
        except TypeError:
            self._loose.pop(key, None)
            return
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[ikey]

    def candidates(self, key_values: PyTuple) -> List[Tuple]:
        """Live rows whose indexed columns may equal ``key_values``.

        Returned in table scan order.  An unhashable probe key degrades
        to the full indexed row set (equivalent to a scan).
        """
        self.probes += 1
        try:
            bucket = self._buckets.get(tuple(key_values))
        except TypeError:
            rows = [r for b in self._buckets.values() for r in b.values()]
            rows.extend(self._loose.values())
            rows.sort(key=lambda r: r.order)
            self.rows_served += len(rows)
            return [r.tuple for r in rows]
        rows = list(bucket.values()) if bucket else []
        if self._loose:
            rows.extend(self._loose.values())
        # Bucket order drifts from global order on same-key replacement,
        # so always restore scan order (near-sorted: Timsort is linear).
        rows.sort(key=lambda r: r.order)
        self.rows_served += len(rows)
        return [r.tuple for r in rows]

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values()) + len(self._loose)


class Table:
    """One materialized soft-state relation on one node."""

    def __init__(
        self,
        name: str,
        lifetime: Any,
        max_size: Any,
        key_positions: List[int],
        now: Callable[[], float],
    ) -> None:
        """``key_positions`` are 1-based per the OverLog declaration."""
        if not key_positions:
            raise SchemaError(f"table {name!r} needs at least one key field")
        if any(k < 1 for k in key_positions):
            raise SchemaError(f"table {name!r}: key positions are 1-based")
        self.name = name
        self.lifetime = lifetime
        self.max_size = max_size
        self.key_positions = list(key_positions)
        self._key_idx = [k - 1 for k in key_positions]
        self._now = now
        self._rows: Dict[PyTuple, _Row] = {}
        self._seq = 0
        self._order = 0
        self._indexes: Dict[PyTuple, TableIndex] = {}
        # Earliest possible expiry among live rows (a lower bound: a
        # refresh may raise a row's expires_at without updating this).
        # Lets every table access skip the expiry pass in O(1) until a
        # deadline is actually reached.
        self._next_expiry = float("inf")
        self.on_insert: List[Callable[[Tuple, InsertOutcome], None]] = []
        self.on_remove: List[Callable[[Tuple, RemoveReason], None]] = []
        # Fired on REFRESHED inserts (identical tuple re-inserted, TTL
        # renewed).  Kept separate from on_insert because refreshes are
        # not state *changes* — delta rules must not re-trigger — but
        # durability (the recovery WAL) must still see the new deadline.
        self.on_refresh: List[Callable[[Tuple, float], None]] = []
        # Lifetime counters for introspection.
        self.total_inserts = 0
        self.total_removals = 0

    # ------------------------------------------------------------------

    def key_of(self, tup: Tuple) -> PyTuple:
        """The primary-key projection of ``tup``."""
        try:
            return tuple(tup.values[i] for i in self._key_idx)
        except IndexError:
            raise SchemaError(
                f"tuple {tup!r} too short for key positions "
                f"{self.key_positions} of table {self.name!r}"
            )

    def insert(self, tup: Tuple) -> InsertOutcome:
        """Insert/refresh ``tup``; fires observers; enforces bounds."""
        if tup.name != self.name:
            raise SchemaError(
                f"tuple {tup.name!r} inserted into table {self.name!r}"
            )
        self._expire_now()
        key = self.key_of(tup)
        now = self._now()
        expires = (
            float("inf")
            if self.lifetime is INFINITY
            else now + float(self.lifetime)
        )
        if expires < self._next_expiry:
            self._next_expiry = expires
        existing = self._rows.get(key)
        if existing is not None:
            if existing.tuple == tup:
                existing.expires_at = expires
                existing.inserted_at = now
                for callback in list(self.on_refresh):
                    callback(tup, expires)
                return InsertOutcome.REFRESHED
            old = existing.tuple
            self._seq += 1
            # The replacing row keeps the dict slot (and therefore the
            # scan-order stamp) of the row it displaces.
            row = _Row(tup, now, expires, self._seq, existing.order)
            self._rows[key] = row
            self._index_discard(key, existing)
            self._index_add(key, row)
            self.total_inserts += 1
            self.total_removals += 1
            self._notify_remove(old, RemoveReason.REPLACED)
            self._notify_insert(tup, InsertOutcome.REPLACED)
            return InsertOutcome.REPLACED

        self._seq += 1
        self._order += 1
        row = _Row(tup, now, expires, self._seq, self._order)
        self._rows[key] = row
        self._index_add(key, row)
        self.total_inserts += 1
        self._enforce_size(protect=key)
        self._notify_insert(tup, InsertOutcome.NEW)
        return InsertOutcome.NEW

    def delete(self, tup: Tuple) -> bool:
        """Remove the row whose key matches ``tup``; True if removed."""
        self._expire_now()
        key = self.key_of(tup)
        row = self._rows.get(key)
        if row is None or row.tuple != tup:
            return False
        del self._rows[key]
        self._index_discard(key, row)
        self.total_removals += 1
        self._notify_remove(row.tuple, RemoveReason.DELETED)
        return True

    def delete_matching(self, values: List[Any]) -> int:
        """Delete all rows matching a pattern with None wildcards.

        Used by OverLog ``delete`` rules: unbound head variables become
        None entries and match any value.  Returns the removal count.
        """
        self._expire_now()
        victims = []
        for row in self._rows.values():
            tup = row.tuple
            if len(values) != len(tup.values):
                continue
            if all(
                pattern is None or _eq(pattern, actual)
                for pattern, actual in zip(values, tup.values)
            ):
                victims.append(tup)
        for tup in victims:
            key = self.key_of(tup)
            row = self._rows.pop(key)
            self._index_discard(key, row)
            self.total_removals += 1
            self._notify_remove(tup, RemoveReason.DELETED)
        return len(victims)

    # ------------------------------------------------------------------
    # Crash-recovery replay (repro.recovery)

    def restore(
        self,
        tup: Tuple,
        expires_at: float,
        inserted_at: Optional[float] = None,
    ) -> bool:
        """Silently (re)load a row during checkpoint/WAL replay.

        No observers fire (replayed state must not retro-trigger delta
        rules, matching P2's install semantics) and ``expires_at`` is an
        *absolute* deadline carried over from the durable record, so a
        tuple whose lifetime lapsed while the node was down is dropped
        here rather than resurrected.  Returns True if the row was kept.
        """
        if tup.name != self.name:
            raise SchemaError(
                f"tuple {tup.name!r} restored into table {self.name!r}"
            )
        now = self._now()
        if expires_at <= now:
            return False
        key = self.key_of(tup)
        existing = self._rows.get(key)
        self._seq += 1
        if existing is not None:
            row = _Row(
                tup,
                inserted_at if inserted_at is not None else now,
                expires_at,
                self._seq,
                existing.order,
            )
            self._index_discard(key, existing)
        else:
            self._order += 1
            row = _Row(
                tup,
                inserted_at if inserted_at is not None else now,
                expires_at,
                self._seq,
                self._order,
            )
        self._rows[key] = row
        self._index_add(key, row)
        if expires_at < self._next_expiry:
            self._next_expiry = expires_at
        return True

    def snapshot_rows(self) -> List[PyTuple]:
        """Live rows with their timing metadata, for checkpointing:
        ``(tuple, inserted_at, expires_at)`` triples in scan order."""
        self._expire_now()
        return [
            (row.tuple, row.inserted_at, row.expires_at)
            for row in self._rows.values()
        ]

    def restore_remove(self, tup: Tuple) -> bool:
        """Silently drop the row matching ``tup`` during WAL replay
        (the removal was already observed pre-crash; replaying it must
        not re-fire observers)."""
        key = self.key_of(tup)
        row = self._rows.get(key)
        if row is None or row.tuple != tup:
            return False
        del self._rows[key]
        self._index_discard(key, row)
        return True

    # ------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple]:
        """Iterate live tuples (expired rows are dropped first)."""
        self._expire_now()
        # Snapshot so rules may insert/delete while iterating.
        return iter([row.tuple for row in self._rows.values()])

    def lookup_key(self, key_values: PyTuple) -> Optional[Tuple]:
        """Fetch the live row with this primary key, if any."""
        self._expire_now()
        row = self._rows.get(tuple(key_values))
        return row.tuple if row is not None else None

    # ------------------------------------------------------------------
    # Secondary indexes

    def index_on(self, positions: List[int]) -> TableIndex:
        """Get or build a secondary index over 0-based column positions.

        Positions are canonicalized (sorted, deduplicated), so callers
        binding the same column subset share one index.  A new index is
        backfilled from the current rows — programs are routinely
        installed on nodes whose tables already hold state.
        """
        canon = tuple(sorted({int(p) for p in positions}))
        if not canon:
            raise SchemaError(
                f"table {self.name!r}: an index needs at least one column"
            )
        if canon[0] < 0:
            raise SchemaError(
                f"table {self.name!r}: index positions are 0-based "
                f"column offsets, got {positions!r}"
            )
        index = self._indexes.get(canon)
        if index is None:
            index = TableIndex(canon)
            for key, row in self._rows.items():
                index.add(key, row)
            self._indexes[canon] = index
        return index

    def indexes(self) -> List[TableIndex]:
        """The table's secondary indexes (for introspection)."""
        return list(self._indexes.values())

    def probe_index(self, index: TableIndex, key_values: PyTuple) -> List[Tuple]:
        """Live tuples whose ``index.positions`` columns may equal
        ``key_values``, in scan order (expired rows are dropped first,
        exactly as :meth:`scan` does)."""
        self._expire_now()
        return index.candidates(key_values)

    def _index_add(self, key: PyTuple, row: _Row) -> None:
        for index in self._indexes.values():
            index.add(key, row)

    def _index_discard(self, key: PyTuple, row: _Row) -> None:
        for index in self._indexes.values():
            index.discard(key, row)

    def __len__(self) -> int:
        self._expire_now()
        return len(self._rows)

    def __contains__(self, tup: Tuple) -> bool:
        self._expire_now()
        row = self._rows.get(self.key_of(tup))
        return row is not None and row.tuple == tup

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of live tuples."""
        self._expire_now()
        return sum(row.tuple.estimated_size() for row in self._rows.values())

    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Force expiry processing; returns number of tuples expired."""
        return self._expire_now()

    def _expire_now(self) -> int:
        if self.lifetime is INFINITY:
            return 0
        now = self._now()
        if now < self._next_expiry:
            return 0
        expired = [
            key for key, row in self._rows.items() if row.expires_at <= now
        ]
        for key in expired:
            row = self._rows.pop(key)
            self._index_discard(key, row)
            self.total_removals += 1
            self._notify_remove(row.tuple, RemoveReason.EXPIRED)
        # Recompute the bound from survivors; a stale (too-low) value
        # only costs one empty pass when that instant is reached.
        self._next_expiry = min(
            (row.expires_at for row in self._rows.values()),
            default=float("inf"),
        )
        return len(expired)

    def _enforce_size(self, protect: PyTuple) -> None:
        if self.max_size is INFINITY:
            return
        limit = int(self.max_size)
        while len(self._rows) > limit:
            # Evict the least-recently (re-)inserted row: refreshing a
            # tuple keeps it alive, which is the soft-state contract the
            # Chord stabilization rules rely on.
            victim_key = min(
                (k for k in self._rows if k != protect),
                key=lambda k: (self._rows[k].inserted_at, self._rows[k].seq),
                default=None,
            )
            if victim_key is None:
                return
            row = self._rows.pop(victim_key)
            self._index_discard(victim_key, row)
            self.total_removals += 1
            self._notify_remove(row.tuple, RemoveReason.EVICTED)

    def _notify_insert(self, tup: Tuple, outcome: InsertOutcome) -> None:
        for callback in list(self.on_insert):
            callback(tup, outcome)

    def _notify_remove(self, tup: Tuple, reason: RemoveReason) -> None:
        for callback in list(self.on_remove):
            callback(tup, reason)


def _eq(a: Any, b: Any) -> bool:
    try:
        result = a == b
    except Exception:
        return False
    return result is True
