"""Compiled rule strands: the executable form of one OverLog rule.

A strand is the chain of dataflow elements the planner produced for one
(rule, trigger-predicate) pair, as in the paper's Figure 1.  Firing a
strand with a trigger tuple enumerates all derivations of the rule body
by backtracking through the join elements, then projects head tuples
(possibly after aggregation) into emit/delete actions that the node
routes.

Tracing: the strand reports to an optional hooks object — input
observation, per-stage precondition observations, output observations,
and stage completions (ascending, at end of firing, matching P2's pull
dataflow where only the first join draws from the event queue).  The
tracer (repro.introspect.tracer) implements these hooks to reconstruct
``ruleExec`` rows, including under pipelined interleavings driven
through the same API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple, Union

from repro.errors import EvaluationError
from repro.overlog import ast
from repro.overlog.builtins import EvalContext
from repro.overlog.expr import evaluate
from repro.runtime.elements import (
    AssignElement,
    Element,
    JoinElement,
    MatchElement,
    ProjectElement,
    SelectElement,
)
from repro.runtime.aggregates import apply_aggregate
from repro.runtime.tuples import Tuple

Bindings = Dict[str, Any]


@dataclass
class EmitAction:
    """Route this tuple to its location (insert/trigger there)."""

    tuple: Tuple


@dataclass
class DeleteAction:
    """Delete tuples matching ``pattern`` (None = wildcard) at ``location``."""

    name: str
    location: Any
    pattern: PyTuple


Action = Union[EmitAction, DeleteAction]


@dataclass
class AggregateSpec:
    """Placement of a head aggregate: which head arg, func, and variable."""

    index: int
    func: str
    var: Optional[str]


class TraceHooks:
    """No-op trace hooks; the tracer subclasses this."""

    def input_observed(self, strand: "RuleStrand", tup: Tuple, when: float) -> None:
        pass

    def precondition_observed(
        self, strand: "RuleStrand", stage: int, tup: Tuple, when: float
    ) -> None:
        pass

    def output_observed(self, strand: "RuleStrand", tup: Tuple, when: float) -> None:
        pass

    def stage_completed(self, strand: "RuleStrand", stage: int) -> None:
        pass


class CompositeTraceHooks(TraceHooks):
    """Fan one hook stream out to several consumers.

    The tracer and the telemetry plane (:mod:`repro.obs.hooks`) both
    ride the same strand seam; when a node has more than one consumer
    its ``hooks`` attribute is one of these.
    """

    def __init__(self, hooks: List[TraceHooks]) -> None:
        self.hooks = list(hooks)

    def input_observed(self, strand: "RuleStrand", tup: Tuple, when: float) -> None:
        for hook in self.hooks:
            hook.input_observed(strand, tup, when)

    def precondition_observed(
        self, strand: "RuleStrand", stage: int, tup: Tuple, when: float
    ) -> None:
        for hook in self.hooks:
            hook.precondition_observed(strand, stage, tup, when)

    def output_observed(self, strand: "RuleStrand", tup: Tuple, when: float) -> None:
        for hook in self.hooks:
            hook.output_observed(strand, tup, when)

    def stage_completed(self, strand: "RuleStrand", stage: int) -> None:
        for hook in self.hooks:
            hook.stage_completed(strand, stage)


#: Sentinel distinguishing "not pre-unified" from "pre-unified to None
#: (no match)" in :meth:`RuleStrand.fire`.
_UNMATCHED = object()


class RuleStrand:
    """One compiled (rule, trigger) pair, executable against a node."""

    def __init__(
        self,
        rule: ast.Rule,
        strand_id: str,
        program_name: str,
        match: MatchElement,
        ops: List[Element],
        project: ProjectElement,
        aggregate: Optional[AggregateSpec],
        periodic: Optional[PyTuple] = None,
    ) -> None:
        self.rule = rule
        self.strand_id = strand_id
        self.program_name = program_name
        self.match = match
        self.ops = ops
        self.project = project
        self.aggregate = aggregate
        # (nonce_var_name, period_seconds) when triggered by periodic().
        self.periodic = periodic
        # Overload-protection priority class ("data"/"monitor"/"trace");
        # set from the owning Program's role at install time.
        self.overload_class = "data"
        # Set by the planner when the strand leads with an indexed join:
        # fire_batch warms that index with the batch's key vector.
        self.batch_probe: Optional[JoinElement] = None
        self.firings = 0
        self.outputs = 0

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id or self.strand_id

    @property
    def trigger_name(self) -> str:
        return self.match.pattern.name

    @property
    def num_stages(self) -> int:
        """Pipeline stages = stateful (join) elements, at least 1."""
        joins = sum(1 for op in self.ops if isinstance(op, JoinElement))
        return max(1, joins)

    def elements(self) -> List[Element]:
        """All elements in strand order (for introspection)."""
        return [self.match] + list(self.ops) + [self.project]

    # ------------------------------------------------------------------

    def fire(
        self,
        trigger: Tuple,
        ctx: EvalContext,
        hooks: Optional[TraceHooks] = None,
        charge: Optional[Callable[[str, int], None]] = None,
        _prematched: Any = _UNMATCHED,
    ) -> List[Action]:
        """Run the strand on ``trigger``; returns the actions produced.

        ``_prematched`` lets :meth:`fire_batch` hand over the trigger
        unification it already performed while building probe-key
        vectors; the ``match`` work charge is still levied here so
        accounting is independent of which path unified.
        """
        if _prematched is _UNMATCHED:
            bindings = self.match.match(trigger)
        else:
            bindings = _prematched
        if charge:
            charge("match", 1)
        if bindings is None:
            return []
        self.firings += 1
        if hooks:
            hooks.input_observed(self, trigger, ctx.now())

        results: List[Bindings] = []
        actions: List[Action] = []

        def solve(index: int, current: Bindings) -> None:
            if index == len(self.ops):
                results.append(current)
                if self.aggregate is None:
                    action = self._project_one(current, ctx)
                    if action is not None:
                        actions.append(action)
                        if hooks and isinstance(action, EmitAction):
                            hooks.output_observed(
                                self, action.tuple, ctx.now()
                            )
                return
            op = self.ops[index]
            if isinstance(op, JoinElement):
                # The element's own ``probes`` counter is the single
                # source of truth for rows examined; the work charge is
                # derived from its delta so profiling monitors and the
                # work model can never disagree.
                probes_before = op.probes
                for tup, extended in op.matches(current):
                    if hooks:
                        hooks.precondition_observed(
                            self, op.stage, tup, ctx.now()
                        )
                    solve(index + 1, extended)
                if charge:
                    charge("join", 1)
                    examined = op.probes - probes_before
                    charge(
                        "join_indexed" if op.uses_index else "join_probe",
                        max(1, examined),
                    )
            elif isinstance(op, SelectElement):
                if charge:
                    charge("select", 1)
                try:
                    ok = op.accepts(current, ctx)
                except EvaluationError:
                    ok = False
                if ok:
                    solve(index + 1, current)
            elif isinstance(op, AssignElement):
                if charge:
                    charge("assign", 1)
                extended = op.apply(current, ctx)
                if extended is not None:
                    solve(index + 1, extended)
            else:  # pragma: no cover - planner only emits the above
                raise TypeError(f"unexpected element {op!r}")

        solve(0, bindings)

        if self.aggregate is not None:
            for action in self._project_aggregated(bindings, results, ctx):
                actions.append(action)
                if hooks and isinstance(action, EmitAction):
                    hooks.output_observed(self, action.tuple, ctx.now())

        if hooks:
            for stage in range(1, self.num_stages + 1):
                hooks.stage_completed(self, stage)
        self.outputs += len(actions)
        if charge:
            charge("project", max(1, len(actions)))
        return actions

    # ------------------------------------------------------------------

    def fire_batch(
        self,
        triggers: List[Tuple],
        ctx: EvalContext,
        hooks: Optional[TraceHooks] = None,
        work: Any = None,
        route: Optional[Callable[[Action], None]] = None,
    ) -> List[Action]:
        """Fire the strand once over a whole deltaset of triggers.

        Semantics are exactly ``fire`` per trigger, in order — each
        trigger is its own derivation scope (its own aggregate fold),
        and when ``route`` is given each trigger's actions are routed
        *before* the next trigger fires, so table state evolves exactly
        as under per-tuple execution even for rules that read relations
        they write.  The batch path adds the economies:

        the whole deltaset is unified against the trigger pattern up
        front and the first join's hash index is probed with the
        batch's key vector in one call (:meth:`Table.warm_index`), so
        bucket collection and scan-order sorting are paid once per
        distinct key (mid-batch table writes invalidate the memo, so
        prefetched buckets can never go stale).  Work charges go through
        ``work.charge`` per operation, in the exact per-tuple order —
        float accumulation order matters for bit-identical
        ``busy_seconds``, so no batching there.

        When trace hooks are active the strand falls back to per-trigger
        ``fire`` so observation ordering is untouched.  Without
        ``route`` the concatenated action list is returned instead.
        """
        actions: List[Action] = []
        if hooks is not None or work is None:
            for trigger in triggers:
                fired = self.fire(trigger, ctx, hooks=hooks)
                if route is not None:
                    for action in fired:
                        route(action)
                else:
                    actions.extend(fired)
            return actions

        charge = work.charge

        # Pre-unify the deltaset and batch-probe the first join's index.
        prematched: Any = None
        first = self.batch_probe
        if first is not None and len(triggers) > 1:
            prematched = [self.match.match(t) for t in triggers]
            key_sources = first.key_sources
            keys = []
            for bindings in prematched:
                if bindings is None:
                    continue
                try:
                    keys.append(
                        tuple(
                            bindings[var] if var is not None else const
                            for var, const in key_sources
                        )
                    )
                except KeyError:
                    continue  # fire() will surface the planner bug
            if keys:
                first.table.warm_index(first.index, keys)

        for position, trigger in enumerate(triggers):
            fired = self.fire(
                trigger,
                ctx,
                charge=charge,
                _prematched=(
                    _UNMATCHED if prematched is None else prematched[position]
                ),
            )
            if route is not None:
                for action in fired:
                    route(action)
            else:
                actions.extend(fired)
        return actions

    # ------------------------------------------------------------------

    def _project_one(
        self, bindings: Bindings, ctx: EvalContext
    ) -> Optional[Action]:
        if self.rule.delete:
            location, pattern = self.project.delete_pattern(bindings, ctx)
            return DeleteAction(self.project.head.name, location, pattern)
        try:
            tup = self.project.project(bindings, ctx)
        except EvaluationError:
            return None
        return EmitAction(tup)

    def _project_aggregated(
        self,
        trigger_bindings: Bindings,
        results: List[Bindings],
        ctx: EvalContext,
    ) -> List[Action]:
        """Group results by the non-aggregate head args and fold.

        When there are no results but every non-aggregate head argument
        is computable from the trigger bindings alone, a ``count`` rule
        still emits a zero row — the paper's rule sr8 relies on observing
        ``count == 0`` for a fresh snapshot marker.
        """
        assert self.aggregate is not None
        spec = self.aggregate
        head_args = self.project.head.args

        groups: Dict[PyTuple, List[Any]] = {}
        order: List[PyTuple] = []
        for bindings in results:
            try:
                key = tuple(
                    evaluate(arg, bindings, ctx)
                    for i, arg in enumerate(head_args)
                    if i != spec.index
                )
            except EvaluationError:
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            if spec.var is not None:
                groups[key].append(bindings[spec.var])
            else:
                groups[key].append(1)

        if not groups:
            try:
                key = tuple(
                    evaluate(arg, trigger_bindings, ctx)
                    for i, arg in enumerate(head_args)
                    if i != spec.index
                )
                groups[key] = []
                order.append(key)
            except EvaluationError:
                return []

        actions: List[Action] = []
        for key in order:
            folded = apply_aggregate(spec.func, groups[key])
            if folded is None:
                continue
            values: List[Any] = []
            position = 0
            for i in range(len(head_args)):
                if i == spec.index:
                    values.append(folded)
                else:
                    values.append(key[position])
                    position += 1
            actions.append(
                EmitAction(Tuple(self.project.head.name, tuple(values)))
            )
        return actions

    def __repr__(self) -> str:
        return (
            f"<RuleStrand {self.rule_id} trigger={self.trigger_name} "
            f"ops={len(self.ops)}>"
        )
