"""Aggregate functions for rule heads (``count<*>``, ``min<D>``, ...).

P2 computes head aggregates over all derivations of the rule body at
trigger time, grouped by the non-aggregate head fields.  ``count``
counts derivations; ``min``/``max``/``sum``/``avg`` fold the aggregate
variable's values.  ``count`` over an empty group is 0 (and such a row
is still emitted when the group key is determined by the trigger alone —
the paper's rule ``sr8`` depends on receiving ``count == 0``); the other
functions emit nothing for empty groups.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import EvaluationError


def _agg_count(values: List[Any]) -> int:
    return len(values)


def _agg_min(values: List[Any]) -> Any:
    return min(values)


def _agg_max(values: List[Any]) -> Any:
    return max(values)


def _agg_sum(values: List[Any]) -> Any:
    total = values[0]
    for value in values[1:]:
        total = total + value
    return total


def _agg_avg(values: List[Any]) -> float:
    return sum(float(v) for v in values) / len(values)


def _agg_topk(values: List[Any]) -> tuple:
    """Heavy hitters: the top-k distinct values by multiplicity.

    Returns a tuple of ``(value, count)`` pairs, heaviest first, ties
    broken by the value's canonical order so the result is
    deterministic.  k is :data:`repro.aggtree.partials.DEFAULT_TOP_K`;
    the in-network path (:mod:`repro.aggtree`) computes the same answer
    through its bounded mergeable sketch.
    """
    from repro.aggtree.partials import DEFAULT_TOP_K, sort_key

    counts: Dict[Any, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], sort_key(kv[0])))
    return tuple(ranked[:DEFAULT_TOP_K])


_FUNCS: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _agg_count,
    "min": _agg_min,
    "max": _agg_max,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "topk": _agg_topk,
}

EMPTY_GROUP_RESULTS = {"count": 0}
"""Aggregates that produce a value over an empty group."""


def apply_aggregate(func: str, values: List[Any]) -> Optional[Any]:
    """Fold ``values`` with the named aggregate.

    Returns None when the aggregate has no value for an empty group
    (min/max/sum/avg of nothing).
    """
    if func not in _FUNCS:
        raise EvaluationError(f"unknown aggregate function {func!r}")
    if not values:
        return EMPTY_GROUP_RESULTS.get(func)
    try:
        return _FUNCS[func](values)
    except TypeError as exc:
        raise EvaluationError(
            f"aggregate {func} over incomparable values: {exc}"
        ) from exc
