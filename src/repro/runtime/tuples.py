"""Immutable tuples — P2's universal data representation.

A tuple has a predicate name and a flat value sequence whose first field
is, by convention, the address where the tuple lives (its location
specifier).  Tuples are immutable and hashable; node-unique IDs for
tracing are assigned by the node's tuple table, not stored here, so the
same logical tuple can be memoized independently on each node (as the
paper's ``tupleTable`` requires).
"""

from __future__ import annotations

from typing import Any, Tuple as PyTuple

from repro.overlog.types import NodeID, format_value


class Tuple:
    """An immutable (name, values) pair."""

    __slots__ = ("name", "values", "_hash", "_size")

    def __init__(self, name: str, values: PyTuple) -> None:
        self.name = name
        self.values = tuple(values)
        self._hash = hash((name, self.values))
        self._size = -1

    @property
    def location(self) -> Any:
        """The location specifier — where this tuple lives (first field)."""
        if not self.values:
            raise IndexError(f"tuple {self.name} has no location field")
        return self.values[0]

    @property
    def arity(self) -> int:
        return len(self.values)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return self.name == other.name and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        rest = ", ".join(format_value(v) for v in self.values[1:])
        loc = self.values[0] if self.values else "?"
        return f"{self.name}@{loc}({rest})"

    def estimated_size(self) -> int:
        """Rough wire size in bytes (for bandwidth accounting).

        Cached: tuples are immutable, and the accounting paths ask for
        the size on every delivery.
        """
        total = self._size
        if total < 0:
            total = len(self.name) + 8
            for value in self.values:
                # Exact-type fast path for the dominant scalars; bool
                # and NodeID fall through to the full dispatch (bool is
                # not `type(...) is int`, so it keeps its 1-byte size).
                kind = type(value)
                if kind is str:
                    total += len(value) + 4
                elif kind is int or kind is float:
                    total += 8
                else:
                    total += _value_size(value)
            self._size = total
        return total


def _value_size(value: Any) -> int:
    if isinstance(value, str):
        return len(value) + 4
    if isinstance(value, bool):
        return 1
    if isinstance(value, NodeID):
        return (value.bits + 7) // 8 + 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (list, tuple)):
        return 4 + sum(_value_size(v) for v in value)
    return 16
