"""Dataflow elements — the operators a rule strand is built from.

P2 compiles each OverLog rule into a *rule strand*: a chain of dataflow
elements (Figure 1 of the paper).  Our planner produces the same shapes:

- :class:`MatchElement` — unifies the trigger tuple against the event
  pattern (the strand's entry point);
- :class:`JoinElement` — probes a materialized table for matches of one
  body predicate (a *stateful* element: it defines a pipeline stage for
  the tracer, per the paper's §2.1.2);
- :class:`SelectElement` — filters bindings through a boolean condition;
- :class:`AssignElement` — computes ``X := expr``;
- :class:`ProjectElement` — evaluates the head arguments into an output
  tuple (or a deletion pattern for ``delete`` rules).

Each element keeps invocation counters so introspection can expose the
dataflow (the ``sysElement`` reflection table) and so the metrics layer
can charge CPU-work per operation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import EvaluationError, PlannerError
from repro.overlog import ast
from repro.overlog.builtins import EvalContext
from repro.overlog.expr import compile_expr, values_equal, _truthy
from repro.overlog.match import compile_pattern, match_compiled
from repro.runtime.table import Table, TableIndex
from repro.runtime.tuples import Tuple

Bindings = Dict[str, Any]


class Element:
    """Base dataflow element: a named operator with an invocation count."""

    kind = "element"

    def __init__(self, label: str) -> None:
        self.label = label
        self.invocations = 0

    def describe(self) -> str:
        return f"{self.kind}:{self.label}"

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class MatchElement(Element):
    """Entry of a strand: unify the trigger tuple against its pattern.

    ``bind_args=False`` turns the element into an *activation-only*
    match that binds just the location specifier: used for aggregate
    rules triggered by changes to a materialized table, where the
    aggregate must be recomputed over the whole table rather than the
    single delta row (the paper's cs6/os8/bp2 rules depend on this).
    """

    kind = "match"

    def __init__(self, pattern: ast.Functor, bind_args: bool = True) -> None:
        super().__init__(pattern.name)
        self.pattern = pattern
        self.bind_args = bind_args
        self._steps = compile_pattern(pattern.args)
        self._loc_steps = self._steps[:1]

    def match(self, tup: Tuple) -> Optional[Bindings]:
        self.invocations += 1
        if tup.name != self.pattern.name:
            return None
        if self.bind_args:
            return match_compiled(self._steps, tup.values, {})
        if not tup.values:
            return None
        return match_compiled(self._loc_steps, tup.values[:1], {})


class JoinElement(Element):
    """Probe a table for tuples matching a body predicate.

    ``stage`` is the 1-based pipeline stage index used by the execution
    tracer to attribute precondition observations (§2.1.2).

    When the planner determined that some pattern columns are already
    bound at this pipeline stage, it passes the matching
    :class:`~repro.runtime.table.TableIndex` plus ``key_sources`` — one
    ``(var_name, const_value)`` pair per indexed column, aligned with
    ``index.positions`` — and the probe narrows to the index bucket
    instead of scanning the whole table.  Candidates still pass through
    ``match_args``, so the index only prunes; it never admits a row the
    scan path would reject.

    ``probes`` counts every row *examined* (bucket or scan) and is the
    single authoritative probe counter: the strand derives its
    ``join_probe`` / ``join_indexed`` work charges from its per-firing
    delta rather than keeping a second tally.
    """

    kind = "join"

    def __init__(
        self,
        pattern: ast.Functor,
        table: Table,
        stage: int,
        index: Optional[TableIndex] = None,
        key_sources: Optional[List[PyTuple]] = None,
    ) -> None:
        super().__init__(f"{pattern.name}[{stage}]")
        self.pattern = pattern
        self.table = table
        self.stage = stage
        self.index = index
        self.key_sources = tuple(key_sources or ())
        self.probes = 0
        self._steps = compile_pattern(pattern.args)

    @property
    def uses_index(self) -> bool:
        return self.index is not None

    def matches(
        self, bindings: Bindings
    ) -> Iterator[PyTuple]:
        """Yield (table_tuple, extended_bindings) for every match."""
        self.invocations += 1
        if self.index is not None:
            key = tuple(
                bindings[var] if var is not None else const
                for var, const in self.key_sources
            )
            candidates = self.table.probe_index(self.index, key)
        else:
            candidates = self.table.scan()
        steps = self._steps
        for tup in candidates:
            self.probes += 1
            extended = match_compiled(steps, tup.values, bindings)
            if extended is not None:
                yield tup, extended


class SelectElement(Element):
    """Filter bindings through a boolean condition."""

    kind = "select"

    def __init__(self, cond: ast.Cond) -> None:
        super().__init__(str(cond.expr))
        self.cond = cond
        self._eval = compile_expr(cond.expr)

    def accepts(self, bindings: Bindings, ctx: EvalContext) -> bool:
        self.invocations += 1
        return _truthy(self._eval(bindings, ctx))


class AssignElement(Element):
    """Bind a new variable from an expression (``X := expr``).

    If the variable is already bound, the assignment degrades to an
    equality filter — P2's behaviour for repeated bindings.
    """

    kind = "assign"

    def __init__(self, assign: ast.Assign) -> None:
        super().__init__(f"{assign.var}:={assign.expr}")
        self.assign = assign
        self._eval = compile_expr(assign.expr)

    def apply(
        self, bindings: Bindings, ctx: EvalContext
    ) -> Optional[Bindings]:
        self.invocations += 1
        value = self._eval(bindings, ctx)
        var = self.assign.var
        if var in bindings:
            return bindings if values_equal(bindings[var], value) else None
        out = dict(bindings)
        out[var] = value
        return out


class ProjectElement(Element):
    """Evaluate head arguments into an output tuple.

    For ``delete`` rules, unbound head variables become None wildcards in
    the produced deletion pattern.
    """

    kind = "project"

    def __init__(self, head: ast.Functor, delete: bool) -> None:
        super().__init__(head.name)
        self.head = head
        self.delete = delete
        self._evals = tuple(compile_expr(arg) for arg in head.args)

    def project(self, bindings: Bindings, ctx: EvalContext) -> Tuple:
        self.invocations += 1
        values = tuple([fn(bindings, ctx) for fn in self._evals])
        return Tuple(self.head.name, values)

    def delete_pattern(
        self, bindings: Bindings, ctx: EvalContext
    ) -> PyTuple:
        """(location, values-with-None-wildcards) for a delete action."""
        self.invocations += 1
        values: List[Any] = []
        for arg, fn in zip(self.head.args, self._evals):
            try:
                values.append(fn(bindings, ctx))
            except EvaluationError:
                if isinstance(arg, ast.Var):
                    values.append(None)  # wildcard
                else:
                    raise
        location = values[0]
        if location is None:
            raise PlannerError(
                f"delete rule for {self.head.name!r} has an unbound "
                "location specifier"
            )
        return location, tuple(values)
