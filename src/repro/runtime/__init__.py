"""The P2 relational runtime: tuples, soft-state tables, and the per-node
dataflow that executes compiled OverLog rules.

Layering (bottom up):

- :mod:`repro.runtime.tuples` — immutable tuples, the universal currency
  for state, messages, events, and log entries;
- :mod:`repro.runtime.table` / :mod:`repro.runtime.store` — soft-state
  tables (TTL, max size, primary keys) with change callbacks;
- :mod:`repro.runtime.elements` — dataflow element objects (the rule
  strand operators: match, join, select, assign, project, aggregate);
- :mod:`repro.runtime.strand` — a compiled rule strand: the executable
  chain of elements for one (rule, trigger) pair;
- :mod:`repro.runtime.planner` — OverLog rules to strands (and the
  Figure-1-style dataflow description);
- :mod:`repro.runtime.node` — a virtual P2 node: installs programs,
  routes tuples, fires strands, owns introspection hooks.
"""

from repro.runtime.tuples import Tuple
from repro.runtime.table import Table, InsertOutcome
from repro.runtime.store import TableStore
from repro.runtime.node import P2Node

__all__ = ["Tuple", "Table", "InsertOutcome", "TableStore", "P2Node"]
