"""CPU-work accounting for virtual nodes.

The paper reports OS-level CPU utilization of a P2 process.  Our nodes
run inside a discrete-event simulator, so we substitute a *work model*:
every dataflow operation charges a fixed simulated cost, and a node's
"CPU utilization" is accumulated busy-seconds divided by elapsed virtual
time.  The absolute costs below are arbitrary but fixed; all the paper's
evaluation claims are about relative shapes (linear vs. superlinear
growth, tracing on vs. off), which this preserves.

The work model also provides the *micro-clock*: within one event-
processing turn, charged work advances a sub-virtual-time offset so that
execution traces get strictly increasing timestamps (rule start < rule
end), which is what makes the paper's §3.2 latency profiling meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

DEFAULT_COSTS: Dict[str, float] = {
    "match": 5e-6,        # trigger pattern unification
    "join": 10e-6,        # table access overhead per join invocation
    "join_probe": 2e-6,   # one table row scanned in a join
    "join_indexed": 2e-6,  # one row examined via a hash-index bucket
    "select": 3e-6,       # condition evaluation
    "assign": 4e-6,       # assignment evaluation
    "project": 8e-6,      # head projection / action construction
    "insert": 6e-6,       # table insert
    "delete": 6e-6,       # table delete
    "send": 15e-6,        # marshal + transmit
    "receive": 15e-6,     # receive + unmarshal
    "timer": 2e-6,        # periodic timer firing
    "trace": 4e-6,        # tracer tap / record bookkeeping
}


@dataclass
class WorkCounters:
    """Raw operation counts, kept alongside the charged busy time."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, op: str, amount: int) -> None:
        self.counts[op] = self.counts.get(op, 0) + amount

    def total(self) -> int:
        return sum(self.counts.values())


class WorkModel:
    """Accumulates busy time and exposes the intra-event micro-clock."""

    def __init__(self, costs: Dict[str, float] = None) -> None:
        self.costs = dict(DEFAULT_COSTS)
        if costs:
            self.costs.update(costs)
        self.busy_seconds = 0.0
        self.counters = WorkCounters()
        self._micro_offset = 0.0

    def charge(self, op: str, amount: int = 1) -> None:
        """Charge ``amount`` operations of kind ``op``."""
        cost = self.costs.get(op, 1e-6) * amount
        self.busy_seconds += cost
        self._micro_offset += cost
        # Inlined WorkCounters.add: charge() runs millions of times per
        # simulated minute and the extra call shows up in profiles.
        counts = self.counters.counts
        counts[op] = counts.get(op, 0) + amount

    @property
    def micro_offset(self) -> float:
        """Sub-event time accumulated during the current processing turn."""
        return self._micro_offset

    def reset_micro(self) -> None:
        """Start a new processing turn (called by the node's pump)."""
        self._micro_offset = 0.0

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` virtual seconds (may exceed 1)."""
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds / elapsed
