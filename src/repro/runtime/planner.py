"""The planner: OverLog rules to executable rule strands.

Mirrors P2's planner (§2 of the paper): each rule becomes one or more
*rule strands* — element chains triggered by one body predicate.

Trigger selection implements P2's delta evaluation:

- a body predicate that is **not** a materialized table is an *event*;
  a rule may contain at most one event, and that event is the trigger;
- ``periodic(...)`` is a built-in event: the node installs a private
  timer per strand (the paper's Figure 4 benchmark counts exactly these);
- a rule whose body predicates are **all** tables compiles to one strand
  per predicate, each triggered by insertions into that table.

Within a strand, the remaining body terms are ordered greedily: joins
keep their source order, while each selection/assignment runs as early
as its variables are bound (P2 does the same reordering).

Index selection: for each join, the planner computes which pattern
columns are already bound when the probe runs — constants, symbolic
constants, and variables bound by earlier pipeline stages — and asks
the table for a hash index over exactly those columns
(:meth:`repro.runtime.table.Table.index_on`).  A join with no bound
column falls back to a full scan.  The module-level default can be
switched off (``scan_joins()``) so tests can differentially compare
both evaluation paths; per-planner overrides take precedence.

``reorder_joins=True`` additionally lets the planner pick, at each
step, the pending join with the most bound columns instead of keeping
source order.  It is off by default: reordering changes how often
interleaved assignments run (an ``X := f_rand()`` placed between two
joins is evaluated once per outer derivation, wherever the author put
it) and renumbers the tracer's pipeline stages.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple as PyTuple

from repro.errors import PlannerError
from repro.overlog import ast
from repro.overlog.program import Program
from repro.runtime.elements import (
    AssignElement,
    Element,
    JoinElement,
    MatchElement,
    ProjectElement,
    SelectElement,
)
from repro.runtime.store import TableStore
from repro.runtime.strand import AggregateSpec, RuleStrand

BUILTIN_EVENTS = ("periodic",)

USE_INDEXED_JOINS = True
"""Module default for planners that were not given an explicit
``use_indexes``; read at plan time so :func:`scan_joins` affects
programs installed inside its scope."""


@contextmanager
def scan_joins() -> Iterator[None]:
    """Force scan-only join evaluation for programs planned inside.

    The differential test harness compiles every workload twice — once
    under this context, once without — and asserts both evaluations are
    observably identical.
    """
    global USE_INDEXED_JOINS
    previous = USE_INDEXED_JOINS
    USE_INDEXED_JOINS = False
    try:
        yield
    finally:
        USE_INDEXED_JOINS = previous


@dataclass
class CompiledProgram:
    """The result of planning one program on one node."""

    program: Program
    strands: List[RuleStrand] = field(default_factory=list)
    table_names: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.program.name


class Planner:
    """Compiles validated programs against a node's table store."""

    def __init__(
        self,
        store: TableStore,
        node_label: str = "node",
        use_indexes: Optional[bool] = None,
        reorder_joins: bool = False,
    ) -> None:
        self._store = store
        self._node_label = node_label
        self._counter = 0
        self._use_indexes = use_indexes
        self._reorder_joins = reorder_joins

    def _indexes_enabled(self) -> bool:
        if self._use_indexes is not None:
            return self._use_indexes
        return USE_INDEXED_JOINS

    def plan(self, program: Program) -> CompiledProgram:
        """Materialize the program's tables and compile its rules."""
        compiled = CompiledProgram(program)
        for decl in program.materializations:
            self._store.materialize(decl)
            compiled.table_names.append(decl.name)
        for rule in program.rules:
            compiled.strands.extend(self._plan_rule(rule, program.name))
        return compiled

    # ------------------------------------------------------------------

    def _plan_rule(self, rule: ast.Rule, program_name: str) -> List[RuleStrand]:
        functors = rule.body_functors()
        events = [
            f
            for f in functors
            if f.name in BUILTIN_EVENTS or not self._store.has(f.name)
        ]
        label = rule.rule_id or str(rule.head)

        if len(events) > 1:
            names = sorted({e.name for e in events})
            raise PlannerError(
                f"rule {label!r} has {len(events)} event predicates "
                f"({', '.join(names)}); at most one non-materialized "
                "predicate is allowed per rule — materialize the others"
            )
        if events:
            return [self._make_strand(rule, events[0], program_name)]
        # Delta rules: all body predicates are tables; every insertion
        # into any of them can complete a derivation.
        return [
            self._make_strand(rule, trigger, program_name)
            for trigger in functors
        ]

    def _make_strand(
        self, rule: ast.Rule, trigger: ast.Functor, program_name: str
    ) -> RuleStrand:
        label = rule.rule_id or rule.head.name
        self._counter += 1
        strand_id = f"{program_name}/{label}#{self._counter}"

        periodic = self._periodic_spec(rule, trigger, label)

        # Aggregate rules triggered by a table change recompute over the
        # whole table: the trigger becomes activation-only (binds just
        # the location) and the trigger predicate re-enters the body as
        # a join (see MatchElement.bind_args).
        aggregate = self._aggregate_spec(rule)
        rescan_trigger = (
            aggregate is not None
            and trigger.name not in BUILTIN_EVENTS
            and self._store.has(trigger.name)
        )

        # Order the remaining body terms: functors and assignments keep
        # source order (an assignment calling f_rand()/f_now() must run
        # once per derivation, exactly where the rule author put it —
        # hoisting it above a join would evaluate it once per trigger);
        # pure conditions float as early as their variables are bound.
        if rescan_trigger:
            pending: List[ast.BodyTerm] = list(rule.body)
            bound = {
                v
                for v in trigger.location.variables()
                if not v.startswith("_")
            }
        else:
            pending = [term for term in rule.body if term is not trigger]
            bound = {
                v for v in trigger.variables() if not v.startswith("_")
            }
        ops: List[Element] = []
        stage = 0
        while pending:
            chosen: Optional[ast.BodyTerm] = None
            for term in pending:
                if isinstance(term, ast.Cond):
                    if term.expr.variables() <= bound:
                        chosen = term
                        break
            if chosen is None:
                # Next functor or ready assignment, in source order.
                for term in pending:
                    if isinstance(term, ast.Assign):
                        if term.expr.variables() <= bound:
                            chosen = term
                            break
                        continue  # a later join must bind its inputs
                    if isinstance(term, ast.Functor):
                        chosen = term
                        break
                if (
                    self._reorder_joins
                    and isinstance(chosen, ast.Functor)
                ):
                    chosen = max(
                        (t for t in pending if isinstance(t, ast.Functor)),
                        key=lambda t: len(self._bound_positions(t, bound)),
                    )
            if chosen is None:
                unready = ", ".join(str(t) for t in pending)
                raise PlannerError(
                    f"rule {label!r}: cannot order body terms — "
                    f"unbound variables in: {unready}"
                )
            pending.remove(chosen)
            if isinstance(chosen, ast.Functor):
                if chosen.name in BUILTIN_EVENTS or not self._store.has(
                    chosen.name
                ):
                    raise PlannerError(
                        f"rule {label!r}: predicate {chosen.name!r} is not "
                        "a materialized table and cannot be joined"
                    )
                stage += 1
                ops.append(self._make_join(chosen, stage, bound))
                bound |= {
                    v for v in chosen.variables() if not v.startswith("_")
                }
            elif isinstance(chosen, ast.Assign):
                ops.append(AssignElement(chosen))
                bound.add(chosen.var)
            else:
                ops.append(SelectElement(chosen))

        project = ProjectElement(rule.head, rule.delete)
        strand = RuleStrand(
            rule=rule,
            strand_id=strand_id,
            program_name=program_name,
            match=MatchElement(trigger, bind_args=not rescan_trigger),
            ops=ops,
            project=project,
            aggregate=aggregate,
            periodic=periodic,
        )
        # Batch-probe annotation: when the strand leads with an indexed
        # join, deltaset firing (RuleStrand.fire_batch) can warm that
        # index with the whole batch's key vector in one call.  Decided
        # here, at plan time, so the per-batch hot path never inspects
        # element structure.
        first = ops[0] if ops else None
        if isinstance(first, JoinElement) and first.index is not None:
            strand.batch_probe = first
        return strand

    @staticmethod
    def _bound_positions(
        functor: ast.Functor, bound: Set[str]
    ) -> List[PyTuple]:
        """Pattern columns whose probe value is known before the join.

        Returns ``(position, var_name, const_value)`` triples: constants
        and symbolic constants are known at plan time; a variable is
        known when an earlier stage bound it (a variable first occurring
        inside this same pattern is not — it binds during the match).
        """
        sources: List[PyTuple] = []
        for position, arg in enumerate(functor.args):
            if isinstance(arg, ast.Const):
                sources.append((position, None, arg.value))
            elif isinstance(arg, ast.SymbolicConst):
                # Unresolved symbolic constants match as their own name.
                sources.append((position, None, arg.name))
            elif (
                isinstance(arg, ast.Var)
                and not arg.name.startswith("_")
                and arg.name in bound
            ):
                sources.append((position, arg.name, None))
        return sources

    def _make_join(
        self, functor: ast.Functor, stage: int, bound: Set[str]
    ) -> JoinElement:
        """A join element, indexed on the columns bound at this stage."""
        table = self._store.get(functor.name)
        if self._indexes_enabled():
            sources = self._bound_positions(functor, bound)
            if sources:
                # Positions ascend (enumerate order), matching the
                # canonical order of Table.index_on.
                index = table.index_on([p for p, _, _ in sources])
                key_sources = [(var, const) for _, var, const in sources]
                return JoinElement(
                    functor, table, stage, index=index, key_sources=key_sources
                )
        return JoinElement(functor, table, stage)

    def _periodic_spec(
        self, rule: ast.Rule, trigger: ast.Functor, label: str
    ) -> Optional[PyTuple]:
        if trigger.name != "periodic":
            return None
        if len(trigger.args) < 3:
            raise PlannerError(
                f"rule {label!r}: periodic needs (loc, nonce, period)"
            )
        period_arg = trigger.args[2]
        if isinstance(period_arg, ast.Const):
            period = period_arg.value
        elif isinstance(period_arg, ast.SymbolicConst):
            raise PlannerError(
                f"rule {label!r}: periodic period {period_arg.name!r} was "
                "never bound to a value (pass bindings= when compiling)"
            )
        else:
            raise PlannerError(
                f"rule {label!r}: periodic period must be a constant"
            )
        if not isinstance(period, (int, float)) or period <= 0:
            raise PlannerError(
                f"rule {label!r}: periodic period must be positive, "
                f"got {period!r}"
            )
        nonce_var = trigger.args[1]
        nonce = nonce_var.name if isinstance(nonce_var, ast.Var) else None
        return (nonce, float(period))

    def _aggregate_spec(self, rule: ast.Rule) -> Optional[AggregateSpec]:
        for index, arg in enumerate(rule.head.args):
            if isinstance(arg, ast.Aggregate):
                return AggregateSpec(index, arg.func, arg.var)
        return None
