"""A virtual P2 node: program installation, tuple routing, rule firing.

The node owns a table store, compiled strands indexed by trigger
predicate, per-strand periodic timers, and a FIFO work queue.  Every
tuple — application state, network message, event, log entry — moves
through :meth:`_deliver_local`, which makes the introspection story
uniform: the tracer and event subscribers observe everything.

Tracing attachment is by composition to keep layering clean: the
introspection package sets ``node.hooks`` (a
:class:`repro.runtime.strand.TraceHooks`) and ``node.registry`` (tuple
memoization); the node calls them when present and works fine without.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple

from repro.errors import RuntimeStateError
from repro.net.address import Address
from repro.net.marshal import (
    decode_message,
    encode_delete,
    encode_message,
    payload_for,
    wire_length,
)
from repro.net.network import Message, Network
from repro.overlog.builtins import EvalContext
from repro.overlog.program import Program
from repro.overlog.types import DEFAULT_ID_BITS
from repro.overload.controller import (
    SHED_STOPPED,
    OverloadConfig,
    OverloadController,
)
from repro.runtime.planner import CompiledProgram, Planner
from repro.runtime.store import TableStore
from repro.runtime.strand import (
    Action,
    DeleteAction,
    EmitAction,
    RuleStrand,
    TraceHooks,
)
from repro.runtime.table import InsertOutcome, Table
from repro.runtime.tuples import Tuple
from repro.runtime.work import WorkModel
from repro.sim.simulator import Simulator

#: Watch-ring capacity when neither the caller nor an overload config
#: specifies one (P2's default watchpoint buffer).
DEFAULT_WATCH_CAPACITY = 1000


class P2Node:
    """One participant in the simulated distributed system."""

    def __init__(
        self,
        address: Address,
        sim: Simulator,
        network: Network,
        id_bits: int = DEFAULT_ID_BITS,
        sweep_interval: float = 1.0,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        self.address = address
        self.sim = sim
        self.network = network
        self.id_bits = id_bits
        self.rng = sim.random.stream(f"node.{address}")
        self.store = TableStore(lambda: sim.now)
        self.work = WorkModel()
        # Rule-visible clock: in tick mode (docs/SCALE.md) rules see the
        # quantized simulator clock without the intra-event micro-offset,
        # because the micro-clock's reset points depend on how a tick's
        # work is grouped — f_now() must read identically under the
        # per-tuple and the batched kernel.  Legacy mode keeps the
        # micro-clock so execution traces stay strictly ordered.
        rule_clock = (lambda: sim.now) if sim.det_order else self.work_clock
        self.ctx = EvalContext(rule_clock, self.rng, id_bits)
        self.planner = Planner(self.store, node_label=address)

        self.programs: List[CompiledProgram] = []
        self.strands: List[RuleStrand] = []
        self._strands_by_trigger: Dict[str, List[RuleStrand]] = defaultdict(list)
        self._observed_tables: Dict[str, Table] = {}
        self._subscribers: Dict[str, List[Callable[[Tuple], None]]] = defaultdict(list)
        self._timers: List[Any] = []
        self._periodic_timers: Dict[RuleStrand, Any] = {}
        self._watches: Dict[str, List[PyTuple]] = {}
        self._watch_caps: Dict[str, int] = {}
        #: Oldest-evicted entries per watch ring (satellite accounting
        #: for the obs registry's ``watch_evicted_total``).
        self.watch_evicted: Dict[str, int] = {}
        self._queue: deque = deque()
        self._pumping = False
        self._stopped = False

        # Batch execution (repro.sim.batch): set via enable_batch().
        # When active, the node registers itself as its address group's
        # executor with the kernel, receives whole per-tick message
        # batches, and pumps strand deltasets instead of single tuples.
        self._batch_mode = False
        self._batch_size: Optional[int] = None
        self._batch_kernel = None
        self._zero_copy = False

        # Overload protection (repro.overload): None keeps every hot
        # path exactly as before — no admission checks, no mailbox.
        self.overload: Optional[OverloadController] = None
        self._drain_timer = None
        if overload is not None:
            self.overload = OverloadController(
                overload,
                clock=lambda: self.sim.now,
                node_label=str(address),
            )

        # Introspection attachment points (set by repro.introspect).
        self.hooks: Optional[TraceHooks] = None
        self.registry = None  # repro.introspect.tuple_table.TupleRegistry
        # Telemetry attachment point (set by repro.core.system when
        # observability is enabled; None keeps every hot path no-op).
        self.obs = None  # repro.obs.telemetry.Telemetry
        # Called with every locally delivered tuple (event logging).
        self.on_deliver: List[Callable[[Tuple], None]] = []
        # Called with every installed Program (crash-recovery durability:
        # the recovery recorder journals installs so a restarted node can
        # reinstall the same programs before state replay).
        self.on_install: List[Callable[[Program], None]] = []
        # How many times this address has been crash-restarted; the
        # replacement node inherits predecessor's count + 1 (set by
        # System.restart_node).
        self.restarts = 0

        # Counters beyond the work model.
        self.tuples_delivered = 0
        self.bytes_delivered = 0
        self.rule_executions = 0
        # Wire-level message id counter: stamped on every outgoing tuple
        # so receivers can recognize fabric duplicates/retransmissions.
        self._wire_mid = 0

        network.attach(address, self.receive)
        if self.overload is not None:
            # Reliable-transport receiver pushback: the network asks us
            # before acking a frame; a False here becomes a BUSY nack
            # that feeds the sender's existing retransmit backoff.
            network.set_admission(address, self._admit_frame)
        self._timers.append(
            sim.every(
                sweep_interval,
                self._sweep,
                start_delay=sweep_interval,
                group=str(address),
            )
        )

    # ------------------------------------------------------------------
    # Batch execution

    def enable_batch(self, kernel, batch_size: Optional[int] = None) -> None:
        """Run this node under the batch kernel.

        Registers the node as the executor for its address group: the
        kernel hands it each tick's events (deliveries, timers, drains)
        in canonical order and the node fires strands over deltasets,
        chunked to ``batch_size`` triggers (None = unbounded).
        """
        self._batch_mode = True
        self._batch_size = batch_size
        self._batch_kernel = kernel
        # Zero-copy sends: over the UDP batch fabric the sender can
        # attach the decoded payload (marshal.payload_for) so receivers
        # skip the unmarshal.  The wire bytes are still produced and
        # accounted — only the receive-side decode is elided.
        self._zero_copy = (
            self.network.transport == "udp" and self.network.batch_fabric
        )
        kernel.register_group(str(self.address), self._execute_tick)

    def _execute_tick(self, events: List[Any]) -> None:
        """Group executor: run one tick's events in canonical order.

        Each event's own handler pumps the node to fixpoint before the
        next event runs — exactly the per-tuple kernel's discipline — so
        strand firings never observe a later same-tick insert they would
        not have seen under per-tuple execution.  The batch economies
        live a layer down: the fabric hands deliveries to
        :meth:`receive_batch` as one event, and the pump fires strands
        over contiguous same-strand runs.
        """
        if self._stopped:
            return
        for event in events:
            if not event.cancelled:
                event.callback()

    # ------------------------------------------------------------------
    # Time

    def work_clock(self) -> float:
        """Virtual time plus intra-event micro-time (for trace timestamps)."""
        return self.sim.now + self.work.micro_offset

    # ------------------------------------------------------------------
    # Program installation

    def install(self, program: Program) -> CompiledProgram:
        """Validate-compile ``program`` and activate its rules.

        Tables materialize immediately; strands begin firing on future
        deliveries (no retro-triggering over existing table contents,
        matching P2).  Periodic strands get private timers with a random
        initial phase so a population of nodes does not fire in lockstep.
        """
        if self._stopped:
            raise RuntimeStateError(f"node {self.address} is stopped")
        compiled = self.planner.plan(program)
        self.programs.append(compiled)
        role = getattr(program, "role", "data")
        for strand in compiled.strands:
            strand.overload_class = role
        if self.overload is not None:
            # Derive the priority map at install time: relations this
            # program materializes or derives inherit its role.
            self.overload.learn_program(compiled, role)
        for name in compiled.table_names:
            self._observe_table(name)
        for watch in program.tree.watches:
            self.watch(watch.name)
        for strand in compiled.strands:
            self.strands.append(strand)
            if strand.periodic is not None:
                self._install_periodic(strand)
            else:
                self._strands_by_trigger[strand.trigger_name].append(strand)
                # Delta strands need their trigger table observed even if
                # a different program materialized it.
                if self.store.has(strand.trigger_name):
                    self._observe_table(strand.trigger_name)
        for callback in list(self.on_install):
            callback(program)
        return compiled

    def install_source(
        self,
        source: str,
        name: str = "program",
        bindings: Optional[Dict[str, Any]] = None,
    ) -> CompiledProgram:
        """Convenience: compile OverLog source text and install it."""
        return self.install(Program.compile(source, name=name, bindings=bindings))

    def uninstall(self, compiled: CompiledProgram) -> None:
        """Deactivate a previously installed program on-line.

        Strands stop firing and their private timers are cancelled;
        already-queued firings are dropped.  Tables the program
        materialized remain (they are shared state other programs may
        reference; their soft-state contents expire naturally).
        """
        if compiled not in self.programs:
            raise RuntimeStateError(
                f"program {compiled.name!r} is not installed on "
                f"{self.address}"
            )
        self.programs.remove(compiled)
        removed = set(compiled.strands)
        for strand in compiled.strands:
            if strand in self.strands:
                self.strands.remove(strand)
            triggered = self._strands_by_trigger.get(strand.trigger_name)
            if triggered and strand in triggered:
                triggered.remove(strand)
            timer = self._periodic_timers.pop(strand, None)
            if timer is not None:
                timer.cancel()
        self._queue = deque(
            (strand, tup)
            for strand, tup in self._queue
            if strand not in removed
        )

    def _observe_table(self, name: str) -> None:
        if name in self._observed_tables:
            return
        table = self.store.get(name)
        self._observed_tables[name] = table
        table.on_insert.append(
            lambda tup, outcome, _name=name: self._on_table_insert(tup)
        )

    def _install_periodic(self, strand: RuleStrand) -> None:
        nonce_var, period = strand.periodic
        start = self.rng.uniform(0, period)
        timer = self.sim.every(
            period,
            lambda s=strand: self._fire_periodic(s),
            start_delay=start,
            group=str(self.address),
        )
        self._timers.append(timer)
        self._periodic_timers[strand] = timer

    def _fire_periodic(self, strand: RuleStrand) -> None:
        if self._stopped:
            return
        ctrl = self.overload
        if ctrl is not None and not ctrl.admit_periodic(
            strand.overload_class, strand.rule_id
        ):
            return
        self.work.charge("timer")
        nonce = self.rng.randrange(1 << 31)
        period = strand.periodic[1]
        tup = Tuple("periodic", (self.address, nonce, period))
        if self.registry is not None:
            self.registry.ensure(tup, loc_spec=self.address)
        self._queue.append((strand, tup))
        self._pump()

    # ------------------------------------------------------------------
    # Tuple entry points

    def receive(self, message: Message) -> None:
        """Network delivery callback: unmarshal, admit, and deliver."""
        if self._stopped:
            return
        self.work.reset_micro()
        self.work.charge("receive")
        preadmitted = message.decoded is not None
        payload = (
            message.decoded if preadmitted else decode_message(message.payload)
        )
        ctrl = self.overload
        if ctrl is None:
            self._process_payload(payload)
            self._pump()
            return
        relation = payload.get("name", "")
        if preadmitted:
            # The reliable-transport gate (:meth:`_admit_frame`) already
            # ran admit_remote and accepted; count the arrival without
            # re-deciding, or we would double-count the offer.
            ctrl.count_arrival(relation)
        elif not ctrl.admit_mailbox(relation):
            return
        if ctrl.service_delay <= 0.0:
            # Zero service time: inline processing — exactly the
            # pre-overload behaviour, plus admission accounting.
            self._process_payload(payload)
            self._pump()
            return
        if not ctrl.mailbox_push(payload):
            # The mailbox hit hard-full after the admission decision
            # (reordered reliable frames are admitted at arrival but
            # delivered when gaps fill); retract the admission.
            ctrl.shed_after_admit(relation)
            return
        self._schedule_drain()

    def receive_batch(self, messages: List[Message]) -> None:
        """Batched fabric delivery: one tick's messages for this node.

        Executes exactly N :meth:`receive` calls in order — same
        admission decisions, same work charges, and crucially the same
        *pump discipline*: each message is processed to strand fixpoint
        before the next message's tuple is inserted, so a firing can
        never observe a later same-tick arrival it would not have seen
        under per-tuple delivery.  What the batch path elides is the
        per-message machinery around that core: the heap event, the
        callback dispatch, and the wire decode (the fabric attaches the
        sender's already-decoded payload; only the UDP fabric calls
        this, so a non-None ``message.decoded`` here is that zero-copy
        payload, *not* the reliable gate's preadmission marker).
        """
        if self._stopped:
            return
        work = self.work
        reset_micro = work.reset_micro
        charge = work.charge
        process = self._process_payload
        pump = self._pump
        ctrl = self.overload
        if ctrl is None:
            for message in messages:
                reset_micro()
                charge("receive")
                decoded = message.decoded
                process(
                    decoded
                    if decoded is not None
                    else decode_message(message.payload)
                )
                # The insert observer already pumped any cascade to
                # fixpoint; pump again only if work remains (event
                # predicates enqueue without pumping).
                if self._queue:
                    pump()
            return
        inline = ctrl.service_delay <= 0.0
        pushed = False
        for message in messages:
            reset_micro()
            charge("receive")
            decoded = message.decoded
            payload = (
                decoded
                if decoded is not None
                else decode_message(message.payload)
            )
            relation = payload.get("name", "")
            if not ctrl.admit_mailbox(relation):
                continue
            if inline:
                process(payload)
                pump()
            elif ctrl.mailbox_push(payload):
                pushed = True
            else:
                ctrl.shed_after_admit(relation)
        if pushed:
            self._schedule_drain()

    def _process_payload(self, payload: Dict[str, Any]) -> None:
        """Apply one decoded wire payload (tuple or delete) locally."""
        if payload["kind"] == "delete":
            table = (
                self.store.get(payload["name"])
                if self.store.has(payload["name"])
                else None
            )
            if table is not None:
                removed = table.delete_matching(list(payload["pattern"]))
                self.work.charge("delete", max(1, removed))
            return
        tup = payload.get("tuple") if self.registry is None else None
        if tup is None:
            tup = Tuple(payload["name"], tuple(payload["values"]))
        if self.registry is not None:
            self.registry.on_arrival(
                tup,
                payload.get("src"),
                payload.get("src_tid"),
                mid=payload.get("mid"),
            )
        self._deliver_local(tup)

    def _admit_frame(self, message: Message) -> bool:
        """Reliable-transport receiver gate (``Network.set_admission``).

        Called before a non-duplicate frame is acked; False becomes a
        BUSY nack that feeds the sender's retransmit backoff.  Decodes
        once and stashes the payload on the message so :meth:`receive`
        neither decodes nor re-admits it.
        """
        if self._stopped or self.overload is None:
            return True
        if message.decoded is None:
            message.decoded = decode_message(message.payload)
        return self.overload.admit_remote(message.decoded.get("name", ""))

    def _schedule_drain(self) -> None:
        if self._drain_timer is not None or self._stopped:
            return
        self._drain_timer = self.sim.schedule(
            self.overload.service_delay,
            self._drain_mailbox,
            group=str(self.address),
        )

    def _drain_mailbox(self) -> None:
        """Service one mailbox message, then re-arm while work remains."""
        self._drain_timer = None
        ctrl = self.overload
        if self._stopped or ctrl is None or not ctrl.mailbox:
            return
        payload = ctrl.mailbox_pop()
        self.work.reset_micro()
        self._process_payload(payload)
        self._pump()
        if ctrl.mailbox:
            self._schedule_drain()

    def inject(self, name: str, values: PyTuple) -> None:
        """Introduce a tuple from outside (tests, harnesses, consoles).

        The tuple is routed by its location specifier, so injecting a
        tuple whose first field names another node sends it there.
        """
        if self._stopped:
            raise RuntimeStateError(f"node {self.address} is stopped")
        self.work.reset_micro()
        tup = Tuple(name, tuple(values))
        self._route(EmitAction(tup))
        self._pump()

    # ------------------------------------------------------------------
    # Delivery and the pump

    def _deliver_local(self, tup: Tuple) -> None:
        self.tuples_delivered += 1
        self.bytes_delivered += tup.estimated_size()
        if self.registry is not None:
            self.registry.ensure(tup, loc_spec=tup.location)
        for callback in self.on_deliver:
            callback(tup)
        table = self.store.find(tup.name)
        if table is not None:
            self.work.charge("insert")
            table.insert(tup)
            # Strand triggering happens via the table observer so that
            # direct table inserts (e.g. from harness code) also fire.
        else:
            self._enqueue_strands(tup)
            self._notify(tup)

    def _on_table_insert(self, tup: Tuple) -> None:
        name = tup.name
        strands = self._strands_by_trigger.get(name)
        subscribers = self._subscribers.get(name)
        if strands is None and subscribers is None and not self._queue:
            # Nothing observes this relation and no work is queued:
            # enqueue, notify, and pump would all be no-ops.  This is
            # the monitoring fan-in hot path — collectors absorbing
            # status streams into tables no rule triggers on.
            return
        if strands:
            self._enqueue_strands(tup)
        if subscribers:
            for callback in subscribers:
                callback(tup)
        # Table observers can fire outside the pump (direct inserts).
        self._pump()

    def _enqueue_strands(self, tup: Tuple) -> None:
        strands = self._strands_by_trigger.get(tup.name, ())
        ctrl = self.overload
        if ctrl is None:
            for strand in strands:
                self._queue.append((strand, tup))
            return
        for strand in strands:
            if ctrl.admit_strand(
                strand.overload_class, len(self._queue), tup.name
            ):
                self._queue.append((strand, tup))

    def _notify(self, tup: Tuple) -> None:
        for callback in self._subscribers.get(tup.name, ()):
            callback(tup)

    def _pump(self) -> None:
        if self._pumping or self._stopped:
            return
        if self._batch_mode:
            self._pump_batched()
            return
        self._pumping = True
        ctrl = self.overload
        try:
            while self._queue:
                strand, trigger = self._queue.popleft()
                if ctrl is not None:
                    ctrl.note_strand_depth(len(self._queue))
                self.rule_executions += 1
                if self.obs is None:
                    actions = strand.fire(
                        trigger,
                        self.ctx,
                        hooks=self.hooks,
                        charge=self.work.charge,
                    )
                else:
                    actions = self._fire_observed(strand, trigger)
                for action in actions:
                    self._route(action)
        finally:
            self._pumping = False

    def _pump_batched(self) -> None:
        """Deltaset pump: fire strands over contiguous trigger runs.

        The FIFO queue is drained exactly as the per-tuple pump drains
        it; the batching unit is a *run* — consecutive queue entries for
        the same strand (a cascade inserting N tuples into one relation
        enqueues its delta strands as N-long runs).  A run fires as one
        deltaset through :meth:`RuleStrand.fire_batch` with routing
        interleaved per trigger, so the sequence of fire/route effects
        is identical to per-tuple execution — batching changes where
        the per-call overheads are paid, never what executes.  Runs are
        chunked to ``batch_size`` triggers; a batched firing over N
        triggers counts as N rule executions (the counter is semantic,
        not call-counting).
        """
        self._pumping = True
        ctrl = self.overload
        limit = self._batch_size
        # Run gathering engages only on the bare hot path.  Overload
        # controllers sample queue depth after every single pop (the
        # depth peaks are fingerprinted by storm campaigns) and trace
        # hooks/telemetry observe per-firing — for those, execute the
        # per-tuple pump body verbatim so every observation point sees
        # exactly the per-tuple values.
        if ctrl is not None or self.obs is not None or self.hooks is not None:
            try:
                while self._queue:
                    strand, trigger = self._queue.popleft()
                    if ctrl is not None:
                        ctrl.note_strand_depth(len(self._queue))
                    self.rule_executions += 1
                    if self.obs is None:
                        actions = strand.fire(
                            trigger,
                            self.ctx,
                            hooks=self.hooks,
                            charge=self.work.charge,
                        )
                    else:
                        actions = self._fire_observed(strand, trigger)
                    for action in actions:
                        self._route(action)
            finally:
                self._pumping = False
            return
        work = self.work
        ctx = self.ctx
        route = self._route
        try:
            while self._queue:
                # Re-bind each run: stop() and uninstall() replace or
                # clear the queue object mid-pump.
                queue = self._queue
                strand, first = queue.popleft()
                if not (queue and queue[0][0] is strand):
                    # Run of one — the common cascade shape.  Fire
                    # directly; fire_batch's accumulator would only add
                    # overhead for a single trigger.
                    self.rule_executions += 1
                    for action in strand.fire(first, ctx, charge=work.charge):
                        route(action)
                    continue
                triggers = [first]
                while (
                    queue
                    and queue[0][0] is strand
                    and (limit is None or len(triggers) < limit)
                ):
                    triggers.append(queue.popleft()[1])
                self.rule_executions += len(triggers)
                strand.fire_batch(triggers, ctx, work=work, route=route)
        finally:
            self._pumping = False

    def _fire_observed(self, strand: RuleStrand, trigger: Tuple):
        """Fire one strand inside a ``rule_exec`` telemetry span.

        Durations come off the work micro-clock, so they measure charged
        work (deterministic under the seed) rather than the stalled sim
        clock; join rows-examined are the firing's delta of the work
        model's probe counters.
        """
        obs = self.obs
        label = str(self.address)
        counts = self.work.counters.counts
        rows0 = counts.get("join_probe", 0) + counts.get("join_indexed", 0)
        with obs.span(
            "rule_exec",
            clock=self.work_clock,
            node=label,
            rule=strand.rule_id,
            trigger=trigger.name,
        ) as span:
            actions = strand.fire(
                trigger, self.ctx, hooks=self.hooks, charge=self.work.charge
            )
            span.set(actions=len(actions))
        obs.rule_duration.observe(
            span.t1 - span.t0, node=label, rule=strand.rule_id
        )
        rows = counts.get("join_probe", 0) + counts.get("join_indexed", 0) - rows0
        if rows:
            obs.join_rows.observe(rows, node=label, rule=strand.rule_id)
        return actions

    def _route(self, action: Action) -> None:
        if isinstance(action, EmitAction):
            tup = action.tuple
            if tup.location == self.address:
                self._deliver_local(tup)
            else:
                self._send_tuple(tup)
            return
        if isinstance(action, DeleteAction):
            if action.location == self.address:
                if self.store.has(action.name):
                    removed = self.store.get(action.name).delete_matching(
                        list(action.pattern)
                    )
                    self.work.charge("delete", max(1, removed))
            else:
                self.work.charge("send")
                wire = encode_delete(action.name, tuple(action.pattern))
                self.network.send(
                    self.address, str(action.location), wire, size=len(wire)
                )
            return
        raise TypeError(f"unknown action {action!r}")

    def _send_tuple(self, tup: Tuple) -> None:
        self.work.charge("send")
        src_tid = None
        if self.registry is not None:
            src_tid = self.registry.on_send(tup, str(tup.location))
        self._wire_mid += 1
        if self._zero_copy:
            # Batch-fabric fast path: nobody reads the wire bytes (the
            # receiver consumes the precomputed payload dict), so skip
            # marshaling and charge the exact would-be wire size.  The
            # fabric re-encodes lazily in its per-message fallback.
            self.network.send(
                self.address,
                str(tup.location),
                None,
                size=wire_length(
                    tup, self.address, src_tid, mid=self._wire_mid
                ),
                decoded=payload_for(
                    tup, self.address, src_tid, mid=self._wire_mid
                ),
            )
            return
        wire = encode_message(tup, self.address, src_tid, mid=self._wire_mid)
        self.network.send(
            self.address,
            str(tup.location),
            wire,
            size=len(wire),
        )

    # ------------------------------------------------------------------
    # Observation helpers

    def watch(self, name: str, capacity: Optional[int] = None) -> List[PyTuple]:
        """Activate a P2-style watchpoint on ``name`` tuples.

        Every delivery is recorded as ``(virtual_time, tuple)`` in a
        bounded ring, returned here and via :meth:`watched`; overflow
        evicts the oldest entries and counts them in
        :attr:`watch_evicted`.  ``capacity=None`` applies the node's
        overload ``watch_capacity`` (default 1000) on first watch and
        keeps the current capacity on a re-watch; an explicit capacity
        on a re-watch resizes the existing ring.  The ``watch(name).``
        OverLog statement calls this on install.
        """
        if capacity is not None and capacity < 0:
            raise RuntimeStateError(
                f"watch capacity must be >= 0: {capacity}"
            )
        if name in self._watches:
            if capacity is not None:
                self._watch_caps[name] = capacity
                self._trim_watch(name)
            return self._watches[name]
        if capacity is None:
            capacity = (
                self.overload.config.watch_capacity
                if self.overload is not None
                else DEFAULT_WATCH_CAPACITY
            )
        self._watch_caps[name] = capacity
        buffer: List[PyTuple] = []
        self._watches[name] = buffer

        def record(tup: Tuple) -> None:
            buffer.append((self.sim.now, tup))
            self._trim_watch(name)

        self.subscribe(name, record)
        return buffer

    def _trim_watch(self, name: str) -> None:
        buffer = self._watches[name]
        cap = self._watch_caps[name]
        overflow = len(buffer) - cap
        if overflow > 0:
            del buffer[:overflow]
            self.watch_evicted[name] = (
                self.watch_evicted.get(name, 0) + overflow
            )

    def watched(self, name: str) -> List[PyTuple]:
        """The (time, tuple) buffer of a watchpoint (empty if not set)."""
        return self._watches.get(name, [])

    def subscribe(self, name: str, callback: Callable[[Tuple], None]) -> None:
        """Observe every delivery of ``name`` tuples on this node."""
        self._subscribers[name].append(callback)

    def unsubscribe(self, name: str, callback: Callable[[Tuple], None]) -> None:
        """Remove a subscription added with :meth:`subscribe` (no-op if
        absent)."""
        callbacks = self._subscribers.get(name)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def collect(self, name: str) -> List[Tuple]:
        """Subscribe and return the (live) list future deliveries append to."""
        sink: List[Tuple] = []
        self.subscribe(name, sink.append)
        return sink

    def query(self, name: str) -> List[Tuple]:
        """Current contents of a table (empty list if not materialized)."""
        if not self.store.has(name):
            return []
        return list(self.store.get(name).scan())

    # ------------------------------------------------------------------
    # Lifecycle and metrics

    def _sweep(self) -> None:
        if not self._stopped:
            self.store.sweep()
            self._pump()

    def stop(self) -> None:
        """Crash/stop the node: cancel timers and leave the network.

        Every observation channel is detached too — table observers,
        tracer taps, ``subscribe()`` callbacks, deliver/install hooks —
        so a dead node stops accumulating callback work and sinks
        registered through :meth:`subscribe` (e.g. ``System.collect``)
        never receive post-mortem tuples from direct table pokes.  The
        tables themselves (and any durable image a recovery recorder
        wrote) survive for forensics.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._batch_kernel is not None:
            self._batch_kernel.unregister_group(str(self.address))
            self._batch_kernel = None
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self._periodic_timers.clear()
        self._queue.clear()
        if self._drain_timer is not None:
            self._drain_timer.cancel()
            self._drain_timer = None
        if self.overload is not None:
            # Tuples still queued in the mailbox at crash time were
            # admitted but never processed: account them as shed so the
            # per-class identity offered == admitted + shed + deferred
            # survives a stop() mid-storm.
            for payload in self.overload.mailbox.clear():
                self.overload.shed_after_admit(
                    payload.get("name", ""), reason=SHED_STOPPED
                )
        for table in self.store.tables():
            table.on_insert.clear()
            table.on_remove.clear()
            table.on_refresh.clear()
        self.store.on_create.clear()
        self._observed_tables.clear()
        self._subscribers.clear()
        self.on_deliver.clear()
        self.on_install.clear()
        self.hooks = None
        self.obs = None
        if self.network.is_attached(self.address):
            self.network.detach(self.address)

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def status(self) -> str:
        """Lifecycle status for dashboards: ``up``, ``down``, or
        ``recovered`` (up again after >= 1 crash-restart)."""
        if self._stopped:
            return "down"
        return "recovered" if self.restarts else "up"

    def live_tuples(self) -> int:
        return self.store.live_tuples()

    def memory_bytes(self) -> int:
        return self.store.estimated_bytes()

    def cpu_utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction (work-model seconds / elapsed virtual seconds)."""
        window = elapsed if elapsed is not None else max(self.sim.now, 1e-9)
        return self.work.utilization(window)

    def __repr__(self) -> str:
        return f"<P2Node {self.address} tables={len(self.store.names())}>"
