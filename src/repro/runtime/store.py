"""Per-node collection of materialized tables."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import UnknownTableError, ValidationError
from repro.overlog.ast import Materialize
from repro.runtime.table import Table


class TableStore:
    """All tables of one node, keyed by predicate name."""

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self._tables: Dict[str, Table] = {}
        # Called with each newly created Table (used by the event logger
        # to attach observers to tables materialized after it started).
        self.on_create: List[Callable[[Table], None]] = []

    def materialize(self, decl: Materialize) -> Table:
        """Create (or validate re-declaration of) a table.

        Re-materializing with identical parameters is a no-op so that a
        monitor program shipping its own declarations can be installed on
        a node that already has them; conflicting parameters are an error.
        """
        existing = self._tables.get(decl.name)
        if existing is not None:
            same = (
                existing.lifetime == decl.lifetime
                and existing.max_size == decl.max_size
                and existing.key_positions == list(decl.keys)
            )
            if not same:
                raise ValidationError(
                    f"table {decl.name!r} re-materialized with different "
                    f"parameters (have lifetime={existing.lifetime}, "
                    f"size={existing.max_size}, keys={existing.key_positions})"
                )
            return existing
        table = Table(decl.name, decl.lifetime, decl.max_size, decl.keys, self._now)
        self._tables[decl.name] = table
        for callback in list(self.on_create):
            callback(table)
        return table

    def has(self, name: str) -> bool:
        return name in self._tables

    def get(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise UnknownTableError(f"no table named {name!r}")
        return table

    def find(self, name: str) -> Optional[Table]:
        """The table named ``name``, or None — the delivery hot path's
        single-lookup alternative to ``has`` + ``get``."""
        return self._tables.get(name)

    def names(self) -> List[str]:
        return sorted(self._tables)

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def live_tuples(self) -> int:
        """Total live tuples across all tables (the paper's metric)."""
        return sum(len(t) for t in self._tables.values())

    def estimated_bytes(self) -> int:
        return sum(t.estimated_bytes() for t in self._tables.values())

    def sweep(self) -> int:
        """Run expiry on every table; returns total expired."""
        return sum(t.sweep() for t in self._tables.values())
