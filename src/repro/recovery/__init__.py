"""Crash–restart recovery: durable node state and forensic replay.

Layers (bottom up):

- :mod:`repro.recovery.durable` — the medium: per-node checkpoint +
  WAL images that outlive node objects, with file save/load for
  campaign forensic artifacts;
- :mod:`repro.recovery.recorder` — the node-side tap that keeps an
  image current (observer-driven WAL appends, periodic checkpoints on
  the virtual clock, work-model charges);
- :mod:`repro.recovery.manager` — the system-level façade: protect
  nodes, restart crashed ones (silent checkpoint+WAL replay with TTL
  lapse, program reinstall, counter resume, ``on_restart`` hooks),
  recovery metrics;
- :mod:`repro.recovery.postmortem` — OverLog forensics over a dead
  node's image in an isolated single-node replica.
"""

from repro.recovery.durable import DurableMedium, NodeImage
from repro.recovery.manager import RecoveryManager, RecoveryReport, replay_image
from repro.recovery.postmortem import PostMortem
from repro.recovery.recorder import NodeRecorder

__all__ = [
    "DurableMedium",
    "NodeImage",
    "NodeRecorder",
    "PostMortem",
    "RecoveryManager",
    "RecoveryReport",
    "replay_image",
]
