"""The node-side durability tap: checkpoints + WAL appends.

A :class:`NodeRecorder` attaches to one live node and keeps its
:class:`~repro.recovery.durable.NodeImage` current:

- every table change (insert / refresh / remove, on every table
  including the introspection relations) appends a WAL record stamped
  with the virtual time and the row's absolute expiry deadline;
- every ``materialize`` appends a ``create`` record so tables born
  between checkpoints replay with the right declaration;
- every program install is journaled into the image;
- a periodic timer on the virtual clock takes a full checkpoint
  (snapshotting rows *with deadlines*) and truncates the WAL.

Durability is charged to the node's work model (``wal`` /
``checkpoint`` operations), so enabling recovery shows up in CPU
utilization and the work micro-clock exactly like tracing does — and
replay durations derived from it stay deterministic under the seed.

The recorder dies with the node: :meth:`repro.runtime.node.P2Node.stop`
clears table observers, which is precisely the fail-stop contract — the
WAL ends at the crash instant and the image becomes the node's forensic
record.
"""

from __future__ import annotations

from typing import Optional

from repro.overlog.program import Program
from repro.overlog.types import INFINITY
from repro.recovery.durable import (
    NodeImage,
    create_record,
    encode_ttl,
    encode_value,
    insert_record,
    refresh_record,
    remove_record,
)
from repro.runtime.node import P2Node
from repro.runtime.table import InsertOutcome, RemoveReason, Table
from repro.runtime.tuples import Tuple


class NodeRecorder:
    """Keeps one node's durable image current while the node lives."""

    def __init__(
        self,
        node: P2Node,
        image: NodeImage,
        checkpoint_interval: float = 30.0,
    ) -> None:
        self.node = node
        self.image = image
        self.checkpoint_interval = checkpoint_interval
        self._seq = image.wal_records_total
        self._detached = False
        # Programs installed before protection started must replay too;
        # the on_install hook only sees future installs.
        image.programs = [compiled.program for compiled in node.programs]
        for table in node.store.tables():
            self._observe(table)
        node.store.on_create.append(self._table_created)
        node.on_install.append(self._program_installed)
        self._timer = node.sim.every(
            checkpoint_interval,
            self._tick,
            start_delay=checkpoint_interval,
        )
        # Baseline: the image must be replayable from the instant
        # protection starts, not only after the first interval.
        self.checkpoint()

    # ------------------------------------------------------------------
    # Taps

    def _observe(self, table: Table) -> None:
        table.on_insert.append(
            lambda tup, outcome, _t=table: self._inserted(_t, tup, outcome)
        )
        table.on_refresh.append(
            lambda tup, expires, _t=table: self._refreshed(_t, tup, expires)
        )
        table.on_remove.append(
            lambda tup, reason, _t=table: self._removed(_t, tup, reason)
        )

    def _table_created(self, table: Table) -> None:
        if self._detached:
            return
        self._observe(table)
        self._seq += 1
        self.image.append(
            create_record(
                self._seq,
                self.node.sim.now,
                table.name,
                table.lifetime,
                table.max_size,
                table.key_positions,
            )
        )

    def _program_installed(self, program: Program) -> None:
        self.image.programs.append(program)

    def _deadline(self, table: Table) -> float:
        if table.lifetime is INFINITY:
            return float("inf")
        return self.node.sim.now + float(table.lifetime)

    def _inserted(self, table: Table, tup: Tuple, outcome: InsertOutcome) -> None:
        if self._detached:
            return
        self._seq += 1
        self.node.work.charge("wal")
        self.image.append(
            insert_record(
                self._seq,
                self.node.sim.now,
                table.name,
                tup.values,
                self._deadline(table),
            ),
            size_hint=tup.estimated_size() + 24,
        )

    def _refreshed(self, table: Table, tup: Tuple, expires: float) -> None:
        if self._detached:
            return
        self._seq += 1
        self.node.work.charge("wal")
        self.image.append(
            refresh_record(
                self._seq, self.node.sim.now, table.name, tup.values, expires
            ),
            size_hint=tup.estimated_size() + 24,
        )

    def _removed(self, table: Table, tup: Tuple, reason: RemoveReason) -> None:
        if self._detached:
            return
        self._seq += 1
        self.node.work.charge("wal")
        self.image.append(
            remove_record(
                self._seq,
                self.node.sim.now,
                table.name,
                tup.values,
                reason.value,
            ),
            size_hint=tup.estimated_size() + 24,
        )

    # ------------------------------------------------------------------
    # Checkpoints

    def _tick(self) -> None:
        if self.node.stopped or self._detached:
            self.detach()
            return
        self.checkpoint()

    def checkpoint(self) -> dict:
        """Snapshot every table (rows with absolute deadlines) and
        truncate the WAL."""
        node = self.node
        tables = {}
        row_count = 0
        for table in node.store.tables():
            rows = []
            for tup, inserted_at, expires_at in table.snapshot_rows():
                rows.append(
                    [
                        [encode_value(v) for v in tup.values],
                        inserted_at,
                        expires_at,
                    ]
                )
            row_count += len(rows)
            tables[table.name] = {
                "lifetime": encode_ttl(table.lifetime),
                "max_size": encode_ttl(table.max_size),
                "keys": list(table.key_positions),
                "rows": rows,
            }
        node.work.charge("checkpoint", max(1, row_count))
        document = {
            "time": node.sim.now,
            "meta": {"wire_mid": node._wire_mid},
            "tables": tables,
        }
        self.image.set_checkpoint(document)
        return document

    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Stop checkpointing (idempotent).  Table observers are cleared
        by ``P2Node.stop`` on crash; for a live detach they stay attached
        but append to an image no manager will replay."""
        if self._detached:
            return
        self._detached = True
        self._timer.cancel()
