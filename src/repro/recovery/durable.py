"""Per-node durable state: checkpoints plus a write-ahead log.

The simulator's fail-stop crash kills the :class:`~repro.runtime.node.P2Node`
object — and with it every materialized table, introspection log, and
``tupleTable`` entry.  The durable store is the state that *survives*:
a :class:`DurableMedium` ("the disk array") outlives every node object
and holds one :class:`NodeImage` per protected address, consisting of

- a **checkpoint** — a full snapshot of every materialized table (rows
  carry their *absolute* expiry deadlines, so soft state keeps aging
  correctly across a restart), taken periodically on the virtual clock;
- a **write-ahead log** — ordered tuple-delta records (``insert`` /
  ``refresh`` / ``remove`` / ``create``) appended between checkpoints,
  including the introspection relations (``ruleExec``, ``tupleTable``,
  ``tupleLog``, ``tableLog``) — the paper's forensic records, durable
  independent of the process that produced them;
- the list of installed :class:`~repro.overlog.program.Program` objects,
  replayed before state so a recovered node resumes rule processing.

Values are serialized with the wire encoding
(:func:`repro.net.marshal.encode_value`): state that cannot survive the
network cannot survive a restart either, and both fail loudly at write
time.  :meth:`DurableMedium.save` / :meth:`DurableMedium.load` move
images to and from real JSON files, so a campaign can archive the
durable logs of a failed seed as forensic artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.net.address import Address
from repro.net.marshal import decode_value, encode_value
from repro.overlog.types import INFINITY

#: WAL record operations.
OP_CREATE = "create"    # a table was materialized (decl follows)
OP_INSERT = "insert"    # NEW or REPLACED insert (expires_at follows)
OP_REFRESH = "refresh"  # identical re-insert renewed the TTL deadline
OP_REMOVE = "remove"    # delete / expire / evict / replace removal


def encode_ttl(value: Any):
    """JSON-encode a lifetime/size parameter (INFINITY-aware)."""
    return "inf" if value is INFINITY else value


def decode_ttl(value: Any):
    return INFINITY if value == "inf" else value


class NodeImage:
    """Everything durable about one node: checkpoint + WAL + programs."""

    def __init__(self, address: Address) -> None:
        self.address = address
        #: Checkpoint document (see :meth:`set_checkpoint`); None until
        #: the first checkpoint is taken.
        self.checkpoint: Optional[dict] = None
        #: WAL records since the checkpoint, in append order.
        self.wal: List[dict] = []
        #: Programs installed on the node, in install order.
        self.programs: List[object] = []
        # Accounting (read by the recovery metrics callbacks).
        self.checkpoints_taken = 0
        self.checkpoint_time = 0.0
        self.checkpoint_bytes = 0
        self.wal_bytes = 0
        self.wal_records_total = 0
        #: Virtual time of the last crash observed by the recorder's
        #: owner (None while the node has never crashed).
        self.crashed_at: Optional[float] = None

    # ------------------------------------------------------------------

    def set_checkpoint(self, document: dict) -> None:
        """Install a new checkpoint and truncate the WAL.

        ``document`` is ``{"time", "meta", "tables"}`` where tables maps
        name -> ``{"lifetime", "max_size", "keys", "rows"}`` and each row
        is ``[encoded_values, inserted_at, expires_at]``.
        """
        self.checkpoint = document
        self.checkpoints_taken += 1
        self.checkpoint_time = document["time"]
        self.checkpoint_bytes = len(
            json.dumps(document, sort_keys=True, separators=(",", ":"))
        )
        self.wal = []
        self.wal_bytes = 0

    def append(self, record: dict, size_hint: int = 24) -> None:
        """Append one WAL record (``size_hint`` is the estimated bytes,
        kept as a running total instead of re-serializing per record)."""
        self.wal.append(record)
        self.wal_records_total += 1
        self.wal_bytes += size_hint

    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON of the durable state (programs are rendered as
        OverLog text for human forensics; they do not reload)."""
        return json.dumps(
            {
                "address": self.address,
                "checkpoint": self.checkpoint,
                "wal": self.wal,
                "programs": [str(p) for p in self.programs],
                "crashed_at": self.crashed_at,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "NodeImage":
        payload = json.loads(text)
        image = cls(payload["address"])
        image.checkpoint = payload.get("checkpoint")
        image.wal = list(payload.get("wal", ()))
        image.crashed_at = payload.get("crashed_at")
        if image.checkpoint is not None:
            image.checkpoints_taken = 1
            image.checkpoint_time = image.checkpoint["time"]
            image.checkpoint_bytes = len(
                json.dumps(
                    image.checkpoint, sort_keys=True, separators=(",", ":")
                )
            )
        image.wal_records_total = len(image.wal)
        return image


class DurableMedium:
    """The per-address durable store that outlives node objects."""

    def __init__(self) -> None:
        self._images: Dict[Address, NodeImage] = {}

    def ensure(self, address: Address) -> NodeImage:
        image = self._images.get(address)
        if image is None:
            image = NodeImage(address)
            self._images[address] = image
        return image

    def image(self, address: Address) -> NodeImage:
        image = self._images.get(address)
        if image is None:
            raise ReproError(
                f"no durable image for {address!r} — was the node "
                "protected by a RecoveryManager before it crashed?"
            )
        return image

    def has(self, address: Address) -> bool:
        return address in self._images

    def addresses(self) -> List[Address]:
        return sorted(self._images)

    def total_bytes(self) -> int:
        return sum(
            img.checkpoint_bytes + img.wal_bytes
            for img in self._images.values()
        )

    # ------------------------------------------------------------------
    # File backing (forensic artifacts)

    @staticmethod
    def _filename(address: Address) -> str:
        return "node_" + str(address).replace(":", "_") + ".json"

    def save(self, directory: str) -> List[str]:
        """Write one JSON file per image into ``directory``."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for address in self.addresses():
            path = os.path.join(directory, self._filename(address))
            with open(path, "w") as handle:
                handle.write(self._images[address].to_json())
            paths.append(path)
        return paths

    @classmethod
    def load(cls, directory: str) -> "DurableMedium":
        """Reload images saved with :meth:`save` (state only: programs
        do not reload, so a loaded medium supports post-mortem queries
        but not live restarts with rule processing)."""
        medium = cls()
        for name in sorted(os.listdir(directory)):
            if not (name.startswith("node_") and name.endswith(".json")):
                continue
            with open(os.path.join(directory, name)) as handle:
                image = NodeImage.from_json(handle.read())
            medium._images[image.address] = image
        return medium


# ----------------------------------------------------------------------
# Record constructors (shared by the recorder and tests)


def insert_record(
    seq: int, when: float, table: str, values: tuple, expires_at: float
) -> dict:
    return {
        "seq": seq,
        "t": when,
        "op": OP_INSERT,
        "table": table,
        "values": [encode_value(v) for v in values],
        "expires": expires_at,
    }


def refresh_record(
    seq: int, when: float, table: str, values: tuple, expires_at: float
) -> dict:
    return {
        "seq": seq,
        "t": when,
        "op": OP_REFRESH,
        "table": table,
        "values": [encode_value(v) for v in values],
        "expires": expires_at,
    }


def remove_record(
    seq: int, when: float, table: str, values: tuple, reason: str
) -> dict:
    return {
        "seq": seq,
        "t": when,
        "op": OP_REMOVE,
        "table": table,
        "values": [encode_value(v) for v in values],
        "reason": reason,
    }


def create_record(
    seq: int, when: float, table: str, lifetime, max_size, keys
) -> dict:
    return {
        "seq": seq,
        "t": when,
        "op": OP_CREATE,
        "table": table,
        "lifetime": encode_ttl(lifetime),
        "max_size": encode_ttl(max_size),
        "keys": list(keys),
    }


def decode_record_values(record: dict) -> tuple:
    return tuple(decode_value(v) for v in record["values"])
