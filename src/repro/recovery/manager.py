"""Crash–restart orchestration over a :class:`repro.core.system.System`.

The :class:`RecoveryManager` is the system-level façade of the recovery
subsystem: it owns the :class:`~repro.recovery.durable.DurableMedium`,
attaches a :class:`~repro.recovery.recorder.NodeRecorder` to every
protected node, and implements :meth:`restart` — the paper-faithful
recovery path:

1. a fresh :class:`~repro.runtime.node.P2Node` is constructed under the
   dead address (with the same introspection configuration — tracer,
   event logger, reflector — it originally had);
2. the journaled programs reinstall (tables materialize, strands arm,
   periodic timers restart with fresh random phases);
3. the checkpoint and then the WAL replay *silently* into the tables —
   no observers fire, matching P2's no-retro-triggering install
   semantics — dropping every tuple whose lifetime lapsed while the
   node was down;
4. introspection counters (event-log sequence, ``tupleTable`` IDs, the
   wire message-id) resume past their replayed maxima so post-restart
   records never collide with forensic pre-crash rows;
5. a fresh recorder attaches and takes an immediate baseline
   checkpoint, and every ``on_restart`` callback (ring re-join hooks,
   alarm re-subscriptions) runs with the new node and the replay
   report.

Replay work is charged to the node's work model, so the
``recovery_duration_seconds`` histogram is deterministic under the
seed — byte-stable campaign verdicts can embed recovery outcomes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.introspect.logger import TABLE_LOG, TUPLE_LOG
from repro.introspect.tuple_table import TUPLE_TABLE
from repro.net.address import Address
from repro.overlog.ast import Materialize
from repro.recovery.durable import (
    DurableMedium,
    NodeImage,
    OP_CREATE,
    OP_INSERT,
    OP_REFRESH,
    OP_REMOVE,
    decode_record_values,
    decode_ttl,
)
from repro.recovery.recorder import NodeRecorder
from repro.runtime.node import P2Node
from repro.runtime.tuples import Tuple


class RecoveryReport:
    """What one restart (or post-mortem replay) actually did."""

    def __init__(self, address: Address) -> None:
        self.address = address
        self.checkpoint_time = 0.0
        self.replayed = 0       # rows restored live
        self.lapsed = 0         # rows dropped (lifetime passed while down)
        self.removed = 0        # WAL removals applied
        self.wal_records = 0
        self.programs = 0
        self.tables = 0
        self.duration = 0.0     # work micro-clock seconds spent replaying

    def as_dict(self) -> dict:
        return {
            "address": self.address,
            "checkpoint_time": round(self.checkpoint_time, 6),
            "replayed": self.replayed,
            "lapsed": self.lapsed,
            "removed": self.removed,
            "wal_records": self.wal_records,
            "programs": self.programs,
            "tables": self.tables,
        }


def replay_image(
    node: P2Node,
    image: NodeImage,
    install_programs: bool = True,
) -> RecoveryReport:
    """Rebuild ``node``'s state from ``image`` (checkpoint + WAL).

    Rows are restored with their *absolute* expiry deadlines: anything
    that lapsed while the node was down is counted in ``report.lapsed``
    and stays dead.  Restoration is silent — no delta rules fire, no
    observers run — exactly P2's install semantics for pre-existing
    state.
    """
    report = RecoveryReport(node.address)
    charge = node.work.charge
    micro0 = node.work.micro_offset

    if install_programs:
        for program in image.programs:
            node.install(program)
            report.programs += 1

    checkpoint = image.checkpoint
    if checkpoint is not None:
        report.checkpoint_time = checkpoint["time"]
        for name, doc in checkpoint["tables"].items():
            table = _ensure_table(
                node, name, doc["lifetime"], doc["max_size"], doc["keys"]
            )
            report.tables += 1
            for values, inserted_at, expires_at in doc["rows"]:
                tup = Tuple(
                    name, tuple(decode_record_values({"values": values}))
                )
                charge("replay")
                if table.restore(tup, expires_at, inserted_at):
                    report.replayed += 1
                else:
                    report.lapsed += 1

    for record in image.wal:
        report.wal_records += 1
        op = record["op"]
        if op == OP_CREATE:
            _ensure_table(
                node,
                record["table"],
                record["lifetime"],
                record["max_size"],
                record["keys"],
            )
            continue
        name = record["table"]
        if not node.store.has(name):
            # A change to a table whose declaration predates the image
            # (should not happen; tolerate corrupt/partial logs).
            continue
        table = node.store.get(name)
        tup = Tuple(name, decode_record_values(record))
        charge("replay")
        if op in (OP_INSERT, OP_REFRESH):
            if table.restore(tup, record["expires"], record["t"]):
                report.replayed += 1
            else:
                report.lapsed += 1
        elif op == OP_REMOVE:
            if table.restore_remove(tup):
                report.removed += 1

    report.duration = node.work.micro_offset - micro0
    return report


def _ensure_table(node: P2Node, name: str, lifetime, max_size, keys):
    if node.store.has(name):
        return node.store.get(name)
    return node.store.materialize(
        Materialize(name, decode_ttl(lifetime), decode_ttl(max_size), list(keys))
    )


class RecoveryManager:
    """Durable-state protection and crash–restart for one system."""

    def __init__(
        self,
        system,
        checkpoint_interval: float = 30.0,
        medium: Optional[DurableMedium] = None,
    ) -> None:
        if getattr(system, "recovery", None) is not None:
            raise ReproError("system already has a RecoveryManager attached")
        self.system = system
        self.medium = medium if medium is not None else DurableMedium()
        self.checkpoint_interval = checkpoint_interval
        self._recorders: Dict[Address, NodeRecorder] = {}
        #: Called after every successful restart with
        #: ``(address, node, report)`` — harnesses hang ring re-joins and
        #: alarm re-subscriptions here.
        self.on_restart: List[Callable[[Address, P2Node, RecoveryReport], None]] = []
        self.reports: List[RecoveryReport] = []
        system.recovery = self

        reg = system.telemetry.metrics
        self._restarts_counter = reg.counter(
            "recovery_restarts_total",
            "crash-restart recoveries performed per node",
            ("node",),
        )
        self._replayed_counter = reg.counter(
            "recovery_replayed_tuples_total",
            "tuples restored from checkpoint+WAL replay per node",
            ("node",),
        )
        self._lapsed_counter = reg.counter(
            "recovery_lapsed_tuples_total",
            "tuples dropped at replay because their lifetime passed while down",
            ("node",),
        )
        self._duration_hist = reg.histogram(
            "recovery_duration_seconds",
            "replay duration on the work micro-clock",
            ("node",),
        )
        medium_ref = self.medium
        reg.register_callback(
            "recovery_checkpoint_bytes",
            lambda: {
                (str(a),): medium_ref.ensure(a).checkpoint_bytes
                for a in medium_ref.addresses()
            },
            help="serialized size of the latest checkpoint per node",
            labelnames=("node",),
            kind="gauge",
        )
        reg.register_callback(
            "recovery_wal_records",
            lambda: {
                (str(a),): len(medium_ref.ensure(a).wal)
                for a in medium_ref.addresses()
            },
            help="WAL records accumulated since the latest checkpoint",
            labelnames=("node",),
            kind="gauge",
        )

    # ------------------------------------------------------------------
    # Protection

    def protect(self, address: Address) -> NodeRecorder:
        """Start durable recording for one node (idempotent)."""
        recorder = self._recorders.get(address)
        if recorder is not None and not recorder.node.stopped:
            return recorder
        node = self.system.node(address)
        if node.stopped:
            raise ReproError(f"cannot protect stopped node {address!r}")
        recorder = NodeRecorder(
            node, self.medium.ensure(address), self.checkpoint_interval
        )
        self._recorders[address] = recorder
        return recorder

    def protect_all(self) -> None:
        for address in list(self.system.nodes):
            if not self.system.node(address).stopped:
                self.protect(address)

    def protected(self) -> List[Address]:
        return sorted(self._recorders)

    # ------------------------------------------------------------------
    # Restart

    def restart(self, address: Address) -> RecoveryReport:
        """Bring a crashed node back from its durable image."""
        image = self.medium.image(address)
        old = self.system.node(address)
        if not old.stopped:
            raise ReproError(
                f"node {address!r} is still running; crash it before restart"
            )
        recorder = self._recorders.pop(address, None)
        if recorder is not None:
            recorder.detach()

        node = self.system.restart_node(address)
        report = replay_image(node, image)
        self.reports.append(report)
        self._resume_counters(node, image)

        # Fresh baseline: the new recorder checkpoints immediately, so a
        # second crash replays from the recovered state, not the old WAL.
        self._recorders[address] = NodeRecorder(
            node, image, self.checkpoint_interval
        )

        label = str(address)
        self._restarts_counter.inc(1, node=label)
        self._replayed_counter.inc(report.replayed, node=label)
        self._lapsed_counter.inc(report.lapsed, node=label)
        self._duration_hist.observe(report.duration, node=label)
        tel = self.system.telemetry
        if tel.enabled:
            tel.event(
                "recovery.restart",
                node=label,
                replayed=report.replayed,
                lapsed=report.lapsed,
                wal_records=report.wal_records,
                programs=report.programs,
            )
        for callback in list(self.on_restart):
            callback(address, node, report)
        return report

    def crash(self, address: Address) -> None:
        """Fail-stop a protected node, stamping the crash time on its
        durable image (thin wrapper over ``System.crash``)."""
        self.system.crash(address)
        if self.medium.has(address):
            self.medium.ensure(address).crashed_at = self.system.now

    def _resume_counters(self, node: P2Node, image: NodeImage) -> None:
        """Resume monotone counters past their replayed maxima."""
        checkpoint = image.checkpoint or {"meta": {}, "tables": {}}
        wire_mid = checkpoint.get("meta", {}).get("wire_mid", 0)
        # Sends are not WAL events, so over-approximate the mids spent
        # between checkpoint and crash; mids only need monotonicity.
        node._wire_mid = wire_mid + len(image.wal) + 1024

        def max_second_field(name: str) -> int:
            best = 0
            if node.store.has(name):
                for tup in node.store.get(name).scan():
                    if len(tup.values) > 1 and isinstance(tup.values[1], int):
                        best = max(best, tup.values[1])
            return best

        if node.registry is not None:
            node.registry.resume_from(max_second_field(TUPLE_TABLE))
        logger = self.system.loggers.get(node.address)
        if logger is not None:
            logger.resume_from(
                max(max_second_field(TUPLE_LOG), max_second_field(TABLE_LOG))
            )

    # ------------------------------------------------------------------

    def post_mortem(self, address: Address, seed: int = 0, store=None):
        """Open a forensic replica of a (dead) node's durable state.

        ``store`` defaults to the system's forensic store (when one is
        enabled), so replicas backfill trace rows the rings rotated
        away; pass ``store=False`` to force a rings-only replica.
        """
        from repro.recovery.postmortem import PostMortem

        if store is None:
            store = getattr(self.system, "store", None)
        elif store is False:
            store = None
        return PostMortem(self.medium, address, seed=seed, store=store)
