"""Forensics over a dead node's durable log.

The paper's forensic story is that the execution-trace tables
(``ruleExec``, ``tupleTable``, the event logs) are *queryable data* —
so the post-mortem interface is exactly the live interface: OverLog.
A :class:`PostMortem` replays a crashed node's durable image
(checkpoint + WAL, **without** its programs) into a quiet single-node
replica system whose clock starts at zero.  Because durable rows carry
absolute expiry deadlines stamped on the dead node's clock — which ran
ahead of the replica's — every record the node ever journaled is alive
in the replica, including rows that had *already expired* on the dead
node by crash time (their removal is in the WAL, so replay drops them
again; rows only the checkpoint knew stay queryable).

Investigators then run ordinary OverLog over the replica::

    pm = manager.post_mortem("n1:7000")
    pm.install_source(
        "fired(@X, Rule, T) :- ruleExec(@X, RId, Rule, NId, In, Out, T2, T).",
        name="forensics",
    )
    pm.run_for(1.0)
    history = pm.query("fired")

No live node is touched: the replica has its own simulator and network,
so forensic rule evaluation can't perturb the system under test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.address import Address
from repro.overlog.program import Program
from repro.recovery.durable import DurableMedium
from repro.recovery.manager import RecoveryReport, replay_image
from repro.runtime.tuples import Tuple


class PostMortem:
    """A single-node replica of one address's durable image."""

    def __init__(
        self,
        medium: DurableMedium,
        address: Address,
        seed: int = 0,
        store=None,
    ) -> None:
        from repro.core.system import System

        self.address = address
        self.image = medium.image(address)
        self.system = System(seed=seed)
        self.node = self.system.add_node(address)
        # Replay state only: the dead node's programs must not resume
        # firing in the replica — forensics reads history, it does not
        # continue the execution.
        self.report: RecoveryReport = replay_image(
            self.node, self.image, install_programs=False
        )
        #: Optional :class:`~repro.store.store.ForensicStore` backing
        #: the replica: trace rows the durable image no longer holds
        #: (the in-memory rings rotated before the last checkpoint)
        #: are backfilled from segments, so OverLog forensics see the
        #: full persisted history, not the ring-sized tail.
        self.store = store
        self.backfilled = {"ruleExec": 0, "tupleTable": 0}
        if store is not None:
            self._backfill_from_store()

    def _backfill_from_store(self) -> None:
        from repro.overlog.ast import Materialize
        from repro.overlog.types import INFINITY
        from repro.store import format as fmt

        label = str(self.address)
        if self.node.store.has("ruleExec"):
            rule_exec = self.node.store.get("ruleExec")
            # The replica is a forensic artifact, not a live node: lift
            # the ring bound the WAL replayed, or backfilled history
            # would just evict itself.
            rule_exec.max_size = INFINITY
            rule_exec.lifetime = INFINITY
        else:
            rule_exec = self.node.store.materialize(
                Materialize("ruleExec", INFINITY, INFINITY, [2, 3, 4, 7])
            )
        present = {
            (r.values[1], r.values[2], r.values[3], r.values[6])
            for r in rule_exec.scan()
        }
        for record in self.store.events(node=label, kind=fmt.RULE_EXEC):
            key = (record["r"], record["c"], record["e"], record["ev"])
            if key in present:
                continue
            present.add(key)
            rule_exec.insert(
                Tuple(
                    "ruleExec",
                    (
                        label,
                        record["r"],
                        record["c"],
                        record["e"],
                        record["ti"],
                        record["to"],
                        record["ev"],
                    ),
                )
            )
            self.backfilled["ruleExec"] += 1
        if self.node.store.has("tupleTable"):
            tuple_table = self.node.store.get("tupleTable")
            tuple_table.max_size = INFINITY
            tuple_table.lifetime = INFINITY
        else:
            tuple_table = self.node.store.materialize(
                Materialize("tupleTable", INFINITY, INFINITY, [2])
            )
        held = {r.values[1] for r in tuple_table.scan()}
        for record in self.store.events(node=label, kind=fmt.TUPLE_IDENT):
            if record["i"] in held:
                continue
            held.add(record["i"])
            source = self.store.source_of(label, record["i"])
            src, src_tid = source if source else (label, record["i"])
            tuple_table.insert(
                Tuple(
                    "tupleTable",
                    (label, record["i"], src, src_tid, record["l"]),
                )
            )
            self.backfilled["tupleTable"] += 1

    # ------------------------------------------------------------------

    def tables(self) -> List[str]:
        return sorted(t.name for t in self.node.store.tables())

    def query(self, name: str) -> List[Tuple]:
        """Scan one reconstructed table (empty list if it never existed)."""
        if not self.node.store.has(name):
            return []
        return self.node.query(name)

    def install(self, program: Program) -> None:
        """Install a forensic OverLog program on the replica."""
        self.node.install(program)

    def install_source(
        self, source: str, name: str = "postmortem", bindings: Optional[dict] = None
    ) -> None:
        self.install(Program.compile(source, name=name, bindings=bindings))

    def run_for(self, duration: float) -> None:
        """Advance the replica's virtual clock (drains forensic rules)."""
        self.system.run_for(duration)

    # ------------------------------------------------------------------
    # Canned forensic views

    def rule_exec_history(self) -> List[Tuple]:
        """The reconstructed ``ruleExec`` trace, oldest first.

        Rows are ``(addr, rule, causeID, effectID, inT, outT, isEvent)``
        — sorted by output time, then rule name.
        """
        rows = self.query("ruleExec")
        return sorted(rows, key=lambda t: (t.values[5], t.values[1]))

    def programs(self) -> List[str]:
        """OverLog sources the dead node had installed (human-readable)."""
        return [str(p) for p in self.image.programs]
