"""The differential battery's runner: one seed, two modes, one verdict.

``run_one`` boots a Chord ring (with the paper's recycled-dead-neighbor
bug armed), lets it stabilize, installs the bundled global monitors
(:mod:`repro.aggtree.monitors`) in *one* evaluation mode, kills a node
mid-epoch to generate failure-detector and oscillation traffic, and
returns the run's verdict — per-monitor fingerprints, alarm counts,
ledger attribution, collector-inbound volume.

``run_differential`` runs the same seed in ``centralized`` and ``tree``
modes and compares.  Because the simulation is deterministic under a
seed and aggregation traffic never perturbs application behavior (no
RNG draws on the send path, virtual event times independent of load),
the two runs see byte-identical Chord histories — so any fingerprint
divergence is a bug in the decomposition, not noise.  The differential
tests, the CLI (``python -m repro.aggtree``), and the CI smoke step all
call these two functions.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Optional, Sequence

from repro.chord.harness import ChordNetwork
from repro.overload.controller import OverloadConfig
from repro.aggtree.monitors import BUNDLED_MONITORS
from repro.aggtree.runtime import MODE_CENTRALIZED, MODE_TREE

#: Default battery: every bundled monitor.
DEFAULT_MONITORS = tuple(sorted(BUNDLED_MONITORS))


def run_one(
    seed: int,
    mode: str,
    monitors: Sequence[str] = DEFAULT_MONITORS,
    nodes: int = 8,
    stabilize: float = 60.0,
    duration: float = 120.0,
    epoch_len: float = 20.0,
    fanout: int = 3,
    kill: bool = True,
    observability: bool = False,
    overload: Optional[OverloadConfig] = None,
    keep_network: bool = False,
) -> Dict[str, Any]:
    """One full run in one mode; returns the comparable verdict dict."""
    net = ChordNetwork(
        num_nodes=nodes,
        seed=seed,
        recycle_dead_bug=True,
        observability=observability,
        overload=overload,
    )
    net.start()
    net.system.run_for(stabilize)

    collector = net.addresses[0]
    handles = {}
    for key in monitors:
        monitor = BUNDLED_MONITORS[key](epoch_len=epoch_len, fanout=fanout)
        handles[key] = monitor.install(
            net.system, collector, net.addresses, mode=mode
        )

    # Kill mid-epoch, away from the boundary flush windows, so both
    # modes lose exactly the same node at exactly the same point.
    t0 = net.system.now
    next_boundary = math.ceil(t0 / epoch_len) * epoch_len
    if kill and nodes > 2:
        victim = net.addresses[-1]
        kill_at = next_boundary + 2.5 * epoch_len
        net.system.sim.schedule(
            kill_at - t0, lambda v=victim: net.kill(v)
        )
    net.system.run_until(t0 + duration)

    fingerprints = {key: h.fingerprint() for key, h in handles.items()}
    combined = hashlib.sha256(
        "|".join(f"{k}={fingerprints[k]}" for k in sorted(fingerprints)).encode()
    ).hexdigest()
    verdict: Dict[str, Any] = {
        "seed": seed,
        "mode": mode,
        "nodes": nodes,
        "monitors": {key: h.verdict() for key, h in handles.items()},
        "fingerprint": combined,
        "inbound_tuples": sum(
            h.verdict()["collector_inbound_tuples"] for h in handles.values()
        ),
        "inbound_bytes": sum(
            h.verdict()["collector_inbound_bytes"] for h in handles.values()
        ),
        "alarms": sum(h.alarm_count() for h in handles.values()),
    }
    if keep_network:
        verdict["_network"] = net
        verdict["_handles"] = handles
    return verdict


def run_differential(
    seed: int,
    monitors: Sequence[str] = DEFAULT_MONITORS,
    nodes: int = 8,
    **kwargs,
) -> Dict[str, Any]:
    """Same seed, both modes; ``equal`` is the battery's pass bit."""
    centralized = run_one(
        seed, MODE_CENTRALIZED, monitors=monitors, nodes=nodes, **kwargs
    )
    tree = run_one(seed, MODE_TREE, monitors=monitors, nodes=nodes, **kwargs)
    per_monitor = {
        key: {
            "equal": (
                centralized["monitors"][key]["fingerprint"]
                == tree["monitors"][key]["fingerprint"]
            ),
            "centralized": centralized["monitors"][key]["fingerprint"],
            "tree": tree["monitors"][key]["fingerprint"],
        }
        for key in centralized["monitors"]
    }
    return {
        "seed": seed,
        "nodes": nodes,
        "equal": centralized["fingerprint"] == tree["fingerprint"],
        "per_monitor": per_monitor,
        "alarms": {
            "centralized": centralized["alarms"],
            "tree": tree["alarms"],
        },
        "inbound": {
            "centralized": centralized["inbound_tuples"],
            "tree": tree["inbound_tuples"],
        },
        "reduction": (
            centralized["inbound_tuples"] / tree["inbound_tuples"]
            if tree["inbound_tuples"]
            else float(centralized["inbound_tuples"] or 1)
        ),
        "centralized": {
            k: v for k, v in centralized.items() if k != "monitors"
        },
        "tree": {k: v for k, v in tree.items() if k != "monitors"},
    }


def run_volume_benchmark(
    seed: int = 0,
    nodes: int = 64,
    monitors: Sequence[str] = DEFAULT_MONITORS,
    stabilize: float = 90.0,
    duration: float = 100.0,
    epoch_len: float = 20.0,
    fanout: int = 4,
) -> Dict[str, Any]:
    """The 64-node collector-load comparison behind BENCH_aggtree.json."""
    diff = run_differential(
        seed,
        monitors=monitors,
        nodes=nodes,
        stabilize=stabilize,
        duration=duration,
        epoch_len=epoch_len,
        fanout=fanout,
        kill=True,
    )
    return {
        "benchmark": "aggtree_collector_volume",
        "nodes": nodes,
        "seed": seed,
        "fanout": fanout,
        "epoch_len": epoch_len,
        "duration": duration,
        "monitors": list(monitors),
        "equal": diff["equal"],
        "collector_inbound_tuples": diff["inbound"],
        "collector_inbound_bytes": {
            "centralized": diff["centralized"]["inbound_bytes"],
            "tree": diff["tree"]["inbound_bytes"],
        },
        "reduction_tuples": diff["reduction"],
        "reduction_bytes": (
            diff["centralized"]["inbound_bytes"]
            / diff["tree"]["inbound_bytes"]
            if diff["tree"]["inbound_bytes"]
            else float(diff["centralized"]["inbound_bytes"] or 1)
        ),
    }
