"""The decomposition pass: global monitor rules -> partials + merges.

A *global monitor program* is ordinary OverLog whose aggregate rules
send a population-wide summary to a constant collector address, e.g.::

    g1 gOscillTotal@collector(count<*>) :- oscill@NAddr(A, T).
    a1 gOscillAlarm@collector(E, C) :- gOscillTotal@collector(E, C),
        C >= oscillThresh.

``plan_global`` splits such a program three ways:

- **decomposed rules** — aggregate rules whose function is mergeable
  (:data:`~repro.aggtree.partials.DECOMPOSABLE_FUNCS`) and whose body
  is a single node-local predicate.  These never run as OverLog;
  the aggtree runtime evaluates them as per-node partial aggregates
  merged up the tree (or, in centralized mode, as raw rows folded at
  the collector — same algebra, same answer).  The emitted global
  tuple is ``name(Collector, Epoch, <head args with the aggregate
  replaced by its value>)`` — the epoch is injected after the location
  so downstream rules can correlate verdicts across ticks.
- **collector rules** — everything else that *can* run as ordinary
  OverLog at the collector (alarm predicates over the emitted global
  relations), plus the program's materializations.
- **fallbacks** — aggregate rules the pass cannot decompose (joins on
  per-tuple detail, non-mergeable functions like ``avg``, non-constant
  collectors).  They are left on the existing centralized path
  *unchanged* — installed as plain OverLog on every node — and each
  carries a machine-readable reason that the runtime surfaces as an
  ``agg.fallback`` telemetry event and ``agg_fallback_total`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import AggregationError
from repro.overlog import ast
from repro.overlog.program import Program
from repro.aggtree.partials import DECOMPOSABLE_FUNCS

#: Fallback reasons (stable identifiers; telemetry and tests pin them).
FALLBACK_UNSUPPORTED_AGG = "unsupported_aggregate"
FALLBACK_MULTI_JOIN = "multi_relation_join"
FALLBACK_COMPLEX_BODY = "complex_body"
FALLBACK_NON_CONSTANT_COLLECTOR = "non_constant_collector"
FALLBACK_BODY_NOT_NODE_LOCAL = "body_not_node_local"
FALLBACK_GROUP_NOT_PROJECTABLE = "group_not_projectable"
FALLBACK_PERIODIC_BODY = "periodic_body"


@dataclass
class DecomposedRule:
    """One aggregate rule split into partial + merge form."""

    rule_id: str
    #: Head relation: the emitted global tuple's name.
    global_name: str
    #: Body relation: the per-node contribution stream.
    relation: str
    func: str
    #: Body-functor arg index holding the aggregated value (None for
    #: ``count<*>``).
    value_index: Optional[int]
    #: Body-functor arg indices of the group-by fields, in head order.
    group_indices: Tuple[int, ...]
    #: Head layout after the location: each entry is ``("epoch",)``,
    #: ``("group", body_index)`` or ``("agg",)`` — how to assemble the
    #: emitted tuple from (epoch, group, finalized value).
    head_layout: Tuple[Tuple, ...]
    collector: str

    def emit_values(self, epoch: int, group: Tuple, value) -> Tuple:
        """Assemble the emitted global tuple's value fields."""
        out = [self.collector, epoch]
        by_index = dict(zip(self.group_indices, group))
        for entry in self.head_layout:
            if entry[0] == "group":
                out.append(by_index[entry[1]])
            else:  # ("agg",)
                out.append(value)
        return tuple(out)


@dataclass
class FallbackRule:
    """An aggregate rule left on the centralized path, with the reason."""

    rule_id: str
    head_name: str
    reason: str
    detail: str = ""


@dataclass
class AggPlan:
    """The planner's verdict over one global monitor program."""

    name: str
    decomposed: List[DecomposedRule] = field(default_factory=list)
    fallbacks: List[FallbackRule] = field(default_factory=list)
    #: Alarm rules + materializations, to install at the collector.
    collector_program: Optional[Program] = None
    #: Non-decomposable rules, to install on every node unchanged.
    fallback_program: Optional[Program] = None
    collector: Optional[str] = None

    def relations(self) -> Set[str]:
        """The per-node contribution relations the runtime must tap."""
        return {rule.relation for rule in self.decomposed}

    def global_names(self) -> Set[str]:
        return {rule.global_name for rule in self.decomposed}


def _constant_location(expr: ast.Expr) -> Optional[str]:
    """The literal address of a constant location specifier, or None."""
    if isinstance(expr, ast.Const) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.SymbolicConst):
        # Unbound symbolic constants evaluate to their own name; a bound
        # one was already substituted into a Const.
        return expr.name
    return None


def _decompose(rule: ast.Rule, aggregate: ast.Aggregate):
    """Try to split one aggregate rule; returns DecomposedRule or
    FallbackRule."""
    rule_id = rule.rule_id or rule.head.name
    head_name = rule.head.name

    def fallback(reason: str, detail: str = "") -> FallbackRule:
        return FallbackRule(rule_id, head_name, reason, detail)

    collector = _constant_location(rule.head.location)
    if collector is None:
        return fallback(
            FALLBACK_NON_CONSTANT_COLLECTOR, str(rule.head.location)
        )
    if aggregate.func not in DECOMPOSABLE_FUNCS:
        return fallback(FALLBACK_UNSUPPORTED_AGG, aggregate.func)
    functors = rule.body_functors()
    if len(functors) > 1:
        return fallback(
            FALLBACK_MULTI_JOIN,
            " x ".join(f.name for f in functors),
        )
    if len(functors) != len(rule.body):
        return fallback(FALLBACK_COMPLEX_BODY)
    trigger = functors[0]
    if trigger.name == "periodic":
        return fallback(FALLBACK_PERIODIC_BODY)
    if not isinstance(trigger.location, ast.Var):
        return fallback(
            FALLBACK_BODY_NOT_NODE_LOCAL, str(trigger.location)
        )

    positions = {}
    for index, arg in enumerate(trigger.args):
        if isinstance(arg, ast.Var) and arg.name not in positions:
            positions[arg.name] = index

    value_index: Optional[int] = None
    if aggregate.var is not None:
        value_index = positions.get(aggregate.var)
        if value_index is None:
            return fallback(FALLBACK_GROUP_NOT_PROJECTABLE, aggregate.var)

    group_indices: List[int] = []
    head_layout: List[Tuple] = []
    for arg in rule.head.args[1:]:
        if isinstance(arg, ast.Aggregate):
            head_layout.append(("agg",))
            continue
        if not isinstance(arg, ast.Var) or arg.name not in positions:
            return fallback(FALLBACK_GROUP_NOT_PROJECTABLE, str(arg))
        index = positions[arg.name]
        group_indices.append(index)
        head_layout.append(("group", index))

    return DecomposedRule(
        rule_id=rule_id,
        global_name=head_name,
        relation=trigger.name,
        func=aggregate.func,
        value_index=value_index,
        group_indices=tuple(group_indices),
        head_layout=tuple(head_layout),
        collector=collector,
    )


def plan_global(program: Program) -> AggPlan:
    """Split a (bound, validated) global monitor program (module doc)."""
    plan = AggPlan(name=program.name)
    collector_statements: List[ast.Statement] = []
    fallback_statements: List[ast.Statement] = []

    for statement in program.tree.statements:
        if not isinstance(statement, ast.Rule):
            collector_statements.append(statement)
            continue
        aggregates = statement.head.aggregates()
        if not aggregates:
            collector_statements.append(statement)
            continue
        outcome = _decompose(statement, aggregates[0])
        if isinstance(outcome, DecomposedRule):
            plan.decomposed.append(outcome)
        else:
            plan.fallbacks.append(outcome)
            fallback_statements.append(statement)

    collectors = {rule.collector for rule in plan.decomposed}
    if len(collectors) > 1:
        raise AggregationError(
            f"{program.name}: decomposed rules name multiple collectors: "
            f"{sorted(collectors)}"
        )
    plan.collector = collectors.pop() if collectors else None

    if any(isinstance(s, ast.Rule) for s in collector_statements):
        plan.collector_program = Program(
            ast.ProgramAST(collector_statements),
            name=f"{program.name}.collector",
            role="monitor",
        )
        plan.collector_program.validate()
    if fallback_statements:
        # Fallback rules may join tables the program declares; tables
        # re-materialize as a no-op, so shipping the declarations with
        # both programs is safe.
        materials = [
            s for s in collector_statements if isinstance(s, ast.Materialize)
        ]
        plan.fallback_program = Program(
            ast.ProgramAST(materials + fallback_statements),
            name=f"{program.name}.fallback",
            role="monitor",
        )
        plan.fallback_program.validate()
    return plan
