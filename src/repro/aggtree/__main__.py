"""CLI for the differential-aggregation battery and volume benchmark.

Used by the CI smoke step and by hand::

    python -m repro.aggtree --seeds 0,1,2,3,4 --nodes 8 \\
        --verdicts diff_verdicts.json
    python -m repro.aggtree --bench BENCH_aggtree.json --bench-nodes 64

Exit status is non-zero when any seed's centralized and tree runs
disagree (or the benchmark's reduction falls below ``--min-reduction``),
so CI fails loudly rather than uploading a green-looking artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.aggtree.differential import (
    DEFAULT_MONITORS,
    run_differential,
    run_volume_benchmark,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.aggtree",
        description="Differential in-network aggregation battery",
    )
    parser.add_argument(
        "--seeds",
        default="0,1,2,3,4",
        help="comma-separated seeds to sweep (default 0-4)",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--epoch-len", type=float, default=20.0)
    parser.add_argument("--fanout", type=int, default=3)
    parser.add_argument(
        "--monitors",
        default=",".join(DEFAULT_MONITORS),
        help="battery subset (comma-separated keys)",
    )
    parser.add_argument(
        "--verdicts", default=None, help="write per-seed verdict JSON here"
    )
    parser.add_argument(
        "--bench",
        default=None,
        help="also run the volume benchmark and write its JSON here",
    )
    parser.add_argument("--bench-nodes", type=int, default=64)
    parser.add_argument("--bench-seed", type=int, default=0)
    parser.add_argument("--min-reduction", type=float, default=5.0)
    parser.add_argument(
        "--skip-diff",
        action="store_true",
        help="run only the benchmark (with --bench)",
    )
    args = parser.parse_args(argv)
    monitors = tuple(
        key for key in args.monitors.split(",") if key
    )

    failed = False
    verdicts = []
    if not args.skip_diff:
        for seed in (int(s) for s in args.seeds.split(",") if s):
            verdict = run_differential(
                seed,
                monitors=monitors,
                nodes=args.nodes,
                duration=args.duration,
                epoch_len=args.epoch_len,
                fanout=args.fanout,
            )
            verdicts.append(verdict)
            status = "OK " if verdict["equal"] else "DIVERGED"
            print(
                f"seed {seed}: {status} alarms="
                f"{verdict['alarms']['tree']} inbound "
                f"centralized={verdict['inbound']['centralized']} "
                f"tree={verdict['inbound']['tree']} "
                f"reduction={verdict['reduction']:.1f}x"
            )
            failed = failed or not verdict["equal"]
        if args.verdicts:
            with open(args.verdicts, "w") as fh:
                json.dump(
                    {
                        "battery": "aggtree_differential",
                        "monitors": list(monitors),
                        "all_equal": not failed,
                        "verdicts": verdicts,
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )
            print(f"wrote {args.verdicts}")

    if args.bench:
        bench = run_volume_benchmark(
            seed=args.bench_seed,
            nodes=args.bench_nodes,
            monitors=monitors,
            epoch_len=args.epoch_len,
        )
        with open(args.bench, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
        print(
            f"wrote {args.bench}: reduction "
            f"{bench['reduction_tuples']:.1f}x tuples, "
            f"{bench['reduction_bytes']:.1f}x bytes"
        )
        if not bench["equal"]:
            print("benchmark runs DIVERGED", file=sys.stderr)
            failed = True
        if bench["reduction_tuples"] < args.min_reduction:
            print(
                f"reduction {bench['reduction_tuples']:.1f}x below the "
                f"{args.min_reduction:.1f}x floor",
                file=sys.stderr,
            )
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
