"""Mergeable partial-aggregate state — the algebra of the tree.

Each class holds one node's (or one subtree's) contribution to a global
aggregate for exactly one epoch.  The contract the differential battery
and the Hypothesis properties pin:

- ``merge`` is commutative and associative;
- ``finalize(merge(a, b)) == finalize(partial over the concatenated
  inputs)`` — so folding partials up the tree in any shape produces
  the byte-identical answer the centralized evaluation computes;
- merging partials from different epochs raises
  :class:`~repro.errors.EpochMismatchError` — never silently blends
  two snapshots of the population;
- the bounded top-k sketch never under-reports: every reported count is
  the exact observed count of that member, and any member whose true
  count exceeds the sketch's ``spill`` bound is guaranteed present.

Everything round-trips through the wire encoding
(:func:`repro.net.marshal.encode_value`), since partials travel between
nodes as ordinary ``aggPartial`` tuples.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AggregationError, EpochMismatchError
from repro.overlog.types import NodeID

#: Aggregate functions the planner may decompose (``avg`` is *not* here:
#: it is not mergeable as shipped, and falls back to the centralized
#: path — see :mod:`repro.aggtree.planner`).
DECOMPOSABLE_FUNCS = ("count", "sum", "min", "max", "topk")

#: Default number of distinct members a top-k sketch carries on the
#: wire.  Within this bound the sketch is exact; beyond it, trimming
#: engages and the ``spill`` error bound starts growing.
DEFAULT_SKETCH_CAPACITY = 64

#: Default k reported by ``finalize`` of a top-k sketch.
DEFAULT_TOP_K = 5


def sort_key(value: Any) -> Tuple:
    """A total order over wire-encodable values (for deterministic
    tie-breaking and canonical payload ordering across mixed types)."""
    if isinstance(value, NodeID):
        return (3, value.value, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (2, value, "")
    if isinstance(value, str):
        return (4, 0, value)
    if isinstance(value, (tuple, list)):
        return (5, 0, "") + tuple(sort_key(v) for v in value)
    if value is None:
        return (0, 0, "")
    raise AggregationError(f"unorderable aggregate value: {value!r}")


class Partial:
    """Base class: one epoch's mergeable state for one aggregate."""

    func = "?"

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        #: How many origin nodes contributed into this state (1 for a
        #: leaf partial; summed on merge).  The ledger uses it to
        #: attribute missing subtrees at the root.
        self.origins = 0

    # -- the algebra ----------------------------------------------------

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "Partial") -> "Partial":
        """Fold ``other`` into this state (returns self for chaining)."""
        if other.func != self.func:
            raise AggregationError(
                f"cannot merge {other.func!r} partial into {self.func!r}"
            )
        if other.epoch != self.epoch:
            raise EpochMismatchError(
                f"{self.func} partial for epoch {other.epoch} cannot merge "
                f"into epoch {self.epoch}"
            )
        self.origins += other.origins
        self._merge(other)
        return self

    def _merge(self, other: "Partial") -> None:
        raise NotImplementedError

    def finalize(self) -> Optional[Any]:
        """The aggregate's value (None = no row, like min() of nothing)."""
        raise NotImplementedError

    # -- the wire -------------------------------------------------------

    def payload(self) -> Any:
        raise NotImplementedError

    def _load(self, payload: Any) -> None:
        raise NotImplementedError

    def to_wire(self) -> Tuple:
        """A wire-encodable snapshot: ``(func, epoch, origins, payload)``."""
        return (self.func, self.epoch, self.origins, self.payload())

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} epoch={self.epoch} "
            f"origins={self.origins} value={self.finalize()!r}>"
        )


class CountPartial(Partial):
    """``count<*>`` — the archetypal decomposable aggregate."""

    func = "count"

    def __init__(self, epoch: int) -> None:
        super().__init__(epoch)
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def _merge(self, other: "CountPartial") -> None:
        self.n += other.n

    def finalize(self) -> int:
        return self.n

    def payload(self) -> int:
        return self.n

    def _load(self, payload: Any) -> None:
        self.n = int(payload)


class SumPartial(Partial):
    """``sum<V>`` over numeric contributions."""

    func = "sum"

    def __init__(self, epoch: int) -> None:
        super().__init__(epoch)
        self.total: Any = None

    def add(self, value: Any) -> None:
        self.total = value if self.total is None else self.total + value

    def _merge(self, other: "SumPartial") -> None:
        if other.total is not None:
            self.add(other.total)

    def finalize(self) -> Optional[Any]:
        return self.total

    def payload(self) -> Any:
        return self.total

    def _load(self, payload: Any) -> None:
        self.total = payload


class _ExtremumPartial(Partial):
    def __init__(self, epoch: int) -> None:
        super().__init__(epoch)
        self.best: Any = None

    def _better(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def add(self, value: Any) -> None:
        self.best = value if self.best is None else self._better(self.best, value)

    def _merge(self, other: "_ExtremumPartial") -> None:
        if other.best is not None:
            self.add(other.best)

    def finalize(self) -> Optional[Any]:
        return self.best

    def payload(self) -> Any:
        return self.best

    def _load(self, payload: Any) -> None:
        self.best = payload


class MinPartial(_ExtremumPartial):
    func = "min"

    def _better(self, a: Any, b: Any) -> Any:
        return b if b < a else a


class MaxPartial(_ExtremumPartial):
    func = "max"

    def _better(self, a: Any, b: Any) -> Any:
        return b if b > a else a


class TopKPartial(Partial):
    """``topk<V>`` — heavy hitters via a bounded, mergeable sketch.

    Exact while the number of distinct members stays within
    ``capacity``; past it, :meth:`trim` drops the lightest members and
    grows ``spill``, the error bound.  The invariant maintained through
    any sequence of adds, trims, and merges:

        every member *not* in the sketch has true count <= ``spill``.

    So a member whose true count exceeds ``spill`` is never lost
    (contrapositive), and kept counts are exact counts of the
    occurrences observed while the member was resident — they never
    over-report.  ``finalize`` returns the top ``k`` as a tuple of
    ``(member, count)`` pairs, heaviest first, ties broken by the
    member's canonical sort order so the result is deterministic.
    """

    func = "topk"

    def __init__(
        self,
        epoch: int,
        k: int = DEFAULT_TOP_K,
        capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> None:
        super().__init__(epoch)
        if k <= 0 or capacity < k:
            raise AggregationError(
                f"top-k sketch needs 0 < k <= capacity, got k={k} "
                f"capacity={capacity}"
            )
        self.k = k
        self.capacity = capacity
        self.counts: Dict[Any, int] = {}
        self.spill = 0
        #: Members discarded by trims so far (telemetry attribution).
        self.trimmed = 0

    def add(self, value: Any) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1

    def _merge(self, other: "TopKPartial") -> None:
        for member, count in other.counts.items():
            self.counts[member] = self.counts.get(member, 0) + count
        # A member absent from one side may hide up to that side's
        # spill of unseen mass; bounds add.
        self.spill += other.spill
        self.trimmed += other.trimmed
        self.k = min(self.k, other.k)
        self.capacity = min(self.capacity, other.capacity)

    def _ranked(self) -> List[Tuple[Any, int]]:
        return sorted(
            self.counts.items(), key=lambda kv: (-kv[1], sort_key(kv[0]))
        )

    def trim(self) -> int:
        """Shrink to ``capacity`` members; returns how many were cut.

        The heaviest survive; each dropped member's count is folded
        into ``spill`` (the largest dropped count dominates), keeping
        the never-under-report invariant.
        """
        ranked = self._ranked()
        cut = ranked[self.capacity:]
        if not cut:
            return 0
        # A dropped member's true count is its resident count plus any
        # mass already hidden behind the old spill (it may have been
        # dropped and re-added before), so the new bound is additive.
        self.spill += max(count for _, count in cut)
        for member, _ in cut:
            del self.counts[member]
        self.trimmed += len(cut)
        return len(cut)

    def finalize(self) -> Tuple:
        return tuple((member, count) for member, count in self._ranked()[: self.k])

    def payload(self) -> Tuple:
        self.trim()
        return (
            self.k,
            self.capacity,
            self.spill,
            self.trimmed,
            tuple((member, count) for member, count in self._ranked()),
        )

    def _load(self, payload: Any) -> None:
        k, capacity, spill, trimmed, entries = payload
        self.k = int(k)
        self.capacity = int(capacity)
        self.spill = int(spill)
        self.trimmed = int(trimmed)
        self.counts = {member: int(count) for member, count in entries}


_CLASSES: Dict[str, type] = {
    cls.func: cls
    for cls in (CountPartial, SumPartial, MinPartial, MaxPartial, TopKPartial)
}


def make_partial(
    func: str,
    epoch: int,
    k: int = DEFAULT_TOP_K,
    sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
) -> Partial:
    """Fresh, empty partial state for one aggregate function."""
    if func not in _CLASSES:
        raise AggregationError(f"no partial state for aggregate {func!r}")
    if func == "topk":
        return TopKPartial(epoch, k=k, capacity=sketch_capacity)
    return _CLASSES[func](epoch)


def partial_from_wire(wire: Tuple) -> Partial:
    """Inverse of :meth:`Partial.to_wire`."""
    try:
        func, epoch, origins, payload = wire
    except (TypeError, ValueError) as exc:
        raise AggregationError(f"malformed partial on the wire: {wire!r}") from exc
    if func not in _CLASSES:
        raise AggregationError(f"unknown partial kind on the wire: {func!r}")
    partial = _CLASSES[func](int(epoch))
    partial.origins = int(origins)
    partial._load(payload)
    return partial
