"""Epoch-driven execution of global monitors, in both evaluation modes.

A :class:`GlobalAggregateMonitor` pairs an optional node-local OverLog
program (the per-node detector, installed unchanged on every node) with
a *global* program whose aggregate rules summarize the whole population
at a collector.  ``install`` plans the global program
(:mod:`repro.aggtree.planner`) and wires one of two executions:

- ``centralized`` — the baseline the paper implies: every node ships
  its raw contributions (one ``aggRaw`` tuple per row) to the
  collector, which folds them and emits the global tuples;
- ``tree`` — each node folds its own rows into mergeable partials
  (:mod:`repro.aggtree.partials`), merges in its children's partials,
  and ships a single ``aggPartial`` tuple up a deterministic fanout-k
  overlay (:mod:`repro.aggtree.tree`); only the collector's direct
  children ever reach it.

Both modes capture contributions through the *same* per-node
subscriptions, bucket them by the same absolute virtual-clock epochs,
fold them through the same partial algebra, and emit global tuples on
the same schedule — which is why the differential battery
(``tests/aggtree``) can demand byte-identical verdict fingerprints.

Time within an epoch ``e`` of length ``L`` (``t_e = (e+1)*L`` is the
boundary, ``D`` the tree depth):

- ``t_e``            — the tree for ``e`` is rebuilt from the live
  population and the ledger opens the epoch;
- ``t_e + (D-d+1)*h`` — tree mode: nodes at depth ``d`` flush, deepest
  first, so children's partials always precede the parent's flush
  (``h`` is ``hop_delay``, far above the network latency);
- ``t_e + h``        — centralized mode: every node ships its rows;
- ``t_e + (D+1)*h``  — both modes: the collector finalizes, emits the
  global tuples, and the collector program's alarm rules fire.

Anything arriving for an epoch after its flush point is **late**:
counted in the :class:`AggLedger` and the ``agg_late_total`` counter,
never silently merged.  Aggregation traffic is classified under the
``monitor`` priority class, so overload protection sheds it before any
application data (see ``tests/overload/test_aggtree_storm.py``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.errors import AggregationError
from repro.overload.policy import CLASS_MONITOR
from repro.overlog.program import Program
from repro.runtime.tuples import Tuple
from repro.aggtree.partials import (
    DEFAULT_SKETCH_CAPACITY,
    DEFAULT_TOP_K,
    Partial,
    make_partial,
    partial_from_wire,
    sort_key,
)
from repro.aggtree.planner import AggPlan, plan_global
from repro.aggtree.tree import AggregationTree

#: Wire relations the aggregation plane sends between nodes.
AGG_PARTIAL = "aggPartial"
AGG_RAW = "aggRaw"

#: Evaluation modes.
MODE_TREE = "tree"
MODE_CENTRALIZED = "centralized"
MODES = (MODE_TREE, MODE_CENTRALIZED)

#: Sentinel rule id of the per-node row-count marker in centralized
#: mode (lets the collector attribute origins without partials).
MARKER = ""


def _canonical(value: Any) -> Any:
    """JSON-stable form of a wire value (NodeIDs tagged, tuples listed)."""
    cls = type(value).__name__
    if cls == "NodeID":
        return ["NodeID", str(value)]
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    return value


def _row_key(row: Any) -> str:
    return json.dumps(_canonical(row), sort_keys=True, default=str)


class _NodeBuf:
    """One node's accumulation state for one epoch."""

    __slots__ = ("raws", "child", "child_origins", "flushed")

    def __init__(self) -> None:
        #: rule_id -> [(group, value), ...] in arrival order (own rows).
        self.raws: Dict[str, List[PyTuple]] = {}
        #: rule_id -> {group: Partial} merged from children (tree mode).
        self.child: Dict[str, Dict[PyTuple, Partial]] = {}
        self.child_origins = 0
        self.flushed = False


class _CentralBuf:
    """The collector's raw-row accumulation for one epoch (centralized)."""

    __slots__ = ("rows", "origins_seen", "finalized")

    def __init__(self) -> None:
        self.rows: Dict[str, List[PyTuple]] = {}
        self.origins_seen: set = set()
        self.finalized = False


class AggLedger:
    """Per-epoch attribution: where did every expected origin end up?

    ``expected`` is the live population when the epoch's tree was
    built; ``merged`` is how many origins' state reached the final
    verdict; ``late`` arrived after their window and were counted, not
    merged; ``missing = expected - merged - late`` is the shed/lost
    remainder.  Inbound counts measure collector load (the benchmark's
    reduction ratio reads them).
    """

    def __init__(self) -> None:
        self.epochs: Dict[int, Dict[str, Any]] = {}

    def _row(self, epoch: int) -> Dict[str, Any]:
        return self.epochs.setdefault(
            epoch,
            {
                "epoch": epoch,
                "expected": 0,
                "merged": 0,
                "late_origins": 0,
                "late_rows": 0,
                "inbound_tuples": 0,
                "inbound_bytes": 0,
                "finalized": False,
                "skipped": False,
            },
        )

    def open(self, epoch: int, expected: int) -> None:
        self._row(epoch)["expected"] = expected

    def skip(self, epoch: int, expected: int) -> None:
        row = self._row(epoch)
        row["expected"] = expected
        row["skipped"] = True

    def record_inbound(self, epoch: int, tuples: int, size: int) -> None:
        row = self._row(epoch)
        row["inbound_tuples"] += tuples
        row["inbound_bytes"] += size

    def record_late(self, epoch: int, origins: int) -> None:
        self._row(epoch)["late_origins"] += origins

    def record_late_rows(self, epoch: int, rows: int) -> None:
        self._row(epoch)["late_rows"] += rows

    def finalize(self, epoch: int, merged: int) -> None:
        row = self._row(epoch)
        row["merged"] = merged
        row["finalized"] = True

    def rows(self) -> List[Dict[str, Any]]:
        out = []
        for epoch in sorted(self.epochs):
            row = dict(self.epochs[epoch])
            row["missing"] = max(
                0, row["expected"] - row["merged"] - row["late_origins"]
            )
            out.append(row)
        return out

    def totals(self) -> Dict[str, int]:
        keys = (
            "expected",
            "merged",
            "late_origins",
            "late_rows",
            "inbound_tuples",
            "inbound_bytes",
            "missing",
        )
        totals = {key: 0 for key in keys}
        for row in self.rows():
            for key in keys:
                totals[key] += row[key]
        return totals


class GlobalAggregateMonitor:
    """A population-wide monitor: local detector + global summary rules.

    ``global_source`` is OverLog whose aggregate rule heads live at the
    symbolic constant ``collector`` (bound to the actual address at
    install time); ``local_source``, when given, is installed unchanged
    on every node (role ``monitor``), exactly like a plain
    :class:`repro.monitors.base.Monitor`.  ``alarm_events`` are the
    relations the collector program derives that count as alarms.
    """

    def __init__(
        self,
        name: str,
        global_source: str,
        local_source: Optional[str] = None,
        alarm_events: Sequence[str] = (),
        bindings: Optional[Dict[str, Any]] = None,
        epoch_len: float = 10.0,
        fanout: int = 4,
        hop_delay: float = 0.5,
        top_k: int = DEFAULT_TOP_K,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> None:
        if epoch_len <= 0:
            raise AggregationError(f"epoch_len must be > 0: {epoch_len}")
        if hop_delay <= 0:
            raise AggregationError(f"hop_delay must be > 0: {hop_delay}")
        self.name = name
        self.global_source = global_source
        self.local_source = local_source
        self.alarm_events = tuple(alarm_events)
        self.bindings = dict(bindings or {})
        self.epoch_len = epoch_len
        self.fanout = fanout
        self.hop_delay = hop_delay
        self.top_k = top_k
        self.sketch_capacity = sketch_capacity

    def plan(self, collector: str) -> AggPlan:
        """Compile + plan the global program for one collector address."""
        bindings = dict(self.bindings)
        bindings.setdefault("collector", str(collector))
        program = Program.compile(
            self.global_source,
            name=f"{self.name}.global",
            bindings=bindings,
            role="monitor",
        )
        return plan_global(program)

    def install(
        self,
        system,
        collector: str,
        addresses: Optional[Sequence[str]] = None,
        mode: str = MODE_TREE,
    ) -> "AggHandle":
        """Wire this monitor into a running system; returns the handle."""
        if mode not in MODES:
            raise AggregationError(
                f"unknown aggregation mode {mode!r}; pick one of {MODES}"
            )
        if addresses is None:
            addresses = [str(a) for a in system.nodes]
        return AggHandle(self, system, str(collector), list(addresses), mode)


class AggHandle:
    """One installed global monitor: state, schedule, results, ledger."""

    def __init__(
        self,
        monitor: GlobalAggregateMonitor,
        system,
        collector: str,
        addresses: List[str],
        mode: str,
    ) -> None:
        self.monitor = monitor
        self.system = system
        self.collector = collector
        self.addresses = addresses
        self.mode = mode
        self.name = monitor.name
        self.epoch_len = monitor.epoch_len
        self.ledger = AggLedger()
        #: global relation -> emitted rows (value tuples), arrival order.
        self.globals: Dict[str, List[PyTuple]] = {}
        #: alarm relation -> delivered rows at the collector.
        self.alarms: Dict[str, List[PyTuple]] = {}
        #: epoch -> list of (child, parent) edges (tree panel data).
        self.tree_edges: Dict[int, List[PyTuple]] = {}
        self.last_tree: Optional[AggregationTree] = None

        self._bufs: Dict[str, Dict[int, _NodeBuf]] = {}
        self._central: Dict[int, _CentralBuf] = {}
        self._subs: List[PyTuple] = []  # (addr, relation, callback)
        self._installed: List[PyTuple] = []  # (addr, CompiledProgram)
        self._timer = None
        self._finalized_epoch: Optional[int] = None
        self._closed = False
        self._restart_hook = None

        if collector not in addresses:
            raise AggregationError(
                f"collector {collector!r} must be one of the monitored "
                "addresses"
            )
        self.plan = monitor.plan(collector)
        if self.plan.collector is not None and self.plan.collector != collector:
            raise AggregationError(
                f"{self.name}: global rules name collector "
                f"{self.plan.collector!r} but install targets {collector!r}"
            )

        tel = system.telemetry
        reg = tel.metrics
        self._c_partials = reg.counter(
            "agg_partials_sent_total",
            "aggPartial tuples sent up the tree",
            ("monitor",),
        )
        self._c_raws = reg.counter(
            "agg_raws_sent_total",
            "aggRaw tuples sent to the collector (centralized mode)",
            ("monitor",),
        )
        self._c_late = reg.counter(
            "agg_late_total",
            "partials/raws that arrived after their epoch window",
            ("monitor",),
        )
        self._c_fallback = reg.counter(
            "agg_fallback_total",
            "global rules left on the centralized path by the planner",
            ("monitor", "reason"),
        )
        self._c_epochs = reg.counter(
            "agg_epochs_total",
            "epochs finalized at the collector",
            ("monitor", "mode"),
        )
        self._c_inbound = reg.counter(
            "agg_collector_inbound_total",
            "aggregation tuples arriving at the collector",
            ("monitor", "mode"),
        )
        self._h_groups = reg.histogram(
            "agg_flush_groups",
            "groups per flushed partial message",
            ("monitor",),
        )
        self._h_depth = reg.histogram(
            "agg_tree_depth",
            "aggregation tree depth per epoch",
            ("monitor",),
        )

        self._install_programs()
        self._wire_nodes()
        self._wire_collector_sinks()
        self._wire_restart_hook()
        for rule in self.plan.fallbacks:
            self._c_fallback.inc(monitor=self.name, reason=rule.reason)
            tel.event(
                "agg.fallback",
                monitor=self.name,
                rule=rule.rule_id,
                head=rule.head_name,
                reason=rule.reason,
                detail=rule.detail,
            )
        tel.event(
            "agg.install",
            monitor=self.name,
            mode=self.mode,
            collector=self.collector,
            nodes=len(self.addresses),
            decomposed=len(self.plan.decomposed),
            fallbacks=len(self.plan.fallbacks),
        )

        sim = system.sim
        self._first_epoch = int(sim.now // self.epoch_len)
        boundary = (self._first_epoch + 1) * self.epoch_len
        self._timer = sim.schedule(boundary - sim.now, self._tick)

    # ------------------------------------------------------------------
    # Wiring

    def _node(self, addr: str):
        node = self.system.nodes.get(addr)
        if node is None or node.stopped:
            return None
        return node

    def _install_programs(self) -> None:
        monitor = self.monitor
        local = None
        if monitor.local_source is not None:
            local = Program.compile(
                monitor.local_source,
                name=f"{self.name}.local",
                bindings=monitor.bindings,
                role="monitor",
            )
        for addr in self.addresses:
            node = self._node(addr)
            if node is None:
                continue
            if local is not None:
                self._installed.append((addr, node.install(local)))
            if self.plan.fallback_program is not None:
                self._installed.append(
                    (addr, node.install(self.plan.fallback_program))
                )
        if self.plan.collector_program is not None:
            node = self._node(self.collector)
            if node is not None:
                self._installed.append(
                    (self.collector, node.install(self.plan.collector_program))
                )

    def _agg_relations(self) -> List[str]:
        names = [AGG_PARTIAL, AGG_RAW]
        names.extend(sorted(self.plan.global_names()))
        names.extend(self.monitor.alarm_events)
        return names

    def _wire_one_node(self, addr: str) -> None:
        """Subscriptions + priority classing for one live node."""
        node = self._node(addr)
        if node is None:
            return
        for relation in sorted(self.plan.relations()):
            cb = self._make_contribution_cb(addr)
            node.subscribe(relation, cb)
            self._subs.append((addr, relation, cb))
        if self.mode == MODE_TREE:
            cb = self._make_partial_cb(addr)
            node.subscribe(AGG_PARTIAL, cb)
            self._subs.append((addr, AGG_PARTIAL, cb))
        elif addr == self.collector:
            cb = self._make_raw_cb()
            node.subscribe(AGG_RAW, cb)
            self._subs.append((addr, AGG_RAW, cb))
        if node.overload is not None:
            # Interior nodes never install a program that derives the
            # agg relations, so the install-time role learning cannot
            # see them; class them directly.  Monitor class means the
            # tree sheds before any application data does.
            node.overload.priorities.learn(self._agg_relations(), CLASS_MONITOR)

    def _wire_nodes(self) -> None:
        for addr in self.addresses:
            self._wire_one_node(addr)

    def _wire_collector_sinks(self) -> None:
        node = self._node(self.collector)
        if node is None:
            raise AggregationError(
                f"collector {self.collector!r} is not a live node"
            )
        for name in sorted(self.plan.global_names()):
            rows = self.globals.setdefault(name, [])
            cb = self._make_sink_cb(rows)
            node.subscribe(name, cb)
            self._subs.append((self.collector, name, cb))
        for name in self.monitor.alarm_events:
            rows = self.alarms.setdefault(name, [])
            cb = self._make_sink_cb(rows)
            node.subscribe(name, cb)
            self._subs.append((self.collector, name, cb))

    def _wire_restart_hook(self) -> None:
        recovery = getattr(self.system, "recovery", None)
        if recovery is None:
            return

        def rewire(address, node, report) -> None:
            addr = str(address)
            if self._closed or addr not in self.addresses:
                return
            # The dead node's subscriptions died with it; re-wire the
            # replacement (collector sinks included when it is the
            # collector) and note the rebuild.
            self._subs = [s for s in self._subs if s[0] != addr]
            self._wire_one_node(addr)
            if addr == self.collector:
                self._wire_collector_sinks()
            self.system.telemetry.event(
                "agg.rebuild", monitor=self.name, node=addr
            )

        recovery.on_restart.append(rewire)
        self._restart_hook = rewire

    def _make_sink_cb(self, rows: List[PyTuple]):
        def sink(tup: Tuple) -> None:
            if not self._closed:
                rows.append(tuple(tup.values))

        return sink

    # ------------------------------------------------------------------
    # Capture

    def _make_contribution_cb(self, addr: str):
        rules = [
            r for r in self.plan.decomposed
        ]

        def on_contribution(tup: Tuple) -> None:
            if self._closed:
                return
            epoch = int(self.system.sim.now // self.epoch_len)
            buf = self._bufs.setdefault(addr, {}).setdefault(epoch, _NodeBuf())
            for rule in rules:
                if rule.relation != tup.name:
                    continue
                group = tuple(tup.values[i] for i in rule.group_indices)
                value = (
                    tup.values[rule.value_index]
                    if rule.value_index is not None
                    else None
                )
                buf.raws.setdefault(rule.rule_id, []).append((group, value))

        return on_contribution

    def _make_partial_cb(self, addr: str):
        def on_partial(tup: Tuple) -> None:
            if self._closed:
                return
            _dst, monitor, epoch, origins, payload = tup.values
            if monitor != self.name:
                return
            epoch = int(epoch)
            origins = int(origins)
            if addr == self.collector:
                self.ledger.record_inbound(epoch, 1, tup.estimated_size())
                self._c_inbound.inc(monitor=self.name, mode=self.mode)
            buf = self._bufs.setdefault(addr, {}).setdefault(epoch, _NodeBuf())
            late = buf.flushed or (
                self._finalized_epoch is not None
                and epoch <= self._finalized_epoch
            )
            if late:
                self.ledger.record_late(epoch, origins)
                self._c_late.inc(origins, monitor=self.name)
                self.system.telemetry.event(
                    "agg.late",
                    monitor=self.name,
                    node=addr,
                    epoch=epoch,
                    origins=origins,
                )
                return
            buf.child_origins += origins
            for rule_id, groups in payload:
                merged = buf.child.setdefault(rule_id, {})
                for group, wire in groups:
                    partial = partial_from_wire(wire)
                    existing = merged.get(group)
                    if existing is None:
                        merged[group] = partial
                    else:
                        existing.merge(partial)

        return on_partial

    def _make_raw_cb(self):
        def on_raw(tup: Tuple) -> None:
            if self._closed:
                return
            _dst, monitor, epoch, origin, rule_id, group, value = tup.values
            if monitor != self.name:
                return
            epoch = int(epoch)
            self.ledger.record_inbound(epoch, 1, tup.estimated_size())
            self._c_inbound.inc(monitor=self.name, mode=self.mode)
            central = self._central.setdefault(epoch, _CentralBuf())
            late = central.finalized or (
                self._finalized_epoch is not None
                and epoch <= self._finalized_epoch
            )
            if late:
                if rule_id == MARKER:
                    self.ledger.record_late(epoch, 1)
                    self._c_late.inc(monitor=self.name)
                else:
                    self.ledger.record_late_rows(epoch, 1)
                self.system.telemetry.event(
                    "agg.late",
                    monitor=self.name,
                    node=self.collector,
                    epoch=epoch,
                    origins=1 if rule_id == MARKER else 0,
                )
                return
            if rule_id == MARKER:
                central.origins_seen.add(origin)
            else:
                central.rows.setdefault(rule_id, []).append((group, value))

        return on_raw

    # ------------------------------------------------------------------
    # The epoch schedule

    def _tick(self) -> None:
        if self._closed:
            return
        sim = self.system.sim
        epoch = int(round(sim.now / self.epoch_len)) - 1
        live = [a for a in self.addresses if self._node(a) is not None]
        if self.collector not in live:
            self.ledger.skip(epoch, len(live))
            self.system.telemetry.event(
                "agg.collector_down", monitor=self.name, epoch=epoch
            )
        else:
            tree = AggregationTree(
                self.collector, live, fanout=self.monitor.fanout
            )
            self.last_tree = tree
            self.tree_edges[epoch] = tree.edges()
            self._h_depth.observe(tree.max_depth(), monitor=self.name)
            self.ledger.open(epoch, len(live))
            hop = self.monitor.hop_delay
            depth = tree.max_depth()
            if self.mode == MODE_TREE:
                for addr in tree.order[1:]:
                    delay = (depth - tree.depth(addr) + 1) * hop
                    sim.schedule(
                        delay,
                        lambda e=epoch, a=addr, t=tree: self._flush_tree(e, a, t),
                    )
            else:
                for addr in tree.order[1:]:
                    sim.schedule(
                        hop, lambda e=epoch, a=addr: self._flush_central(e, a)
                    )
            sim.schedule(
                (depth + 1) * hop, lambda e=epoch: self._finalize(e)
            )
        boundary = (epoch + 2) * self.epoch_len
        self._timer = sim.schedule(boundary - sim.now, self._tick)

    def _combine(self, buf: _NodeBuf, epoch: int) -> Dict[str, Dict[PyTuple, Partial]]:
        """Own raw rows + merged child partials -> per-rule group states."""
        monitor = self.monitor
        combined: Dict[str, Dict[PyTuple, Partial]] = {}
        for rule in self.plan.decomposed:
            groups: Dict[PyTuple, Partial] = dict(
                buf.child.get(rule.rule_id, {})
            )
            for group, value in buf.raws.get(rule.rule_id, ()):
                partial = groups.get(group)
                if partial is None:
                    partial = make_partial(
                        rule.func,
                        epoch,
                        k=monitor.top_k,
                        sketch_capacity=monitor.sketch_capacity,
                    )
                    partial.origins = 1
                    groups[group] = partial
                partial.add(value)
            if groups:
                combined[rule.rule_id] = groups
        return combined

    def _flush_tree(self, epoch: int, addr: str, tree: AggregationTree) -> None:
        if self._closed:
            return
        node = self._node(addr)
        buf = self._bufs.setdefault(addr, {}).setdefault(epoch, _NodeBuf())
        buf.flushed = True
        if node is None:
            # Died between tree build and its flush slot; its subtree's
            # already-received partials die with it (missing at root).
            return
        combined = self._combine(buf, epoch)
        payload = []
        n_groups = 0
        for rule in self.plan.decomposed:
            groups = combined.get(rule.rule_id)
            if not groups:
                continue
            entries = tuple(
                (group, groups[group].to_wire())
                for group in sorted(groups, key=sort_key)
            )
            n_groups += len(entries)
            payload.append((rule.rule_id, entries))
        origins = 1 + buf.child_origins
        parent = tree.parent(addr)
        node.inject(
            AGG_PARTIAL,
            (parent, self.name, epoch, origins, tuple(payload)),
        )
        self._c_partials.inc(monitor=self.name)
        self._h_groups.observe(n_groups, monitor=self.name)
        self.system.telemetry.event(
            "agg.flush",
            monitor=self.name,
            node=addr,
            parent=parent,
            epoch=epoch,
            origins=origins,
            groups=n_groups,
        )
        # Own rows are folded and shipped; free them, keep the flushed
        # marker so stragglers for this epoch are attributed as late.
        buf.raws = {}
        buf.child = {}

    def _flush_central(self, epoch: int, addr: str) -> None:
        if self._closed:
            return
        node = self._node(addr)
        buf = self._bufs.setdefault(addr, {}).setdefault(epoch, _NodeBuf())
        buf.flushed = True
        if node is None:
            return
        rows = []
        for rule in self.plan.decomposed:
            for group, value in buf.raws.get(rule.rule_id, ()):
                rows.append((rule.rule_id, group, value))
        node.inject(
            AGG_RAW,
            (self.collector, self.name, epoch, addr, MARKER, (), len(rows)),
        )
        for rule_id, group, value in rows:
            node.inject(
                AGG_RAW,
                (self.collector, self.name, epoch, addr, rule_id, group, value),
            )
        self._c_raws.inc(1 + len(rows), monitor=self.name)
        buf.raws = {}

    def _finalize(self, epoch: int) -> None:
        if self._closed:
            return
        collector_node = self._node(self.collector)
        buf = self._bufs.setdefault(self.collector, {}).setdefault(
            epoch, _NodeBuf()
        )
        buf.flushed = True
        if self.mode == MODE_CENTRALIZED:
            central = self._central.setdefault(epoch, _CentralBuf())
            central.finalized = True
            merged = len(central.origins_seen) + 1
            # Fold the received raw rows into the collector's own buffer
            # shape, then combine exactly like a tree node would.
            for rule_id, rows in central.rows.items():
                buf.raws.setdefault(rule_id, []).extend(rows)
            central.rows = {}
        else:
            merged = 1 + buf.child_origins
        self._finalized_epoch = epoch
        if collector_node is None:
            self.ledger.skip(epoch, self.ledger._row(epoch)["expected"])
            return
        combined = self._combine(buf, epoch)
        monitor = self.monitor
        for rule in self.plan.decomposed:
            groups = combined.get(rule.rule_id, {})
            if not rule.group_indices and () not in groups:
                # Ungrouped aggregates still report over an empty epoch
                # (count<*> of nothing is 0 — the paper's sr8 semantics).
                groups = dict(groups)
                groups[()] = make_partial(
                    rule.func,
                    epoch,
                    k=monitor.top_k,
                    sketch_capacity=monitor.sketch_capacity,
                )
            for group in sorted(groups, key=sort_key):
                value = groups[group].finalize()
                if value is None:
                    continue
                collector_node.inject(
                    rule.global_name, rule.emit_values(epoch, group, value)
                )
        buf.raws = {}
        buf.child = {}
        self.ledger.finalize(epoch, merged)
        self._c_epochs.inc(monitor=self.name, mode=self.mode)
        row = self.ledger._row(epoch)
        self.system.telemetry.event(
            "agg.finalize",
            monitor=self.name,
            mode=self.mode,
            epoch=epoch,
            expected=row["expected"],
            merged=merged,
            late=row["late_origins"],
        )
        # Old epochs can no longer accept anything but late arrivals
        # (caught by the _finalized_epoch check); free their buffers.
        for addr in list(self._bufs):
            for old in [e for e in self._bufs[addr] if e <= epoch]:
                del self._bufs[addr][old]
        for old in [e for e in self._central if e <= epoch]:
            del self._central[old]

    # ------------------------------------------------------------------
    # Results

    def alarm_count(self) -> int:
        return sum(len(rows) for rows in self.alarms.values())

    def fingerprint(self) -> str:
        """SHA-256 over the canonical global-tuple + alarm streams.

        Rows are sorted canonically, so two runs match iff they emitted
        the same verdicts — regardless of intra-epoch delivery order.
        """
        canon = {
            "globals": {
                name: sorted(
                    (_canonical(row) for row in rows), key=_row_key
                )
                for name, rows in sorted(self.globals.items())
            },
            "alarms": {
                name: sorted(
                    (_canonical(row) for row in rows), key=_row_key
                )
                for name, rows in sorted(self.alarms.items())
            },
        }
        blob = json.dumps(canon, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def verdict(self) -> Dict[str, Any]:
        """One run's comparable outcome (the differential battery's unit)."""
        totals = self.ledger.totals()
        return {
            "monitor": self.name,
            "mode": self.mode,
            "fingerprint": self.fingerprint(),
            "globals": {
                name: len(rows) for name, rows in sorted(self.globals.items())
            },
            "alarms": {
                name: len(rows) for name, rows in sorted(self.alarms.items())
            },
            "fallbacks": [
                {"rule": f.rule_id, "reason": f.reason}
                for f in self.plan.fallbacks
            ],
            "ledger": totals,
            "collector_inbound_tuples": totals["inbound_tuples"],
            "collector_inbound_bytes": totals["inbound_bytes"],
        }

    def remove(self) -> None:
        """Detach everything: subscriptions, programs, timers, hooks."""
        if self._closed:
            return
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for addr, relation, cb in self._subs:
            node = self.system.nodes.get(addr)
            if node is not None and not node.stopped:
                node.unsubscribe(relation, cb)
        self._subs = []
        for addr, compiled in self._installed:
            node = self.system.nodes.get(addr)
            if node is not None and not node.stopped:
                try:
                    node.uninstall(compiled)
                except Exception:
                    pass
        self._installed = []
        recovery = getattr(self.system, "recovery", None)
        if recovery is not None and self._restart_hook in recovery.on_restart:
            recovery.on_restart.remove(self._restart_hook)
        self._restart_hook = None
