"""The deterministic fanout-k aggregation overlay.

The tree is a pure function of ``(collector, live addresses, fanout)``:
the collector is the root, the remaining addresses are sorted and laid
out breadth-first, so every participant derives identical parent/child
edges with no coordination and no randomness.  Churn is handled by
recomputation — each epoch (and each recovery-manager restart hook)
rebuilds the overlay from the live population, which is exactly how the
ring itself re-stabilizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import AggregationError


class AggregationTree:
    """Fanout-k tree rooted at the collector over a fixed address set."""

    def __init__(
        self, collector: str, addresses: Sequence[str], fanout: int = 4
    ) -> None:
        if fanout < 1:
            raise AggregationError(f"tree fanout must be >= 1: {fanout}")
        members = sorted(set(addresses) - {collector})
        self.collector = collector
        self.fanout = fanout
        #: Breadth-first layout: index 0 is the root; the children of
        #: index i are indices k*i+1 .. k*i+k.
        self.order: List[str] = [collector] + members
        self._index: Dict[str, int] = {
            addr: i for i, addr in enumerate(self.order)
        }

    # ------------------------------------------------------------------

    def __contains__(self, addr: str) -> bool:
        return addr in self._index

    def __len__(self) -> int:
        return len(self.order)

    def parent(self, addr: str) -> Optional[str]:
        """The upstream address (None for the collector itself)."""
        index = self._require(addr)
        if index == 0:
            return None
        return self.order[(index - 1) // self.fanout]

    def children(self, addr: str) -> List[str]:
        index = self._require(addr)
        lo = self.fanout * index + 1
        return self.order[lo: lo + self.fanout]

    def depth(self, addr: str) -> int:
        """Hops from the collector (0 for the collector)."""
        index = self._require(addr)
        depth = 0
        while index > 0:
            index = (index - 1) // self.fanout
            depth += 1
        return depth

    def max_depth(self) -> int:
        if len(self.order) == 1:
            return 0
        return self.depth(self.order[-1])

    def subtree_size(self, addr: str) -> int:
        """Members in ``addr``'s subtree, itself included."""
        total = 1
        for child in self.children(addr):
            total += self.subtree_size(child)
        return total

    def edges(self) -> List[tuple]:
        """All (child, parent) edges, in layout order (for panels)."""
        return [
            (addr, self.parent(addr)) for addr in self.order[1:]
        ]

    def _require(self, addr: str) -> int:
        index = self._index.get(addr)
        if index is None:
            raise AggregationError(
                f"{addr!r} is not a member of this aggregation tree"
            )
        return index

    def __repr__(self) -> str:
        return (
            f"<AggregationTree root={self.collector} n={len(self.order)} "
            f"fanout={self.fanout} depth={self.max_depth()}>"
        )
