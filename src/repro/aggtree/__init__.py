"""In-network monitor aggregation (docs/AGGREGATION.md).

The paper's monitors are ordinary OverLog queries, but a *global*
monitor — one whose verdict summarizes the whole population — naively
centralizes every contributing tuple at a collector node, which cannot
scale past small rings.  This package compiles such monitors into
per-node **partial aggregates** pushed up a deterministic fanout-k
**aggregation tree**, with byte-identical verdicts to the centralized
evaluation (proven by the differential battery in ``tests/aggtree``):

- :mod:`repro.aggtree.partials` — the mergeable partial-state algebra
  (count/sum/min/max and a bounded top-k sketch) with epoch guards;
- :mod:`repro.aggtree.tree` — the fanout-k overlay rooted at the
  collector, rebuilt deterministically from the live population;
- :mod:`repro.aggtree.planner` — the pass that recognizes decomposable
  aggregate rules in a global monitor program and splits them into a
  node-local partial spec plus a merge schedule (non-decomposable rules
  fall back to the centralized path with an ``agg_fallback`` reason);
- :mod:`repro.aggtree.runtime` — installation and epoch-driven
  execution in both ``centralized`` and ``tree`` modes, with the
  per-epoch attribution ledger and ``agg_*`` telemetry;
- :mod:`repro.aggtree.monitors` — the bundled global Chord monitors
  (oscillation, consistency, partition census);
- :mod:`repro.aggtree.differential` — the seed runner the differential
  battery, the CLI (``python -m repro.aggtree``), and CI smoke share.
"""

from repro.aggtree.partials import (
    CountPartial,
    MaxPartial,
    MinPartial,
    Partial,
    SumPartial,
    TopKPartial,
    make_partial,
    partial_from_wire,
)
from repro.aggtree.planner import (
    AggPlan,
    DecomposedRule,
    FallbackRule,
    plan_global,
)
from repro.aggtree.tree import AggregationTree
from repro.aggtree.runtime import (
    AGG_PARTIAL,
    AGG_RAW,
    MODE_CENTRALIZED,
    MODE_TREE,
    AggHandle,
    AggLedger,
    GlobalAggregateMonitor,
)
from repro.aggtree.monitors import (
    BUNDLED_MONITORS,
    fallback_demo_monitor,
    global_consistency_monitor,
    global_oscillation_monitor,
    global_partition_monitor,
)
from repro.aggtree.differential import (
    run_differential,
    run_one,
    run_volume_benchmark,
)

__all__ = [
    "AGG_PARTIAL",
    "AGG_RAW",
    "AggHandle",
    "AggLedger",
    "AggPlan",
    "AggregationTree",
    "BUNDLED_MONITORS",
    "CountPartial",
    "DecomposedRule",
    "FallbackRule",
    "GlobalAggregateMonitor",
    "MODE_CENTRALIZED",
    "MODE_TREE",
    "MaxPartial",
    "MinPartial",
    "Partial",
    "SumPartial",
    "TopKPartial",
    "fallback_demo_monitor",
    "global_consistency_monitor",
    "global_oscillation_monitor",
    "global_partition_monitor",
    "make_partial",
    "partial_from_wire",
    "plan_global",
    "run_differential",
    "run_one",
    "run_volume_benchmark",
]
