"""The bundled global Chord monitors the differential battery runs.

Each factory pairs one of the repo's per-node monitors (installed
unchanged, so local alarms keep working) with a global summary program
whose aggregate rules the planner decomposes onto the tree:

- **oscillation** — population-wide count of oscillation proclamations
  plus the top-k oscillating neighbors (the recycled-dead-neighbor bug
  of §3.1.3, summarized across the whole ring instead of per node);
- **consistency** — the ring-wide minimum and count of §3.1.4's
  per-probe consistency fractions: one number answering "how consistent
  is routing anywhere right now?";
- **partition** — the ring census: how many nodes answered the
  successor sample, and how many are self-looped (isolated).

``fallback_demo_monitor`` exists for the planner's *negative* space: a
global program whose rules join per-tuple detail (``multi_relation_join``)
or use a non-mergeable aggregate (``avg``), pinned by the regression
test to stay on the centralized path with an ``agg.fallback`` reason.
"""

from __future__ import annotations

from repro.aggtree.runtime import GlobalAggregateMonitor
from repro.monitors.consistency import CONSISTENCY_SOURCE
from repro.monitors.oscillation import OSCILLATION_SOURCE
from repro.monitors.partition import PARTITION_SOURCE

GLOBAL_OSCILLATION_SOURCE = """
go1 gOscillTotal@collector(count<*>) :- oscill@NAddr(A, T).
go2 gOscillTop@collector(topk<A>) :- oscill@NAddr(A, T).
goa gOscillAlarm@collector(E, C) :- gOscillTotal@collector(E, C),
    C >= oscillAlarmThresh.
"""

GLOBAL_CONSISTENCY_SOURCE = """
gc1 gConsMin@collector(min<C>) :- consistency@NAddr(P, C).
gc2 gConsCount@collector(count<*>) :- consistency@NAddr(P, C).
gca gConsAlarm@collector(E, V) :- gConsMin@collector(E, V),
    V < consAlarmThresh.
"""

GLOBAL_PARTITION_SOURCE = """
gp1 gRingCensus@collector(count<*>) :- succSample@NAddr(Me, SAddr, T).
gp2 gIsolated@collector(count<*>) :- selfLoop@NAddr(Me, T).
gpa gPartitionAlarm@collector(E, C) :- gIsolated@collector(E, C), C > 0.
"""

#: fd1 joins the probe detail table per tuple (not decomposable), fd2
#: wants ``avg`` (not mergeable); fd3 is the control that decomposes.
FALLBACK_DEMO_GLOBAL_SOURCE = """
fd1 gDetailCount@collector(count<*>) :- probeResp@NAddr(P, C),
    probeDetail@NAddr(P, D).
fd2 gRespAvg@collector(avg<C>) :- probeResp@NAddr(P, C).
fd3 gRespTotal@collector(count<*>) :- probeResp@NAddr(P, C).
materialize(probeDetail, 120, 1000, keys(2)).
"""


def global_oscillation_monitor(
    epoch_len: float = 20.0,
    fanout: int = 4,
    alarm_threshold: int = 1,
    check_period: float = 60.0,
    **kwargs,
) -> GlobalAggregateMonitor:
    """Population-wide oscillation totals + top-k oscillators."""
    return GlobalAggregateMonitor(
        name="g-oscillation",
        global_source=GLOBAL_OSCILLATION_SOURCE,
        local_source=OSCILLATION_SOURCE,
        alarm_events=("gOscillAlarm",),
        bindings={
            "tOscCheck": check_period,
            "repeatThresh": 3,
            "chaoticThresh": 3,
            "oscillAlarmThresh": alarm_threshold,
        },
        epoch_len=epoch_len,
        fanout=fanout,
        **kwargs,
    )


def global_consistency_monitor(
    epoch_len: float = 20.0,
    fanout: int = 4,
    alarm_threshold: float = 0.5,
    probe_period: float = 40.0,
    tally_period: float = 20.0,
    **kwargs,
) -> GlobalAggregateMonitor:
    """Ring-wide minimum + count of routing-consistency fractions."""
    return GlobalAggregateMonitor(
        name="g-consistency",
        global_source=GLOBAL_CONSISTENCY_SOURCE,
        local_source=CONSISTENCY_SOURCE,
        alarm_events=("gConsAlarm",),
        bindings={
            "tProbe": probe_period,
            "tTally": tally_period,
            "alarmThresh": alarm_threshold,
            "consAlarmThresh": alarm_threshold,
        },
        epoch_len=epoch_len,
        fanout=fanout,
        **kwargs,
    )


def global_partition_monitor(
    epoch_len: float = 20.0,
    fanout: int = 4,
    sample_period: float = 15.0,
    **kwargs,
) -> GlobalAggregateMonitor:
    """Ring census + isolated-node count, alarm on any isolation."""
    return GlobalAggregateMonitor(
        name="g-partition",
        global_source=GLOBAL_PARTITION_SOURCE,
        local_source=PARTITION_SOURCE,
        alarm_events=("gPartitionAlarm",),
        bindings={"tSample": sample_period},
        epoch_len=epoch_len,
        fanout=fanout,
        **kwargs,
    )


def fallback_demo_monitor(
    epoch_len: float = 20.0, fanout: int = 4, **kwargs
) -> GlobalAggregateMonitor:
    """The planner's negative space (see module docstring)."""
    return GlobalAggregateMonitor(
        name="g-fallback-demo",
        global_source=FALLBACK_DEMO_GLOBAL_SOURCE,
        alarm_events=(),
        epoch_len=epoch_len,
        fanout=fanout,
        **kwargs,
    )


#: The battery the differential tests and the CLI sweep, by key.
BUNDLED_MONITORS = {
    "oscillation": global_oscillation_monitor,
    "consistency": global_consistency_monitor,
    "partition": global_partition_monitor,
}
