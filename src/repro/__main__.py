"""Command-line demo runner: ``python -m repro <command>``.

Commands:

- ``quickstart``     — the Figure-1 path-vector rule plus a provenance walk;
- ``ring``           — stabilize a Chord ring, render it, run the
                       regression suite, print the dashboard;
- ``oscillation``    — the recycled-dead-neighbor pathology on buggy Chord;
- ``gossip``         — epidemic broadcast with delivery provenance;
- ``snapshot``       — Chandy-Lamport snapshots plus snapshot-scoped probes.

Every command is deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys


def cmd_quickstart(args) -> int:
    from repro import System
    from repro.analysis import trace_back
    from repro.report import render_chain

    system = System(seed=args.seed)
    for name in ("a", "b", "c"):
        system.add_node(name, tracing=True)
    system.install_source(
        """
        materialize(link, 100, 20, keys(1,2)).
        materialize(path, 100, 100, keys(1,2,3)).
        p0 path@A(B, [A, B], W) :- link@A(B, W).
        p1 path@B(C, [B, A] + P, W + Y) :- link@A(B, W), path@A(C, P, Y).
        """,
        name="allroutes",
    )
    system.node("a").inject("link", ("a", "b", 1))
    system.node("b").inject("link", ("b", "c", 2))
    system.run_for(5.0)
    for name in ("a", "b", "c"):
        for tup in sorted(system.node(name).query("path"), key=repr):
            print(f"  {tup}")
    target = system.node("c").query("path")[0]
    nodes = {a: system.node(a) for a in ("a", "b", "c")}
    print()
    print(render_chain(trace_back(nodes, "c", target)))
    return 0


def cmd_ring(args) -> int:
    from repro.chord import ChordNetwork
    from repro.monitors import (
        ConsistencyProbeMonitor,
        PassiveRingMonitor,
        RegressionSuite,
        RingProbeMonitor,
    )
    from repro.report import Dashboard, render_ring

    net = ChordNetwork(num_nodes=args.nodes, seed=args.seed)
    net.start()
    print(f"stabilizing {args.nodes} nodes...")
    if not net.wait_stable(max_time=600.0):
        print("ring failed to stabilize:", net.ring_errors())
        return 1
    net.run_for(30.0)
    print(render_ring(net))

    nodes = [net.node(a) for a in net.live_addresses()]
    suite = (
        RegressionSuite("ring-invariants")
        .expect_quiet(RingProbeMonitor(probe_period=5.0))
        .expect_quiet(PassiveRingMonitor())
        .expect_active(
            ConsistencyProbeMonitor(probe_period=15.0, tally_period=8.0),
            "consistency",
        )
        .install(nodes)
    )
    dashboard = Dashboard(net.system, title=f"chord x{args.nodes}")
    for expectation in suite._expectations:
        dashboard.add_monitor(expectation.handle)
    net.run_for(60.0)
    print()
    print(suite.evaluate(now=net.system.now))
    print()
    print(dashboard.render())
    return 0


def cmd_oscillation(args) -> int:
    from repro.faults import OscillationScenario

    scenario = OscillationScenario(
        num_nodes=args.nodes, seed=args.seed, check_period=15.0,
        chaotic_threshold=2,
    )
    report = scenario.run(stabilize_time=120.0, observe_time=150.0)
    print(f"victim:              {report.victim}")
    print(f"oscillations:        {report.oscillations}")
    print(f"repeat oscillators:  {report.repeat_oscillators}")
    print(f"chaotic verdicts by: {report.chaotic}")
    return 0


def cmd_gossip(args) -> int:
    from repro.analysis import trace_back
    from repro.gossip import GossipNetwork
    from repro.report import render_chain

    net = GossipNetwork(num_nodes=args.nodes, seed=args.seed, tracing=True)
    net.start()
    net.run_for(30.0)
    print(f"fully meshed: {net.fully_meshed()}")
    net.publish(net.addresses[0], 1, "hello")
    net.run_for(5.0)
    print(f"coverage: {len(net.coverage(1))}/{len(net.addresses)}")
    target = net.addresses[-1]
    (seen,) = [t for t in net.node(target).query("seenMsg")]
    nodes = {a: net.node(a) for a in net.addresses}
    print(render_chain(trace_back(nodes, target, seen)))
    return 0


def cmd_snapshot(args) -> int:
    from repro.chord import ChordNetwork
    from repro.monitors import SnapshotConsistencyProbes, SnapshotMonitor

    net = ChordNetwork(num_nodes=args.nodes, seed=args.seed)
    net.start()
    if not net.wait_stable(max_time=600.0):
        print("ring failed to stabilize")
        return 1
    net.run_for(60.0)
    nodes = [net.node(a) for a in net.live_addresses()]
    monitor = SnapshotMonitor(snap_period=20.0)
    handle = monitor.install_with_initiator(nodes, nodes[0])
    probes = SnapshotConsistencyProbes(
        probe_period=20.0, tally_period=10.0
    ).install(nodes)
    net.run_for(90.0)
    sid = nodes[0].query("currentSnap")[0].values[1]
    complete = sum(
        1 for n in nodes if SnapshotMonitor.snapshot_complete(n, sid)
    )
    print(f"snapshots taken: {sid}; snapshot {sid} complete on "
          f"{complete}/{len(nodes)} nodes")
    values = [t.values[2] for t in probes.alarms["consistency"]]
    print(f"snapshot-scoped consistency verdicts: {values[-6:]}")

    # Global property detection on the snapped cut (§3.4).
    from repro.analysis import (
        gather_snapshot,
        mutual_edges,
        ring_properties,
        single_points_of_failure,
        snapshot_statistics,
    )

    check_sid = sid
    while check_sid > 0 and not all(
        SnapshotMonitor.snapshot_complete(n, check_sid) for n in nodes
    ):
        check_sid -= 1
    graph = gather_snapshot(nodes, check_sid)
    report = ring_properties(graph)
    stats = snapshot_statistics(graph)
    print(f"\nglobal properties of snapshot {check_sid}:")
    print(f"  single ring over all participants: {report.is_single_ring}")
    print(f"  mutual-edge violations: {len(mutual_edges(graph))}")
    print(f"  single points of failure: "
          f"{sorted(single_points_of_failure(graph)) or 'none'}")
    print(f"  mean routing out-degree: {stats.mean_out_degree:.1f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Demos for the EuroSys 2006 monitoring/forensics "
        "reproduction.",
    )
    parser.add_argument("--seed", type=int, default=1)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart")
    for name in ("ring", "oscillation", "gossip", "snapshot"):
        p = sub.add_parser(name)
        p.add_argument("--nodes", type=int, default=8)

    args = parser.parse_args(argv)
    handler = {
        "quickstart": cmd_quickstart,
        "ring": cmd_ring,
        "oscillation": cmd_oscillation,
        "gossip": cmd_gossip,
        "snapshot": cmd_snapshot,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
