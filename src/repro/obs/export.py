"""Exporters: Chrome trace-event JSON, structured JSONL, Prometheus text.

Three artifact formats over one :class:`repro.obs.telemetry.Telemetry`:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``) that loads directly
  in Perfetto / ``chrome://tracing``.  Spans become complete (``"X"``)
  events, instant events become ``"i"`` events, and each node gets a
  named thread row via metadata events.
- :func:`jsonl_lines` / :func:`write_jsonl` — one JSON object per line:
  a ``meta`` header, every flight-recorder record, then the full
  metrics snapshot (scalar metrics and histogram lines with their raw
  log-linear buckets).  This is the self-contained artifact
  ``python -m repro.obs summarize`` consumes.
- :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  exposition text format (counters/gauges verbatim, histograms as
  cumulative ``_bucket{le=...}`` series plus ``_count``/``_sum``).

Everything is derived from the virtual clock and seeded randomness and
serialized with sorted keys and fixed separators, so a given seed
produces **byte-identical** artifacts on every run — the property the
export regression tests pin.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import HistogramData, bucket_upper
from repro.obs.telemetry import Telemetry

_JSON_KW = dict(sort_keys=True, separators=(",", ":"))

#: tid reserved for records not attributable to a node (network fabric).
FABRIC_TID = 0


def _us(t: float) -> float:
    """Seconds → microseconds, rounded so formatting is stable."""
    return round(t * 1e6, 3)


def _tid_map(records: List[dict]) -> Dict[str, int]:
    """Stable node → thread-id assignment (sorted node labels)."""
    nodes = sorted(
        {
            rec["attrs"]["node"]
            for rec in records
            if isinstance(rec.get("attrs"), dict) and "node" in rec["attrs"]
        }
    )
    return {node: index + 1 for index, node in enumerate(nodes)}


def chrome_trace(telemetry: Telemetry, meta: Optional[dict] = None) -> dict:
    """Build the Chrome trace-event object from the flight recorder."""
    records = telemetry.recorder.snapshot()
    tids = _tid_map(records)
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": FABRIC_TID,
            "args": {"name": "fabric"},
        },
    ]
    for node, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": node},
            }
        )
    for rec in records:
        attrs = rec.get("attrs", {})
        tid = tids.get(attrs.get("node"), FABRIC_TID)
        if rec["type"] == "span":
            events.append(
                {
                    "ph": "X",
                    "name": rec["name"],
                    "cat": "span",
                    "ts": _us(rec["t0"]),
                    "dur": _us(rec["t1"] - rec["t0"]),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(
                        attrs, span_id=rec["id"], parent=rec["parent"]
                    ),
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": rec["name"],
                    "cat": "event",
                    "ts": _us(rec["t"]),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(attrs),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_chrome_trace(
    telemetry: Telemetry, path: str, meta: Optional[dict] = None
) -> str:
    text = json.dumps(chrome_trace(telemetry, meta), **_JSON_KW)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


# ----------------------------------------------------------------------
# JSONL


def jsonl_lines(telemetry: Telemetry, meta: Optional[dict] = None) -> List[str]:
    """The JSONL artifact as a list of serialized lines."""
    lines = [json.dumps({"type": "meta", **(meta or {})}, **_JSON_KW)]
    for rec in telemetry.recorder.snapshot():
        lines.append(json.dumps(rec, **_JSON_KW))
    for name, metric, snapshot in telemetry.metrics.collect():
        labelnames = metric.labelnames
        for key in sorted(snapshot, key=lambda k: tuple(map(str, k))):
            value = snapshot[key]
            labels = {n: v for n, v in zip(labelnames, key)}
            if isinstance(value, HistogramData):
                lines.append(
                    json.dumps(
                        {
                            "type": "hist",
                            "name": name,
                            "labels": labels,
                            **value.as_dict(),
                        },
                        **_JSON_KW,
                    )
                )
            else:
                lines.append(
                    json.dumps(
                        {
                            "type": "metric",
                            "name": name,
                            "kind": metric.kind,
                            "labels": labels,
                            "value": value,
                        },
                        **_JSON_KW,
                    )
                )
    return lines


def write_jsonl(
    telemetry: Telemetry, path: str, meta: Optional[dict] = None
) -> str:
    with open(path, "w") as handle:
        for line in jsonl_lines(telemetry, meta):
            handle.write(line + "\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(value)


def _labels_text(labelnames: Tuple[str, ...], key: Tuple) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(labelnames, key)
    )
    return "{" + inner + "}"


def prometheus_text(telemetry: Telemetry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    out: List[str] = []
    for name, metric, snapshot in telemetry.metrics.collect():
        if metric.help:
            out.append(f"# HELP {name} {metric.help}")
        kind = metric.kind if metric.kind in ("counter", "gauge", "histogram") else "untyped"
        out.append(f"# TYPE {name} {kind}")
        for key in sorted(snapshot, key=lambda k: tuple(map(str, k))):
            value = snapshot[key]
            if isinstance(value, HistogramData):
                cumulative = 0
                for index in sorted(value.buckets):
                    cumulative += value.buckets[index]
                    upper = bucket_upper(index, value.subbuckets)
                    le_labels = dict(zip(metric.labelnames, key))
                    inner = ",".join(
                        [f'{n}="{_escape_label(v)}"' for n, v in le_labels.items()]
                        + [f'le="{upper!r}"']
                    )
                    out.append(f"{name}_bucket{{{inner}}} {cumulative}")
                labels = _labels_text(metric.labelnames, key)
                out.append(f"{name}_count{labels} {value.count}")
                out.append(f"{name}_sum{labels} {_fmt_value(value.sum)}")
            else:
                labels = _labels_text(metric.labelnames, key)
                out.append(f"{name}{labels} {_fmt_value(value)}")
    return "\n".join(out) + "\n"


def write_prometheus(telemetry: Telemetry, path: str) -> str:
    with open(path, "w") as handle:
        handle.write(prometheus_text(telemetry))
    return path
