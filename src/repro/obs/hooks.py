"""Strand-level telemetry through the planner's ``TraceHooks`` seam.

The execution tracer already observes every strand firing through
:class:`repro.runtime.strand.TraceHooks`; the telemetry plane rides the
same seam instead of adding a second set of taps.  When both are active
the node's hooks are a
:class:`repro.runtime.strand.CompositeTraceHooks` fanning out to the
tracer and to one :class:`ObsTraceHooks` per node.
"""

from __future__ import annotations

from repro.obs.telemetry import Telemetry
from repro.runtime.strand import RuleStrand, TraceHooks
from repro.runtime.tuples import Tuple


class ObsTraceHooks(TraceHooks):
    """Counts strand inputs / preconditions / outputs into the registry."""

    def __init__(self, telemetry: Telemetry, node_label: str) -> None:
        self._node = node_label
        reg = telemetry.metrics
        self._inputs = reg.counter(
            "strand_inputs_total",
            "trigger tuples observed by rule strands",
            ("node", "rule"),
        )
        self._preconditions = reg.counter(
            "strand_preconditions_total",
            "precondition tuples observed at join stages",
            ("node", "rule"),
        )
        self._outputs = reg.counter(
            "strand_outputs_total",
            "head tuples produced by rule strands",
            ("node", "rule"),
        )

    def input_observed(self, strand: RuleStrand, tup: Tuple, when: float) -> None:
        self._inputs.inc(1, node=self._node, rule=strand.rule_id)

    def precondition_observed(
        self, strand: RuleStrand, stage: int, tup: Tuple, when: float
    ) -> None:
        self._preconditions.inc(1, node=self._node, rule=strand.rule_id)

    def output_observed(self, strand: RuleStrand, tup: Tuple, when: float) -> None:
        self._outputs.inc(1, node=self._node, rule=strand.rule_id)
