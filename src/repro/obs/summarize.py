"""``python -m repro.obs summarize <artifact>`` — offline artifact analysis.

Loads an exported telemetry artifact (the JSONL event log by default;
the Chrome trace JSON is also accepted) and prints what an operator or
a CI log reader wants first:

- **top-k slow rules** — per-rule firing counts and duration
  statistics from the ``rule_duration_seconds`` histogram (or from
  ``rule_exec`` spans when reading a Chrome trace);
- **per-link latency percentiles** — p50/p90/p99/max of
  ``net_message_latency_seconds`` per directed link;
- **drop / retransmit attribution** — the per-reason drop breakdown,
  transport retry counters, and per-link retransmit counts recovered
  from the flight-recorder events;
- **overload / shed attribution** — per-class × per-reason load-shed
  totals, deferred (BUSY-nacked) offers, and the relations that were
  shed or deferred in the recorded window, so an overloaded run can be
  traced back to the offending rule or program (see docs/OVERLOAD.md);
- **in-network aggregation** — per-monitor epoch/flush/late totals,
  collector-inbound volume per evaluation mode, and the planner's
  fallback reasons from the ``agg_*`` metric family
  (see docs/AGGREGATION.md).

This is the external-analyzer half of the telemetry plane: it never
imports the simulator, so any artifact from any run (CI upload, failing
campaign seed) can be inspected after the fact.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import HistogramData


class Artifact:
    """Parsed telemetry artifact: records plus metric snapshots."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self.spans: List[dict] = []
        self.events: List[dict] = []
        self.metrics: Dict[str, Dict[Tuple, float]] = {}
        self.hists: Dict[str, Dict[Tuple, HistogramData]] = {}

    # ------------------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Artifact":
        with open(path) as handle:
            text = handle.read()
        stripped = text.lstrip()
        if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
            return cls._from_chrome(json.loads(text))
        return cls._from_jsonl(text)

    @classmethod
    def _from_jsonl(cls, text: str) -> "Artifact":
        art = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("type")
            if kind == "meta":
                art.meta = {k: v for k, v in rec.items() if k != "type"}
            elif kind == "span":
                art.spans.append(rec)
            elif kind == "event":
                art.events.append(rec)
            elif kind == "metric":
                key = tuple(rec.get("labels", {}).values())
                art.metrics.setdefault(rec["name"], {})[key] = rec["value"]
            elif kind == "hist":
                key = tuple(rec.get("labels", {}).values())
                art.hists.setdefault(rec["name"], {})[key] = (
                    HistogramData.from_dict(rec)
                )
        return art

    @classmethod
    def _from_chrome(cls, payload: dict) -> "Artifact":
        art = cls()
        art.meta = dict(payload.get("otherData", {}))
        for event in payload.get("traceEvents", []):
            ph = event.get("ph")
            if ph == "X":
                args = event.get("args", {})
                art.spans.append(
                    {
                        "name": event.get("name"),
                        "t0": event.get("ts", 0.0) / 1e6,
                        "t1": (event.get("ts", 0.0) + event.get("dur", 0.0))
                        / 1e6,
                        "attrs": args,
                    }
                )
            elif ph == "i":
                art.events.append(
                    {
                        "name": event.get("name"),
                        "t": event.get("ts", 0.0) / 1e6,
                        "attrs": event.get("args", {}),
                    }
                )
        return art

    # ------------------------------------------------------------------
    # Derived views

    def rule_stats(self) -> List[Tuple[str, dict]]:
        """Per-rule duration statistics, slowest total first."""
        merged: Dict[str, HistogramData] = {}
        for key, data in self.hists.get("rule_duration_seconds", {}).items():
            rule = str(key[1]) if len(key) > 1 else str(key)
            bucket = merged.get(rule)
            if bucket is None:
                merged[rule] = HistogramData.from_dict(data.as_dict())
            else:
                bucket.merge(data)
        if not merged:  # fall back to spans (Chrome trace input)
            for span in self.spans:
                if span.get("name") != "rule_exec":
                    continue
                rule = str(span.get("attrs", {}).get("rule", "?"))
                merged.setdefault(rule, HistogramData()).observe(
                    span["t1"] - span["t0"]
                )
        rows = [
            (
                rule,
                {
                    "count": data.count,
                    "total": data.sum,
                    "mean": data.mean(),
                    "p95": data.percentile(95),
                    "max": data.max if data.count else 0.0,
                },
            )
            for rule, data in merged.items()
        ]
        rows.sort(key=lambda row: (-row[1]["total"], row[0]))
        return rows

    def link_latency(self) -> List[Tuple[str, dict]]:
        """Per-link latency percentiles, busiest link first."""
        rows = []
        for key, data in self.hists.get(
            "net_message_latency_seconds", {}
        ).items():
            link = str(key[0]) if key else "?"
            rows.append(
                (
                    link,
                    {
                        "count": data.count,
                        "p50": data.percentile(50),
                        "p90": data.percentile(90),
                        "p99": data.percentile(99),
                        "max": data.max if data.count else 0.0,
                    },
                )
            )
        rows.sort(key=lambda row: (-row[1]["count"], row[0]))
        return rows

    def drop_attribution(self) -> Dict[str, float]:
        return {
            str(key[0]): value
            for key, value in self.metrics.get("net_dropped_total", {}).items()
        }

    def transport_counters(self) -> Dict[str, float]:
        return {
            str(key[0]): value
            for key, value in self.metrics.get(
                "net_counters_total", {}
            ).items()
        }

    def event_counts(self, name: str, attr: str) -> Dict[str, int]:
        """Count recorder events of ``name`` grouped by one attribute."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.get("name") != name:
                continue
            value = str(event.get("attrs", {}).get(attr, "?"))
            counts[value] = counts.get(value, 0) + 1
        return counts

    def overload_sheds(self) -> Dict[Tuple[str, str], float]:
        """Shed totals keyed by ``(class, reason)``, summed over nodes.

        Reads the ``overload_shed_total`` counter.  Label keys arrive
        alphabetized by the JSONL writer (cls, node, reason); returns
        empty when the run had no overload controller.
        """
        merged: Dict[Tuple[str, str], float] = {}
        for key, value in self.metrics.get("overload_shed_total", {}).items():
            cls = str(key[0]) if key else "?"
            reason = str(key[2]) if len(key) > 2 else "?"
            merged[(cls, reason)] = merged.get((cls, reason), 0.0) + value
        return merged

    def overload_deferred(self) -> Dict[str, float]:
        """Deferred totals per class (``overload_deferred_total``)."""
        merged: Dict[str, float] = {}
        for key, value in self.metrics.get(
            "overload_deferred_total", {}
        ).items():
            cls = str(key[0]) if key else "?"
            merged[cls] = merged.get(cls, 0.0) + value
        return merged

    def watch_evictions(self) -> Dict[str, float]:
        """Watch-ring evictions per relation (``watch_evicted_total``)."""
        merged: Dict[str, float] = {}
        for key, value in self.metrics.get("watch_evicted_total", {}).items():
            name = str(key[0]) if key else "?"
            merged[name] = merged.get(name, 0.0) + value
        return merged

    def agg_activity(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per ``(monitor, mode)``: finalized epochs + collector inbound.

        Reads ``agg_epochs_total`` and ``agg_collector_inbound_total``
        (label keys arrive alphabetized: mode, monitor).
        """
        merged: Dict[Tuple[str, str], Dict[str, float]] = {}
        for metric, field in (
            ("agg_epochs_total", "epochs"),
            ("agg_collector_inbound_total", "inbound"),
        ):
            for key, value in self.metrics.get(metric, {}).items():
                mode = str(key[0]) if key else "?"
                monitor = str(key[1]) if len(key) > 1 else "?"
                row = merged.setdefault(
                    (monitor, mode), {"epochs": 0.0, "inbound": 0.0}
                )
                row[field] += value
        return merged

    def agg_traffic(self) -> Dict[str, Dict[str, float]]:
        """Per monitor: partials/raws shipped and late arrivals."""
        merged: Dict[str, Dict[str, float]] = {}
        for metric, field in (
            ("agg_partials_sent_total", "partials"),
            ("agg_raws_sent_total", "raws"),
            ("agg_late_total", "late"),
        ):
            for key, value in self.metrics.get(metric, {}).items():
                monitor = str(key[0]) if key else "?"
                row = merged.setdefault(
                    monitor, {"partials": 0.0, "raws": 0.0, "late": 0.0}
                )
                row[field] += value
        return merged

    def agg_fallbacks(self) -> Dict[Tuple[str, str], float]:
        """Planner fallbacks as ``(monitor, reason) -> rule count``."""
        merged: Dict[Tuple[str, str], float] = {}
        for key, value in self.metrics.get("agg_fallback_total", {}).items():
            monitor = str(key[0]) if key else "?"
            reason = str(key[1]) if len(key) > 1 else "?"
            merged[(monitor, reason)] = merged.get((monitor, reason), 0.0) + value
        return merged


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def summarize(path: str, top: int = 10) -> str:
    """Render the artifact summary as deterministic text."""
    art = Artifact.load(path)
    lines: List[str] = [f"== telemetry summary: {path} =="]
    if art.meta:
        meta = ", ".join(f"{k}={art.meta[k]}" for k in sorted(art.meta))
        lines.append(f"meta: {meta}")
    lines.append(
        f"records: {len(art.spans)} spans, {len(art.events)} events"
    )

    lines.append("")
    lines.append(f"top {top} slow rules (by total duration):")
    rules = art.rule_stats()
    if not rules:
        lines.append("  (no rule timing data)")
    for rule, stats in rules[:top]:
        lines.append(
            f"  {rule:<16} fires={stats['count']:>7}  "
            f"total={_ms(stats['total']):>12}  mean={_ms(stats['mean']):>10}  "
            f"p95={_ms(stats['p95']):>10}  max={_ms(stats['max']):>10}"
        )

    lines.append("")
    lines.append("per-link latency percentiles:")
    links = art.link_latency()
    if not links:
        lines.append("  (no latency data)")
    for link, stats in links[:top]:
        lines.append(
            f"  {link:<24} n={stats['count']:>7}  p50={_ms(stats['p50'])}  "
            f"p90={_ms(stats['p90'])}  p99={_ms(stats['p99'])}  "
            f"max={_ms(stats['max'])}"
        )

    lines.append("")
    lines.append("drop / retransmit attribution:")
    drops = art.drop_attribution()
    counters = art.transport_counters()
    total_drops = int(sum(drops.values()))
    lines.append(f"  dropped: {total_drops}")
    for reason in sorted(drops):
        lines.append(f"    {reason:<20} {int(drops[reason])}")
    for counter in (
        "messages_retransmitted",
        "send_failures",
        "duplicates_suppressed",
        "gap_skips",
    ):
        if counter in counters:
            lines.append(f"  {counter:<22} {int(counters[counter])}")
    retrans_by_link = art.event_counts("net.retransmit", "link")
    if retrans_by_link:
        lines.append("  retransmits by link (recorded window):")
        for link in sorted(retrans_by_link):
            lines.append(f"    {link:<24} {retrans_by_link[link]}")
    drop_by_link = art.event_counts("net.drop", "link")
    if drop_by_link:
        lines.append("  drops by link (recorded window):")
        for link in sorted(drop_by_link):
            lines.append(f"    {link:<24} {drop_by_link[link]}")

    sheds = {k: v for k, v in art.overload_sheds().items() if v}
    deferred = {k: v for k, v in art.overload_deferred().items() if v}
    shed_by_relation = art.event_counts("overload.shed", "relation")
    defer_by_relation = art.event_counts("overload.defer", "relation")
    evictions = art.watch_evictions()
    if sheds or deferred or shed_by_relation or defer_by_relation or evictions:
        lines.append("")
        lines.append("overload / shed attribution:")
        lines.append(f"  shed: {int(sum(sheds.values()))}")
        for cls, reason in sorted(sheds):
            lines.append(
                f"    {cls + '/' + reason:<28} {int(sheds[(cls, reason)])}"
            )
        if deferred:
            lines.append(f"  deferred: {int(sum(deferred.values()))}")
            for cls in sorted(deferred):
                lines.append(f"    {cls:<28} {int(deferred[cls])}")
        if shed_by_relation:
            lines.append("  sheds by relation (recorded window):")
            for name in sorted(shed_by_relation):
                lines.append(f"    {name:<24} {shed_by_relation[name]}")
        if defer_by_relation:
            lines.append("  defers by relation (recorded window):")
            for name in sorted(defer_by_relation):
                lines.append(f"    {name:<24} {defer_by_relation[name]}")
        if evictions:
            lines.append("  watch-ring evictions:")
            for name in sorted(evictions):
                lines.append(f"    {name:<24} {int(evictions[name])}")

    activity = art.agg_activity()
    traffic = art.agg_traffic()
    fallbacks = {k: v for k, v in art.agg_fallbacks().items() if v}
    flushes = art.event_counts("agg.flush", "monitor")
    late_events = art.event_counts("agg.late", "monitor")
    if activity or traffic or fallbacks:
        lines.append("")
        lines.append("in-network aggregation:")
        for monitor, mode in sorted(activity):
            row = activity[(monitor, mode)]
            lines.append(
                f"  {monitor + ' [' + mode + ']':<28} "
                f"epochs={int(row['epochs']):>4}  "
                f"collector-inbound={int(row['inbound'])}"
            )
        for monitor in sorted(traffic):
            row = traffic[monitor]
            lines.append(
                f"  {monitor:<28} partials={int(row['partials'])}  "
                f"raws={int(row['raws'])}  late={int(row['late'])}"
            )
        if fallbacks:
            lines.append("  planner fallbacks (centralized path):")
            for monitor, reason in sorted(fallbacks):
                lines.append(
                    f"    {monitor + '/' + reason:<36} "
                    f"{int(fallbacks[(monitor, reason)])}"
                )
        if flushes:
            lines.append("  flushes by monitor (recorded window):")
            for name in sorted(flushes):
                lines.append(f"    {name:<24} {flushes[name]}")
        if late_events:
            lines.append("  late arrivals by monitor (recorded window):")
            for name in sorted(late_events):
                lines.append(f"    {name:<24} {late_events[name]}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Offline analysis of exported telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="summarize a .jsonl or Chrome-trace artifact"
    )
    p_sum.add_argument("artifact", help="path to the exported artifact")
    p_sum.add_argument(
        "--top", type=int, default=10, help="rows per section (default 10)"
    )
    args = parser.parse_args(argv)

    if args.command == "summarize":
        try:
            print(summarize(args.artifact, top=args.top))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read artifact {args.artifact!r}: {exc}")
            return 2
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
