"""The flight recorder: a bounded, deterministic ring of telemetry records.

Records are plain JSON-ready dicts (spans and instant events) appended
in simulation order, so with the same seed the buffer contents — and
everything exported from them — are byte-for-byte identical across
runs.  The ring is bounded: when full, the oldest records fall off and
``dropped`` counts them, so a long run keeps the *recent* window an
operator actually wants after an incident.

Optional sampling (``sample_rate < 1``) draws its keep/skip decisions
from a caller-supplied RNG — in a :class:`repro.core.system.System`
that is a named :class:`repro.sim.rand.SimRandom` stream, so sampling
is seeded-deterministic too and does not perturb any other stream.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError

DEFAULT_CAPACITY = 65536


class FlightRecorder:
    """Bounded ring buffer of span/event records."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample_rate: float = 1.0,
        rng: Optional[object] = None,
    ) -> None:
        if capacity <= 0:
            raise ReproError(f"recorder capacity must be positive: {capacity}")
        if not 0.0 < sample_rate <= 1.0:
            raise ReproError(
                f"sample rate must be in (0, 1]: {sample_rate}"
            )
        if sample_rate < 1.0 and rng is None:
            raise ReproError("sampling requires a seeded rng")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._rng = rng
        self._buffer: deque = deque(maxlen=capacity)
        #: Records accepted into the ring (including since-evicted ones).
        self.recorded = 0
        #: Records skipped by the sampler (never entered the ring).
        self.sampled_out = 0

    def record(self, record: Dict) -> None:
        """Append one record (possibly evicting the oldest)."""
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.sampled_out += 1
            return
        self.recorded += 1
        self._buffer.append(record)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound (recorded - still held)."""
        return self.recorded - len(self._buffer)

    def snapshot(self) -> List[Dict]:
        """The ring contents, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.recorded = 0
        self.sampled_out = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self._buffer)}/{self.capacity} "
            f"dropped={self.dropped}>"
        )
