"""``python -m repro.obs`` — telemetry artifact analysis CLI."""

from repro.obs.summarize import main

raise SystemExit(main())
