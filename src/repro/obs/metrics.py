"""Labeled counters, gauges, and log-linear histograms.

The registry is the uniform *read* surface of the telemetry plane:
every number an exporter, the :class:`repro.core.metrics.Meter`, or the
:class:`repro.report.dashboard.Dashboard` wants comes out of here, in
one of two ways:

- **owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) hold their own state and are fed directly by
  instrumentation points (e.g. the message-latency histogram);
- **callbacks** adapt counters that already exist elsewhere
  (``NetworkStats``, the per-node :class:`~repro.runtime.work.WorkModel`)
  into the registry *lazily*: the callable runs at snapshot time, so the
  hot paths keep their plain attribute increments and the registry read
  costs nothing until somebody looks.

Histograms are **log-linear**: each power-of-two octave is split into a
fixed number of linear sub-buckets (default 8, ≲ 6 % relative error on
quantiles), the scheme used by HDR-style recorders.  Bucket indices are
plain integers computed with :func:`math.frexp`, so recording is a dict
increment and the layout is identical across platforms — a requirement
for byte-stable exports.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

LabelKey = Tuple
SnapshotDict = Dict[LabelKey, object]

#: Linear sub-buckets per power-of-two octave.
DEFAULT_SUBBUCKETS = 8

#: Bucket index for values <= 0 (sorts before every real bucket).
ZERO_BUCKET = -(1 << 30)


def bucket_index(value: float, subbuckets: int = DEFAULT_SUBBUCKETS) -> int:
    """Log-linear bucket index of ``value`` (``ZERO_BUCKET`` for <= 0)."""
    if value <= 0.0:
        return ZERO_BUCKET
    mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    sub = int((mantissa - 0.5) * 2.0 * subbuckets)
    if sub >= subbuckets:  # guard the m -> 1.0 rounding edge
        sub = subbuckets - 1
    return exponent * subbuckets + sub


def bucket_upper(index: int, subbuckets: int = DEFAULT_SUBBUCKETS) -> float:
    """Inclusive upper bound of the bucket with the given index."""
    if index == ZERO_BUCKET:
        return 0.0
    exponent, sub = divmod(index, subbuckets)
    return (2.0 ** (exponent - 1)) * (1.0 + (sub + 1) / subbuckets)


class HistogramData:
    """Recorded distribution for one label combination."""

    __slots__ = ("count", "sum", "min", "max", "buckets", "subbuckets")

    def __init__(self, subbuckets: int = DEFAULT_SUBBUCKETS) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}
        self.subbuckets = subbuckets

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value, self.subbuckets)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "HistogramData") -> "HistogramData":
        """Fold ``other`` into this distribution (same bucket layout)."""
        if other.subbuckets != self.subbuckets:
            raise ReproError("cannot merge histograms with different layouts")
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]) from the buckets.

        Returns the upper bound of the bucket where the cumulative count
        crosses the target rank, clamped to the exact observed max so
        p100 is never an overestimate.
        """
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return min(bucket_upper(index, self.subbuckets), self.max)
        return self.max

    def as_dict(self) -> dict:
        """JSON-ready form (bucket keys stringified, stable order)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "subbuckets": self.subbuckets,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HistogramData":
        data = cls(subbuckets=int(payload.get("subbuckets", DEFAULT_SUBBUCKETS)))
        data.count = int(payload.get("count", 0))
        data.sum = float(payload.get("sum", 0.0))
        if data.count:
            data.min = float(payload.get("min", 0.0))
            data.max = float(payload.get("max", 0.0))
        data.buckets = {
            int(index): int(count)
            for index, count in payload.get("buckets", {}).items()
        }
        return data


class Instrument:
    """Common shape: a named, help-texted, label-declared metric."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        try:
            return tuple(labels[name] for name in self.labelnames)
        except KeyError as exc:
            raise ReproError(
                f"metric {self.name!r} requires labels {self.labelnames}, "
                f"got {sorted(labels)}"
            ) from exc

    def snapshot(self) -> SnapshotDict:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, *key) -> float:
        return self._values.get(tuple(key), 0)

    def snapshot(self) -> SnapshotDict:
        return dict(self._values)


class Gauge(Instrument):
    """A labeled instantaneous value."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = value

    def value(self, *key) -> float:
        return self._values.get(tuple(key), 0)

    def snapshot(self) -> SnapshotDict:
        return dict(self._values)


class Histogram(Instrument):
    """A labeled log-linear distribution recorder."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labelnames=(),
        subbuckets: int = DEFAULT_SUBBUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.subbuckets = subbuckets
        self._series: Dict[LabelKey, HistogramData] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        data = self._series.get(key)
        if data is None:
            data = self._series[key] = HistogramData(self.subbuckets)
        data.observe(value)

    def data(self, *key) -> Optional[HistogramData]:
        return self._series.get(tuple(key))

    def merged(self) -> HistogramData:
        """All label combinations folded into one distribution."""
        merged = HistogramData(self.subbuckets)
        for data in self._series.values():
            merged.merge(data)
        return merged

    def snapshot(self) -> SnapshotDict:
        return dict(self._series)


class CallbackMetric(Instrument):
    """A registry entry whose values come from a callable at read time."""

    def __init__(
        self,
        name: str,
        fn: Callable[[], object],
        help: str = "",
        labelnames: Iterable[str] = (),
        kind: str = "counter",
    ) -> None:
        super().__init__(name, help, labelnames)
        self.kind = kind
        self._fn = fn

    def snapshot(self) -> SnapshotDict:
        values = self._fn()
        if isinstance(values, dict):
            return dict(values)
        return {(): values}


class MetricsRegistry:
    """Named instruments plus lazy callback adapters, one namespace."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # Declaration (get-or-create, so shared instruments are safe)

    def _declare(self, cls, name, help, labelnames, **kwargs) -> Instrument:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} already declared as {existing.kind}"
                )
            return existing
        instrument = cls(name, help=help, labelnames=labelnames, **kwargs)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self, name, help="", labelnames=(), subbuckets=DEFAULT_SUBBUCKETS
    ) -> Histogram:
        return self._declare(
            Histogram, name, help, labelnames, subbuckets=subbuckets
        )

    def register_callback(
        self,
        name: str,
        fn: Callable[[], object],
        help: str = "",
        labelnames: Iterable[str] = (),
        kind: str = "counter",
    ) -> CallbackMetric:
        """Expose an external counter structure under a metric name."""
        if name in self._metrics:
            raise ReproError(f"metric {name!r} already registered")
        metric = CallbackMetric(
            name, fn, help=help, labelnames=labelnames, kind=kind
        )
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------
    # Reading

    def get(self, name: str) -> Optional[Instrument]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, name: str) -> SnapshotDict:
        """Current values of one metric as ``{label_tuple: value}``
        (empty dict for unknown names, so deltas degrade gracefully)."""
        metric = self._metrics.get(name)
        if metric is None:
            return {}
        return metric.snapshot()

    def value(self, name: str, key: LabelKey = ()) -> float:
        """One scalar out of a metric's snapshot (0 when absent)."""
        return self.snapshot(name).get(tuple(key), 0)

    def collect(self) -> List[Tuple[str, Instrument, SnapshotDict]]:
        """Everything, name-sorted — the exporters' input."""
        return [
            (name, self._metrics[name], self._metrics[name].snapshot())
            for name in sorted(self._metrics)
        ]
