"""Unified telemetry: spans, metrics, flight recorder, and exporters.

The observability plane the paper argues every distributed system
should carry (§2–§3 apply it to the *monitored* system; this package
applies it to the reproduction itself):

- :mod:`repro.obs.telemetry` — the :class:`Telemetry` hub: a span API
  on the virtual clock with parent/child causality, instant events,
  and the standard instruments;
- :mod:`repro.obs.recorder` — the bounded, deterministic
  :class:`FlightRecorder` ring the spans and events land in;
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of labeled
  counters, gauges, and log-linear histograms, plus lazy callback
  adapters over counters that live elsewhere;
- :mod:`repro.obs.export` — Chrome trace-event JSON (loads in
  Perfetto), structured JSONL, and Prometheus text exporters;
- :mod:`repro.obs.summarize` — the offline analyzer behind
  ``python -m repro.obs summarize <artifact>``;
- :mod:`repro.obs.hooks` — strand-level taps riding the tracer's
  :class:`~repro.runtime.strand.TraceHooks` seam.

Enable it per system with ``System(observability=True)``; export with
``system.export_telemetry(directory)``.  When disabled (the default),
every instrumentation point in the runtime and network layers holds a
``None`` and the telemetry plane costs nothing.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import NULL_SPAN, Span, Telemetry, wire_system_metrics
from repro.obs.hooks import ObsTraceHooks
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.summarize import Artifact, summarize

__all__ = [
    "Telemetry",
    "Span",
    "NULL_SPAN",
    "FlightRecorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "ObsTraceHooks",
    "wire_system_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "Artifact",
    "summarize",
]
