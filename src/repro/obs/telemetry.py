"""The telemetry hub: spans on the virtual clock, events, instruments.

One :class:`Telemetry` object serves a whole
:class:`repro.core.system.System`.  It owns the flight recorder and the
metrics registry and exposes the two write primitives every layer uses:

- :meth:`Telemetry.span` — a context manager timing a region on the
  *virtual* clock (optionally a node's micro-clock, so intra-event rule
  durations are meaningful); spans carry parent/child causality through
  an explicit stack, which is exact because the simulator is
  single-threaded;
- :meth:`Telemetry.event` — an instant record (drops, retransmits,
  fault injections, monitor alarms, phase markers).

**Zero-cost when disabled**: ``span()`` returns a shared no-op span and
``event()`` returns immediately, but the callers are expected to do one
better — every hot-path instrumentation site in the runtime/net layers
holds ``obs = None`` when telemetry is off and never calls in at all,
which is what the ablation benchmark
(:mod:`benchmarks.test_ablation_obs`) pins.

The metrics registry is *always* live (its callback adapters cost
nothing until read), which is what lets :class:`repro.core.metrics.Meter`
and the dashboard read through it unconditionally.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder

Clock = Callable[[], float]


class _NullSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    span_id = 0
    parent_id = 0
    t0 = 0.0
    t1 = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; records itself into the flight recorder on exit."""

    __slots__ = (
        "_telemetry",
        "_clock",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "t0",
        "t1",
    )

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        attrs: Dict,
        clock: Clock,
    ) -> None:
        self._telemetry = telemetry
        self._clock = clock
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.t0 = 0.0
        self.t1 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes after entry (e.g. results known at exit)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "Span":
        self.t0 = self._clock()
        self.span_id, self.parent_id = self._telemetry._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = self._clock()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._telemetry._close_span(self)
        return False


class Telemetry:
    """The per-system telemetry plane (see module docstring)."""

    def __init__(
        self,
        clock: Clock,
        enabled: bool = False,
        capacity: int = DEFAULT_CAPACITY,
        sample_rate: float = 1.0,
        rng: Optional[object] = None,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.recorder = FlightRecorder(
            capacity=capacity, sample_rate=sample_rate, rng=rng
        )
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self._next_span_id = 1

        # Standard instruments every instrumentation point shares.
        self.rule_duration = self.metrics.histogram(
            "rule_duration_seconds",
            "per-firing rule-strand duration on the work micro-clock",
            ("node", "rule"),
        )
        self.join_rows = self.metrics.histogram(
            "join_rows_examined",
            "rows examined by the join elements of one rule firing",
            ("node", "rule"),
        )
        self.msg_latency = self.metrics.histogram(
            "net_message_latency_seconds",
            "send-to-delivery latency per directed link",
            ("link",),
        )
        self.backoff = self.metrics.histogram(
            "net_retransmit_backoff_seconds",
            "armed retransmit timeouts per directed link",
            ("link",),
        )

    # ------------------------------------------------------------------
    # Spans

    def span(self, name: str, clock: Optional[Clock] = None, **attrs):
        """Open a span (``with tel.span("rule_exec", node=...) as s:``).

        ``clock`` overrides the telemetry clock for this span — nodes
        pass their work micro-clock so same-instant rule firings get
        strictly increasing, duration-bearing timestamps.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs, clock if clock is not None else self.clock)

    def _open_span(self, span: Span):
        span_id = self._next_span_id
        self._next_span_id += 1
        parent_id = self._stack[-1].span_id if self._stack else 0
        self._stack.append(span)
        return span_id, parent_id

    def _close_span(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # out-of-order exit; drop it wherever it is
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        self.recorder.record(
            {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "t0": span.t0,
                "t1": span.t1,
                "attrs": span.attrs,
            }
        )

    @property
    def current_span_id(self) -> int:
        """Id of the innermost open span (0 when none)."""
        return self._stack[-1].span_id if self._stack else 0

    # ------------------------------------------------------------------
    # Events

    def event(self, name: str, **attrs) -> None:
        """Record an instant event (no-op when disabled)."""
        if not self.enabled:
            return
        self.recorder.record(
            {
                "type": "event",
                "name": name,
                "t": self.clock(),
                "span": self.current_span_id,
                "attrs": attrs,
            }
        )


def wire_system_metrics(telemetry: Telemetry, system) -> None:
    """Register the standard registry callbacks over a ``System``.

    These adapt the counters that already exist — ``NetworkStats``, the
    per-node work models, table occupancy — into the registry, so the
    Meter, the dashboard, and the exporters all read one surface and
    nothing reaches into another layer's internals.  Callbacks close
    over the *system*, not a node list, so nodes added later are
    included automatically.
    """
    reg = telemetry.metrics
    stats = system.network.stats

    scalar_fields = (
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "bytes_sent",
        "messages_retransmitted",
        "messages_duplicated",
        "messages_reordered",
        "duplicates_suppressed",
        "acks_sent",
        "acks_dropped",
        "send_failures",
        "gap_skips",
        "busy_nacks",
        "backlogged",
        "held_overflow",
    )
    reg.register_callback(
        "net_counters_total",
        lambda: {(f,): getattr(stats, f) for f in scalar_fields},
        help="aggregate network/transport counters by name",
        labelnames=("counter",),
    )
    reg.register_callback(
        "net_sent_total",
        lambda: {(str(a),): c for a, c in stats.per_node_sent.items()},
        help="application messages sent per node",
        labelnames=("node",),
    )
    reg.register_callback(
        "net_received_total",
        lambda: {(str(a),): c for a, c in stats.per_node_received.items()},
        help="messages delivered per node",
        labelnames=("node",),
    )
    reg.register_callback(
        "net_dropped_total",
        lambda: {(r,): c for r, c in stats.drop_reasons.items()},
        help="dropped messages by drop reason",
        labelnames=("reason",),
    )
    reg.register_callback(
        "net_send_failures_total",
        lambda: {(str(a),): c for a, c in stats.per_node_failed.items()},
        help="sender-visible reliable-transport failures per node",
        labelnames=("node",),
    )
    reg.register_callback(
        "node_busy_seconds",
        lambda: {
            (str(a),): n.work.busy_seconds for a, n in system.nodes.items()
        },
        help="work-model busy seconds accumulated per node",
        labelnames=("node",),
        kind="gauge",
    )
    reg.register_callback(
        "node_work_ops_total",
        lambda: {
            (str(a), op): c
            for a, n in system.nodes.items()
            for op, c in n.work.counters.counts.items()
        },
        help="work-model operation counts per node and op",
        labelnames=("node", "op"),
    )
    reg.register_callback(
        "node_live_tuples",
        lambda: {(str(a),): n.live_tuples() for a, n in system.nodes.items()},
        help="current table occupancy per node",
        labelnames=("node",),
        kind="gauge",
    )
    reg.register_callback(
        "node_memory_bytes",
        lambda: {(str(a),): n.memory_bytes() for a, n in system.nodes.items()},
        help="estimated stored-tuple bytes per node",
        labelnames=("node",),
        kind="gauge",
    )
    reg.register_callback(
        "node_bytes_delivered_total",
        lambda: {
            (str(a),): n.bytes_delivered for a, n in system.nodes.items()
        },
        help="bytes of tuples delivered per node (allocation churn)",
        labelnames=("node",),
    )
    reg.register_callback(
        "node_rule_executions_total",
        lambda: {
            (str(a),): n.rule_executions for a, n in system.nodes.items()
        },
        help="rule-strand firings per node",
        labelnames=("node",),
    )
    reg.register_callback(
        "net_channel_pending",
        lambda: {
            (link,): state["pending"]
            for link, state in system.network.channel_states().items()
            if "pending" in state
        },
        help="unacknowledged reliable-mode messages per channel",
        labelnames=("link",),
        kind="gauge",
    )
    reg.register_callback(
        "net_channel_held",
        lambda: {
            (link,): state["held"]
            for link, state in system.network.channel_states().items()
            if "held" in state
        },
        help="frames held behind a sequence gap per channel",
        labelnames=("link",),
        kind="gauge",
    )
    def _controllers():
        return [
            (str(a), n.overload)
            for a, n in system.nodes.items()
            if n.overload is not None
        ]

    reg.register_callback(
        "overload_offered_total",
        lambda: {
            (label, cls): ctrl.counts[cls].offered
            for label, ctrl in _controllers()
            for cls in ctrl.counts
        },
        help="tuples offered to admission control per node and class",
        labelnames=("node", "cls"),
    )
    reg.register_callback(
        "overload_admitted_total",
        lambda: {
            (label, cls): ctrl.counts[cls].admitted
            for label, ctrl in _controllers()
            for cls in ctrl.counts
        },
        help="tuples admitted per node and class",
        labelnames=("node", "cls"),
    )
    reg.register_callback(
        "overload_shed_total",
        lambda: {
            (label, cls, reason): count
            for label, ctrl in _controllers()
            for cls in ctrl.counts
            for reason, count in ctrl.counts[cls].shed_reasons.items()
        },
        help="tuples shed per node, class, and shed reason",
        labelnames=("node", "cls", "reason"),
    )
    reg.register_callback(
        "overload_deferred_total",
        lambda: {
            (label, cls): ctrl.counts[cls].deferred
            for label, ctrl in _controllers()
            for cls in ctrl.counts
        },
        help="tuples deferred via BUSY backpressure per node and class",
        labelnames=("node", "cls"),
    )
    reg.register_callback(
        "overload_mailbox_depth",
        lambda: {
            (label,): len(ctrl.mailbox) for label, ctrl in _controllers()
        },
        help="current inbound-mailbox depth per node",
        labelnames=("node",),
        kind="gauge",
    )
    reg.register_callback(
        "overload_queue_peak",
        lambda: {
            (label, queue): peak
            for label, ctrl in _controllers()
            for queue, peak in (
                ("mailbox", ctrl.mailbox.depth_peak),
                ("strand_queue", ctrl.strand_state.depth_peak),
            )
        },
        help="high-water depth per node and queue",
        labelnames=("node", "queue"),
        kind="gauge",
    )
    reg.register_callback(
        "overload_shedding",
        lambda: {
            (label,): int(ctrl.shed_active)
            for label, ctrl in _controllers()
        },
        help="1 while a node's admission control is shedding",
        labelnames=("node",),
        kind="gauge",
    )
    reg.register_callback(
        "watch_evicted_total",
        lambda: {
            (str(a), name): count
            for a, n in system.nodes.items()
            for name, count in n.watch_evicted.items()
        },
        help="oldest entries evicted from watch rings per node and watch",
        labelnames=("node", "name"),
    )
    reg.register_callback(
        "obs_recorder",
        lambda: {
            ("recorded",): telemetry.recorder.recorded,
            ("dropped",): telemetry.recorder.dropped,
            ("sampled_out",): telemetry.recorder.sampled_out,
        },
        help="flight-recorder accounting",
        labelnames=("counter",),
    )

    def _store():
        return getattr(system, "store", None)

    reg.register_callback(
        "store_counters_total",
        lambda: (
            {}
            if _store() is None
            else {
                ("events_appended",): _store().events_appended,
                ("records_written",): _store().records_written,
                ("segments_written",): _store().segments_written,
                ("bursts_written",): _store().bursts_written,
                ("flushes",): _store().flushes,
            }
        ),
        help="forensic-store write-path counters by name",
        labelnames=("counter",),
    )
    reg.register_callback(
        "store_bytes_written_total",
        lambda: {(): _store().bytes_written} if _store() else {},
        help="segment bytes written by the forensic store",
    )
    reg.register_callback(
        "store_buffered_events",
        lambda: {(): len(_store()._buffer)} if _store() else {},
        help="captured events awaiting the next segment flush",
        kind="gauge",
    )
    reg.register_callback(
        "store_ring_rotations_total",
        lambda: {
            (node, ring): count
            for (node, ring), count in getattr(
                system, "ring_rotations", {}
            ).items()
        },
        help="introspection-ring evictions per node and ring",
        labelnames=("node", "ring"),
    )
