"""Durable, queryable forensic event store (see :mod:`repro.store.store`).

The public surface:

- :class:`StoreConfig` / :class:`ForensicStore` — capture, segments,
  queries, provenance;
- :func:`backward_slice` with :class:`MemoryProvider` /
  :class:`StoreProvider` — alarm -> minimal supporting input set;
- ``python -m repro.store`` — offline query / slice / info CLI.
"""

from repro.store.compress import BurstCompressor, expand, expand_all
from repro.store.format import tuple_payload
from repro.store.slicing import (
    MemoryProvider,
    Slice,
    StoreProvider,
    backward_slice,
)
from repro.store.store import ForensicStore, StoreConfig

__all__ = [
    "BurstCompressor",
    "ForensicStore",
    "MemoryProvider",
    "Slice",
    "StoreConfig",
    "StoreProvider",
    "backward_slice",
    "expand",
    "expand_all",
    "tuple_payload",
]
