"""Offline forensic-store CLI: ``python -m repro.store <cmd> DIR``.

Commands
--------

``info``    store totals: segments, records, logical events, bytes,
            compression ratio, ring rotations.
``query``   filtered event scan (``--t0/--t1/--node/--relation/--kind``),
            one canonical-JSON record per line.
``slice``   backward slice of an alarm tuple (``--alarm`` takes the
            canonical payload JSON, ``--tid`` a known tuple id); prints
            the slice as canonical JSON, byte-stable under a seed.

All output is canonical JSON (sorted keys, compact separators) on
virtual-clock timestamps, so two runs of the same seeded workload
produce byte-identical output — what the CI forensics-smoke job checks.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.store import format as fmt
from repro.store.slicing import StoreProvider, backward_slice
from repro.store.store import ForensicStore


def _cmd_info(store: ForensicStore, args) -> int:
    info = {
        "directory": store.config.directory,
        "segments": store.segments_written,
        "records": store.records_written,
        "events": store.events_appended,
        "bytes": store.bytes_written,
        "bursts": store.bursts_written,
        "compression_ratio": round(store.compression_ratio, 4),
        "nodes": store.nodes(),
        "ring_rotations": [
            {"node": node, "ring": ring, "count": count}
            for (node, ring), count in sorted(store.ring_rotations.items())
        ],
    }
    print(fmt.encode(info))
    return 0


def _cmd_query(store: ForensicStore, args) -> int:
    records = store.events(
        t0=args.t0,
        t1=args.t1,
        node=args.node,
        relation=args.relation,
        kind=args.kind,
        expand_bursts=not args.raw,
        limit=args.limit,
    )
    for record in records:
        print(fmt.encode(record))
    return 0


def _cmd_slice(store: ForensicStore, args) -> int:
    node = args.node
    tid = args.tid
    if tid is None:
        if args.alarm is None:
            print("slice: need --alarm PAYLOAD or --tid ID", file=sys.stderr)
            return 2
        try:
            payload = json.loads(args.alarm)
        except json.JSONDecodeError as exc:
            print(f"slice: bad --alarm JSON: {exc}", file=sys.stderr)
            return 2
        candidates = [node] if node else store.nodes()
        for candidate in candidates:
            found = store.tid_of(candidate, payload)
            if found is not None:
                node, tid = candidate, found
                break
        if tid is None:
            print("slice: alarm tuple not found in store", file=sys.stderr)
            return 1
    elif node is None:
        print("slice: --tid requires --node", file=sys.stderr)
        return 2
    result = backward_slice(
        StoreProvider(store), node, tid, max_nodes=args.max_nodes
    )
    print(result.to_json())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Query a durable forensic event store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="store totals and summaries")
    p_info.add_argument("directory")
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="filtered event scan")
    p_query.add_argument("directory")
    p_query.add_argument("--t0", type=float, default=None)
    p_query.add_argument("--t1", type=float, default=None)
    p_query.add_argument("--node", default=None)
    p_query.add_argument("--relation", default=None)
    p_query.add_argument(
        "--kind",
        default=None,
        choices=[
            fmt.RULE_EXEC,
            fmt.TUPLE_IDENT,
            fmt.TUPLE_LOG,
            fmt.TABLE_LOG,
            fmt.RULE_BURST,
            fmt.LOG_BURST,
        ],
    )
    p_query.add_argument("--limit", type=int, default=None)
    p_query.add_argument(
        "--raw",
        action="store_true",
        help="emit stored records without expanding rule bursts",
    )
    p_query.set_defaults(func=_cmd_query)

    p_slice = sub.add_parser(
        "slice", help="backward slice of an alarm tuple"
    )
    p_slice.add_argument("directory")
    p_slice.add_argument(
        "--alarm",
        default=None,
        help='canonical payload JSON, e.g. \'{"rel":"alarm","v":["n1",3]}\'',
    )
    p_slice.add_argument("--node", default=None)
    p_slice.add_argument("--tid", type=int, default=None)
    p_slice.add_argument("--max-nodes", type=int, default=100000)
    p_slice.set_defaults(func=_cmd_slice)

    args = parser.parse_args(argv)
    try:
        store = ForensicStore.open(args.directory)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return args.func(store, args)


if __name__ == "__main__":
    sys.exit(main())
