"""The durable forensic event store.

:class:`ForensicStore` taps the introspection plane of a running
:class:`~repro.core.system.System` — the tracer's ``ruleExec`` table,
the tuple registry's identity writes, the event logger's ``tupleLog`` /
``tableLog`` — and spills everything to append-only segment files with
columnar index sidecars (:mod:`repro.store.segment`), applying burst
compression on the way down (:mod:`repro.store.compress`).  The
in-memory introspection rings stay exactly as they were: bounded,
fast, queryable from OverLog.  The store is the history that survives
when they rotate.

Write path: records accumulate in a bounded buffer; when the buffer
reaches ``segment_events`` the store cuts a segment.  Under the batch
kernel the cut is deferred to the next tick barrier (segments align to
tick boundaries); under the legacy loop it happens inline.  ``close()``
flushes the remainder and (re)writes ``manifest.json``.

Read path: :meth:`events` for filtered scans (time / relation / node /
kind / tuple id), and the provenance lookups (:meth:`edges_to`,
:meth:`source_of`, :meth:`contents_of`, :meth:`tid_of`) that back
:mod:`repro.store.slicing`.  Reads see buffered-but-unflushed records
too, so a live query never misses the tail.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import ReproError
from repro.store import format as fmt
from repro.store.compress import (
    BurstCompressor,
    DEFAULT_MIN_RUN,
    DEFAULT_NOISE_RELATIONS,
    expand,
)
from repro.store.segment import SegmentReader, write_segment

MANIFEST = "manifest.json"

#: The introspection rings the store taps (and watches for rotation).
RINGS = ("ruleExec", "tupleLog", "tableLog", "tupleTable")


@dataclass
class StoreConfig:
    """Knobs of one forensic store."""

    #: Directory segments are written into (created on first flush).
    directory: str
    #: Records per segment (the buffer bound — memory stays O(this)).
    segment_events: int = 4096
    #: Burst compression on/off and its run threshold.
    compress: bool = True
    burst_min_run: int = DEFAULT_MIN_RUN
    #: Relations whose log entries are *counted* (lossy) when bursty.
    noise_relations: PyTuple = DEFAULT_NOISE_RELATIONS
    #: Capture tupleLog / tableLog entries (ruleExec + tupleTable are
    #: always captured — they are the causality graph).
    capture_logs: bool = True


class ForensicStore:
    """One durable event store serving a whole system (see module doc)."""

    def __init__(
        self,
        config: StoreConfig,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._compressor = (
            BurstCompressor(
                min_run=config.burst_min_run,
                noise_relations=config.noise_relations,
            )
            if config.compress
            else None
        )
        self._buffer: List[Dict[str, Any]] = []
        self._segments: List[SegmentReader] = []
        self._next_seg = 1
        self._dir_ready = False
        #: Deferred-cut mode: True once registered on a batch kernel's
        #: tick-barrier hook (segments then align to tick boundaries).
        self.tick_mode = False
        # Per-node set of tuple ids whose payload was already persisted.
        self._payloaded: Dict[str, set] = {}
        # Counters (exported as store_* metrics).
        self.events_appended = 0
        self.records_written = 0
        self.segments_written = 0
        self.bytes_written = 0
        self.bursts_written = 0
        self.flushes = 0
        #: Ring rotations observed, keyed ``(node, ring)`` (mirrors the
        #: system-level counter so store readers can see it offline).
        self.ring_rotations: Dict[PyTuple, int] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # Opening an existing store (CLI, post-mortem)

    @classmethod
    def open(cls, directory: str) -> "ForensicStore":
        """Open a written store read-only from its manifest."""
        path = os.path.join(directory, MANIFEST)
        if not os.path.exists(path):
            raise ReproError(f"no forensic store manifest at {path}")
        with open(path) as handle:
            manifest = json.load(handle)
        store = cls(StoreConfig(directory=directory))
        for summary in manifest["segments"]:
            store._segments.append(SegmentReader(directory, summary))
        store._next_seg = manifest["next_segment"]
        store.events_appended = manifest["totals"]["events"]
        store.records_written = manifest["totals"]["records"]
        store.segments_written = len(store._segments)
        store.bytes_written = manifest["totals"]["bytes"]
        store.bursts_written = manifest["totals"]["bursts"]
        store.ring_rotations = {
            (entry["node"], entry["ring"]): entry["count"]
            for entry in manifest.get("ring_rotations", [])
        }
        store.closed = True
        return store

    # ------------------------------------------------------------------
    # Wiring

    def attach_node(self, node, tracer=None, logger=None) -> None:
        """Tap one node's introspection hooks.

        ``tracer`` contributes ``ruleExec`` edges and (through its
        registry) tuple identity + payloads; ``logger`` contributes the
        event logs.  A node with neither contributes nothing.
        """
        address = str(node.address)
        if tracer is not None:
            table = node.store.get("ruleExec")
            table.on_insert.append(
                lambda row, outcome, _a=address: self._on_rule_exec(
                    _a, row, outcome
                )
            )
            tracer.registry.on_register.append(
                lambda tid, src, src_tid, loc, tup, _a=address: (
                    self._on_register(_a, tid, src, src_tid, loc, tup)
                )
            )
        if logger is not None and self.config.capture_logs:
            node.store.get("tupleLog").on_insert.append(
                lambda row, outcome, _a=address: self._on_tuple_log(_a, row)
            )
            node.store.get("tableLog").on_insert.append(
                lambda row, outcome, _a=address: self._on_table_log(_a, row)
            )

    def ring_rotated(self, node: str, ring: str) -> None:
        """Count one ring eviction (driven by the system's watcher)."""
        key = (node, ring)
        self.ring_rotations[key] = self.ring_rotations.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Capture callbacks

    def _on_rule_exec(self, node: str, row, outcome) -> None:
        from repro.runtime.table import InsertOutcome

        if outcome is InsertOutcome.REFRESHED:
            return
        _, rule, cause, effect, in_t, out_t, is_event = row.values
        self._append(
            fmt.rule_exec_record(
                node, rule, cause, effect, in_t, out_t, is_event
            )
        )

    def _on_register(self, node, tid, src, src_tid, loc, tup) -> None:
        payload = None
        if tup is not None:
            seen = self._payloaded.setdefault(node, set())
            if tid not in seen:
                seen.add(tid)
                payload = fmt.tuple_payload(tup)
        self._append(
            fmt.tuple_ident_record(
                node, tid, src, src_tid, loc, self._clock(), payload
            )
        )

    def _on_tuple_log(self, node: str, row) -> None:
        _, seq, when, rel, text = row.values
        self._append(fmt.tuple_log_record(node, seq, when, rel, text))

    def _on_table_log(self, node: str, row) -> None:
        _, seq, when, rel, op, text = row.values
        self._append(fmt.table_log_record(node, seq, when, rel, op, text))

    # ------------------------------------------------------------------
    # Write path

    def _append(self, record: Dict[str, Any]) -> None:
        if self.closed:
            return
        self._buffer.append(record)
        self.events_appended += 1
        if (
            not self.tick_mode
            and len(self._buffer) >= self.config.segment_events
        ):
            self.flush_segment()

    def on_tick_barrier(self, when: float) -> None:
        """Tick-barrier hook (batch kernel): cut full segments now."""
        while len(self._buffer) >= self.config.segment_events:
            self.flush_segment()

    def flush_segment(self) -> None:
        """Cut one segment from the buffer head (no-op when empty)."""
        if not self._buffer:
            return
        count = min(len(self._buffer), self.config.segment_events)
        chunk = self._buffer[:count]
        del self._buffer[:count]
        if self._compressor is not None:
            chunk = self._compressor.compress(self._compressor.layout(chunk))
        if not self._dir_ready:
            os.makedirs(self.config.directory, exist_ok=True)
            self._dir_ready = True
        summary = write_segment(self.config.directory, self._next_seg, chunk)
        self._segments.append(
            SegmentReader(self.config.directory, summary)
        )
        self._next_seg += 1
        self.segments_written += 1
        self.records_written += summary["records"]
        self.bytes_written += summary["bytes"]
        self.bursts_written += sum(
            1 for r in chunk if r["k"] in (fmt.RULE_BURST, fmt.LOG_BURST)
        )
        self.flushes += 1
        self._write_manifest()

    def close(self) -> None:
        """Flush everything and finalize the manifest."""
        while self._buffer:
            self.flush_segment()
        self._write_manifest()
        self.closed = True

    def _write_manifest(self) -> None:
        if not self._dir_ready:
            os.makedirs(self.config.directory, exist_ok=True)
            self._dir_ready = True
        manifest = {
            "version": 1,
            "segments": [s.summary for s in self._segments],
            "next_segment": self._next_seg,
            "totals": {
                "events": self.events_appended - len(self._buffer),
                "records": self.records_written,
                "bytes": self.bytes_written,
                "bursts": self.bursts_written,
            },
            "ring_rotations": [
                {"node": node, "ring": ring, "count": count}
                for (node, ring), count in sorted(self.ring_rotations.items())
            ],
        }
        path = os.path.join(self.config.directory, MANIFEST)
        with open(path, "w") as handle:
            json.dump(manifest, handle, sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    # Introspection

    @property
    def compression_ratio(self) -> float:
        """Logical events per physical record in written segments."""
        if self.records_written == 0:
            return 1.0
        flushed = sum(s.summary["events"] for s in self._segments)
        return flushed / self.records_written

    def segment_files(self) -> List[str]:
        """Written segment file names, in order."""
        return [s.summary["file"] for s in self._segments]

    def segment_paths(self) -> List[str]:
        """Full paths of the written segment files, in order."""
        return [
            os.path.join(self.config.directory, name)
            for name in self.segment_files()
        ]

    def manifest_path(self) -> str:
        return os.path.join(self.config.directory, MANIFEST)

    # ------------------------------------------------------------------
    # Query path

    def events(
        self,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        node: Optional[str] = None,
        relation: Optional[str] = None,
        kind: Optional[str] = None,
        expand_bursts: bool = True,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Filtered scan over segments + the unflushed buffer.

        Segments are pruned through their sidecar summaries; matching
        lines are read by offset.  With ``expand_bursts`` (default),
        lossless rule bursts are expanded back into their ``re``
        records before filtering so callers never see representation
        details; counted ``log.b`` bursts pass through as themselves.

        Results are sorted by timestamp with the canonical encoding as
        tie-break — a total, byte-stable order independent of segment
        layout (the writer clusters records for compression).
        """
        out: List[Dict[str, Any]] = []
        for segment in self._segments:
            if not (
                segment.overlaps_time(t0, t1)
                and segment.has_node(node)
                and (relation is None or relation in segment.summary["rels"])
            ):
                continue
            candidates = segment.select(
                t0=t0, t1=t1, node=node, relation=relation, kind=kind
            )
            out.extend(
                self._post_filter(
                    candidates, t0, t1, node, relation, kind, expand_bursts
                )
            )
        out.extend(
            self._post_filter(
                self._buffer, t0, t1, node, relation, kind, expand_bursts
            )
        )
        out.sort(key=lambda r: (r["t"], fmt.encode(r)))
        if limit is not None:
            out = out[:limit]
        return out

    def _post_filter(
        self, records, t0, t1, node, relation, kind, expand_bursts
    ) -> Iterator[Dict[str, Any]]:
        for record in records:
            expanded = expand(record) if expand_bursts else [record]
            for entry in expanded:
                if t0 is not None and entry["t"] < t0:
                    continue
                if t1 is not None and entry["t"] > t1:
                    continue
                if node is not None and entry["n"] != node:
                    continue
                if kind is not None and entry["k"] != kind:
                    continue
                if relation is not None and entry.get("rel") != relation:
                    continue
                yield entry

    # ------------------------------------------------------------------
    # Provenance lookups (backward slicing)

    def _segments_for_tid(self, node: str, tid: int) -> List[SegmentReader]:
        return [s for s in self._segments if s.may_hold_tid(node, tid)]

    def edges_to(self, node: str, tid: int) -> List[Dict[str, Any]]:
        """All ``re`` edges (event + precondition) with effect ``tid``."""
        out: List[Dict[str, Any]] = []
        for segment in self._segments_for_tid(node, tid):
            out.extend(segment.edges_to(node, tid))
        for record in self._buffer:
            if (
                record["k"] == fmt.RULE_EXEC
                and record["n"] == node
                and record["e"] == tid
            ):
                out.append(record)
        return out

    def _ident_rows(self, node: str, tid: int) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for segment in self._segments_for_tid(node, tid):
            out.extend(segment.ident_rows(node, tid))
        for record in self._buffer:
            if (
                record["k"] == fmt.TUPLE_IDENT
                and record["n"] == node
                and record["i"] == tid
            ):
                out.append(record)
        return out

    def source_of(self, node: str, tid: int) -> Optional[PyTuple]:
        """Latest recorded ``(src, src_tid)`` for one tuple id."""
        rows = self._ident_rows(node, tid)
        if not rows:
            return None
        last = rows[-1]
        return last["s"], last["si"]

    def contents_of(self, node: str, tid: int) -> Optional[Dict[str, Any]]:
        """The persisted payload of one tuple id (first ``tt`` row)."""
        for row in self._ident_rows(node, tid):
            if "rep" in row:
                return row["rep"]
        return None

    def tid_of(self, node: str, payload: Dict[str, Any]) -> Optional[int]:
        """Newest tuple id whose persisted payload equals ``payload``."""
        best: Optional[int] = None
        for record in self.events(
            node=node, kind=fmt.TUPLE_IDENT, expand_bursts=False
        ):
            if record.get("rep") == payload:
                tid = record["i"]
                if best is None or tid > best:
                    best = tid
        return best

    def nodes(self) -> List[str]:
        """All node addresses with any persisted history."""
        seen = set()
        for segment in self._segments:
            seen.update(segment.summary["nodes"])
        seen.update(r["n"] for r in self._buffer)
        return sorted(seen)
