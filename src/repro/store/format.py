"""Record formats of the durable forensic event store.

Every record is a flat JSON-ready dict with a ``k`` (kind) tag and is
serialized in *canonical* form — sorted keys, compact separators — so a
store built from a seeded run is byte-for-byte reproducible, which is
what the CI forensics-smoke job pins.

Record kinds
------------

``re``      one ``ruleExec`` edge: rule ``r`` on node ``n`` turned cause
            tuple ``c`` into effect tuple ``e`` (``ev`` marks the
            triggering-event edge; ``False`` rows are preconditions).
``tt``      one ``tupleTable`` identity row: node-local tuple id ``i``
            with its wire provenance (``s``/``si`` = source address and
            the source node's id for the same tuple) and location
            specifier ``l``.  The *first* row written for an id also
            carries the tuple payload ``rep``; later identity updates
            (e.g. the source row written on arrival) omit it.
``tl``      one ``tupleLog`` entry (a locally delivered tuple).
``xl``      one ``tableLog`` entry (a table change: insert / replace /
            delete / expire / evict).
``re.b``    a lossless *burst* of consecutive ``re`` records collapsed
            columnar-style (see :mod:`repro.store.compress`); expanding
            it recovers the original records exactly.
``log.b``   a counted, BEEP-style lossy burst of ``tl``/``xl`` noise
            (periodic-rule firing storms): only the count and the exact
            first/last timestamps survive.

Timestamps are virtual-clock seconds.  Tuple payloads are
``{"rel": name, "v": [values...]}`` with non-JSON values degraded to
``{"!r": repr(value)}`` — deterministic, and sufficient for display and
content matching.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.runtime.tuples import Tuple

#: Record kind tags.
RULE_EXEC = "re"
TUPLE_IDENT = "tt"
TUPLE_LOG = "tl"
TABLE_LOG = "xl"
RULE_BURST = "re.b"
LOG_BURST = "log.b"

_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_value(value: Any) -> Any:
    """A deterministic JSON-safe projection of one tuple field."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_value(v) for v in value]
    return {"!r": repr(value)}


def tuple_payload(tup: Tuple) -> Dict[str, Any]:
    """Canonical payload of one tuple: relation name + field list."""
    return {"rel": tup.name, "v": [_json_value(v) for v in tup.values]}


def payload_matches(payload: Dict[str, Any], tup: Tuple) -> bool:
    """True when ``payload`` is the canonical encoding of ``tup``."""
    return payload == tuple_payload(tup)


def payload_tuple(payload: Optional[Dict[str, Any]]) -> Optional[Tuple]:
    """Rebuild a :class:`Tuple` from a payload (best effort).

    Fields that were degraded to ``{"!r": ...}`` stay as those dicts —
    good enough for display; content matching should go through
    :func:`payload_matches` instead.
    """
    if payload is None:
        return None
    values = tuple(
        tuple(v) if isinstance(v, list) else v for v in payload["v"]
    )
    return Tuple(payload["rel"], values)


def encode(record: Dict[str, Any]) -> str:
    """Canonical single-line JSON of one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode(line: str) -> Dict[str, Any]:
    return json.loads(line)


# ----------------------------------------------------------------------
# Record constructors (kept together so every writer agrees on fields)


def rule_exec_record(
    node: str,
    rule: str,
    cause: int,
    effect: int,
    in_t: float,
    out_t: float,
    is_event: bool,
) -> Dict[str, Any]:
    return {
        "k": RULE_EXEC,
        "n": node,
        "r": rule,
        "c": cause,
        "e": effect,
        "ti": in_t,
        "to": out_t,
        "ev": bool(is_event),
        "t": out_t,
    }


def tuple_ident_record(
    node: str,
    tid: int,
    src: Any,
    src_tid: Any,
    loc: Any,
    when: float,
    payload: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    record = {
        "k": TUPLE_IDENT,
        "n": node,
        "i": tid,
        "s": _json_value(src),
        "si": _json_value(src_tid),
        "l": _json_value(loc),
        "t": when,
    }
    if payload is not None:
        record["rep"] = payload
        record["rel"] = payload["rel"]
    return record


def tuple_log_record(
    node: str, seq: int, when: float, rel: str, text: str
) -> Dict[str, Any]:
    return {
        "k": TUPLE_LOG,
        "n": node,
        "seq": seq,
        "rel": rel,
        "rep": text,
        "t": when,
    }


def table_log_record(
    node: str, seq: int, when: float, rel: str, op: str, text: str
) -> Dict[str, Any]:
    return {
        "k": TABLE_LOG,
        "n": node,
        "seq": seq,
        "rel": rel,
        "op": op,
        "rep": text,
        "t": when,
    }


def logical_events(record: Dict[str, Any]) -> int:
    """How many original events one stored record stands for."""
    if record["k"] in (RULE_BURST, LOG_BURST):
        return int(record["cnt"])
    return 1


def record_tids(record: Dict[str, Any]) -> List[int]:
    """Tuple ids a record references (for per-segment id ranges)."""
    kind = record["k"]
    if kind == RULE_EXEC:
        return [record["c"], record["e"]]
    if kind == TUPLE_IDENT:
        return [record["i"]]
    if kind == RULE_BURST:
        return list(record["c"]) + list(record["e"])
    return []
