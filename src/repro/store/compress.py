"""BEEP-style burst compression for the forensic event store.

Periodic-rule firing storms dominate a long trace: a monitor checked
every few seconds emits the same ``ruleExec`` shape and the same log
noise thousands of times, drowning the handful of records a post-mortem
actually needs.  Following BEEP (and the provenance-graph literature in
PAPERS.md), the store collapses such storms at segment-write time:

- **Lossless rule bursts** (``re.b``): a run of >= ``min_run``
  consecutive ``re`` records sharing ``(node, rule, ev)`` becomes one
  columnar record carrying parallel arrays of causes, effects and
  timestamps plus the run's exact first/last times.  :func:`expand`
  recovers the original records byte-for-byte, so backward slicing sees
  every edge — compression here is representational (shared keys, one
  JSON object instead of N), not informational.
- **Counted log bursts** (``log.b``): a run of >= ``min_run``
  consecutive ``tl``/``xl`` records sharing ``(node, relation[, op])``
  whose relation is in ``noise_relations`` becomes a counted record
  with only the exact first/last timestamps and sequence numbers.
  This tier is deliberately lossy — BEEP's noise elimination — and is
  restricted to relations (``periodic`` by default) that never appear
  in a causality walk.

Runs are only ever formed from *consecutive* records, so compression
commutes with time-range queries: a burst's ``[tf, tl]`` window is
exactly the span of the records it replaced.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.store import format as fmt

DEFAULT_MIN_RUN = 4
DEFAULT_NOISE_RELATIONS = ("periodic",)


class BurstCompressor:
    """Collapses event-record runs; see module docstring."""

    def __init__(
        self,
        min_run: int = DEFAULT_MIN_RUN,
        noise_relations: Sequence[str] = DEFAULT_NOISE_RELATIONS,
    ) -> None:
        if min_run < 2:
            raise ValueError(f"min_run must be >= 2: {min_run}")
        self.min_run = min_run
        self.noise_relations = frozenset(noise_relations)

    # ------------------------------------------------------------------

    def _rule_key(self, record: Dict[str, Any]):
        if record["k"] != fmt.RULE_EXEC:
            return None
        return ("re", record["n"], record["r"], record["ev"])

    def _log_key(self, record: Dict[str, Any]):
        kind = record["k"]
        if kind not in (fmt.TUPLE_LOG, fmt.TABLE_LOG):
            return None
        if record["rel"] not in self.noise_relations:
            return None
        return ("log", kind, record["n"], record["rel"], record.get("op"))

    def layout(self, records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Reorder one segment's records to maximize run formation.

        A live capture interleaves kinds per rule firing (``tt``,
        ``re``, ``tt``, ...), so a storm's identical ``re`` records are
        never consecutive in arrival order and would never compress.
        Segments don't promise arrival order — every record carries its
        own timestamp, queries filter (and sort) on it, and provenance
        lookups are index-based — so the segment writer may cluster:
        burst-eligible records (rule edges; noise log entries) are
        stably grouped by their run key after the rest, each group in
        arrival order.  The reorder is a pure function of the input
        sequence, preserving byte-stability.
        """
        fixed: List[tuple] = []
        grouped: List[tuple] = []
        for idx, record in enumerate(records):
            key = self._rule_key(record) or self._log_key(record)
            if key is None:
                fixed.append(record)
            else:
                grouped.append((tuple(str(part) for part in key), idx, record))
        grouped.sort(key=lambda entry: (entry[0], entry[1]))
        return fixed + [record for _, _, record in grouped]

    def compress(self, records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """One pass over ``records``; returns the compressed sequence."""
        out: List[Dict[str, Any]] = []
        run: List[Dict[str, Any]] = []
        run_key = None

        def flush_run() -> None:
            nonlocal run, run_key
            if not run:
                return
            if len(run) < self.min_run:
                out.extend(run)
            elif run_key[0] == "re":
                out.append(self._rule_burst(run))
            else:
                out.append(self._log_burst(run))
            run, run_key = [], None

        for record in records:
            key = self._rule_key(record) or self._log_key(record)
            if key is None:
                flush_run()
                out.append(record)
                continue
            if key != run_key:
                flush_run()
                run_key = key
            run.append(record)
        flush_run()
        return out

    # ------------------------------------------------------------------

    def _rule_burst(self, run: List[Dict[str, Any]]) -> Dict[str, Any]:
        first, last = run[0], run[-1]
        return {
            "k": fmt.RULE_BURST,
            "n": first["n"],
            "r": first["r"],
            "ev": first["ev"],
            "cnt": len(run),
            "tf": first["ti"],
            "tl": last["to"],
            "c": [r["c"] for r in run],
            "e": [r["e"] for r in run],
            "ti": [r["ti"] for r in run],
            "to": [r["to"] for r in run],
            "t": last["t"],
        }

    def _log_burst(self, run: List[Dict[str, Any]]) -> Dict[str, Any]:
        first, last = run[0], run[-1]
        record = {
            "k": fmt.LOG_BURST,
            "lk": first["k"],
            "n": first["n"],
            "rel": first["rel"],
            "cnt": len(run),
            "tf": first["t"],
            "tl": last["t"],
            "sf": first["seq"],
            "sl": last["seq"],
            "t": last["t"],
        }
        if "op" in first:
            record["op"] = first["op"]
        return record


def expand(record: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Expand one record into the logical events it stands for.

    Lossless ``re.b`` bursts reconstruct their original ``re`` records
    exactly.  Counted ``log.b`` bursts cannot be reconstructed — they
    expand to themselves (the count and window are the information).
    Plain records expand to themselves.
    """
    if record["k"] != fmt.RULE_BURST:
        return [record]
    return [
        fmt.rule_exec_record(
            record["n"],
            record["r"],
            cause,
            effect,
            in_t,
            out_t,
            record["ev"],
        )
        for cause, effect, in_t, out_t in zip(
            record["c"], record["e"], record["ti"], record["to"]
        )
    ]


def expand_all(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for record in records:
        out.extend(expand(record))
    return out
