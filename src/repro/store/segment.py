"""Append-only segment files with columnar index sidecars.

A segment is one immutable JSONL file (``seg-NNNNNN.jsonl``, one
canonical-JSON record per line) plus a sidecar (``seg-NNNNNN.idx.json``)
holding:

- a **summary** — virtual-clock time range, node set, relation set,
  per-node tuple-id ranges, record/event counts, byte size — used to
  prune whole segments from a query or a backward-slice lookup without
  touching the data file;
- **columns** — parallel arrays (``t``, ``k``, ``n``, ``rel``, ``tid``,
  ``off``) over the segment's records, used to select the few matching
  lines and read them by byte offset instead of parsing the whole file.

Both files are byte-stable for a given record sequence, so a seeded run
produces an identical store every time.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.store import format as fmt

SEGMENT_PATTERN = "seg-%06d"


def _summary_of(records: List[Dict[str, Any]], size: int) -> Dict[str, Any]:
    t_min = min(r["t"] for r in records)
    t_max = max(r["t"] for r in records)
    nodes = sorted({r["n"] for r in records})
    rels = sorted({r["rel"] for r in records if "rel" in r})
    kinds = sorted({r["k"] for r in records})
    tids: Dict[str, List[int]] = {}
    for record in records:
        ids = fmt.record_tids(record)
        if not ids:
            continue
        node = record["n"]
        lo, hi = min(ids), max(ids)
        span = tids.get(node)
        if span is None:
            tids[node] = [lo, hi]
        else:
            span[0] = min(span[0], lo)
            span[1] = max(span[1], hi)
    return {
        "t0": t_min,
        "t1": t_max,
        "nodes": nodes,
        "rels": rels,
        "kinds": kinds,
        "tids": {n: tids[n] for n in sorted(tids)},
        "records": len(records),
        "events": sum(fmt.logical_events(r) for r in records),
        "bytes": size,
    }


def write_segment(
    directory: str, seg_id: int, records: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Write one segment + sidecar; returns the sidecar's summary dict
    (augmented with ``file``/``index`` names) for the manifest."""
    if not records:
        raise ValueError("cannot write an empty segment")
    base = SEGMENT_PATTERN % seg_id
    data_path = os.path.join(directory, base + ".jsonl")
    index_path = os.path.join(directory, base + ".idx.json")
    offsets: List[int] = []
    position = 0
    with open(data_path, "w") as handle:
        for record in records:
            offsets.append(position)
            line = fmt.encode(record) + "\n"
            handle.write(line)
            position += len(line.encode("utf-8"))
    summary = _summary_of(records, position)
    summary["file"] = base + ".jsonl"
    summary["index"] = base + ".idx.json"
    summary["id"] = seg_id
    columns = {
        "t": [r["t"] for r in records],
        "k": [r["k"] for r in records],
        "n": [r["n"] for r in records],
        "rel": [r.get("rel") for r in records],
        "tid": [
            (r["e"] if r["k"] == fmt.RULE_EXEC else r.get("i"))
            for r in records
        ],
        "off": offsets,
    }
    with open(index_path, "w") as handle:
        json.dump(
            {"summary": summary, "columns": columns},
            handle,
            sort_keys=True,
            separators=(",", ":"),
        )
    return summary


class SegmentReader:
    """Lazy reader over one written segment."""

    def __init__(
        self, directory: str, summary: Dict[str, Any]
    ) -> None:
        self.directory = directory
        self.summary = summary
        self.seg_id = summary["id"]
        self._columns: Optional[Dict[str, List[Any]]] = None
        self._records: Optional[List[Dict[str, Any]]] = None
        # Per-node map: effect tid -> indices of re/re.b records, built
        # on first provenance lookup into this segment.
        self._effect_index: Optional[Dict[Any, Dict[int, List[int]]]] = None
        self._ident_index: Optional[Dict[Any, Dict[int, List[int]]]] = None

    # ------------------------------------------------------------------
    # Pruning

    def overlaps_time(self, t0: Optional[float], t1: Optional[float]) -> bool:
        if t0 is not None and self.summary["t1"] < t0:
            return False
        if t1 is not None and self.summary["t0"] > t1:
            return False
        return True

    def has_node(self, node: Optional[str]) -> bool:
        return node is None or node in self.summary["nodes"]

    def has_relation(self, relation: Optional[str]) -> bool:
        return relation is None or relation in self.summary["rels"]

    def may_hold_tid(self, node: str, tid: int) -> bool:
        span = self.summary["tids"].get(node)
        return span is not None and span[0] <= tid <= span[1]

    # ------------------------------------------------------------------
    # Data access

    @property
    def data_path(self) -> str:
        return os.path.join(self.directory, self.summary["file"])

    def columns(self) -> Dict[str, List[Any]]:
        if self._columns is None:
            with open(
                os.path.join(self.directory, self.summary["index"])
            ) as handle:
                self._columns = json.load(handle)["columns"]
        return self._columns

    def records(self) -> List[Dict[str, Any]]:
        """All records of the segment (cached after first load)."""
        if self._records is None:
            with open(self.data_path) as handle:
                self._records = [
                    fmt.decode(line) for line in handle if line.strip()
                ]
        return self._records

    def records_at(self, indices: List[int]) -> List[Dict[str, Any]]:
        """Read just the records at the given row indices, by offset."""
        if self._records is not None:
            return [self._records[i] for i in indices]
        offsets = self.columns()["off"]
        out: List[Dict[str, Any]] = []
        with open(self.data_path) as handle:
            for i in indices:
                handle.seek(offsets[i])
                out.append(fmt.decode(handle.readline()))
        return out

    def select(
        self,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        node: Optional[str] = None,
        relation: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Records matching the filters, via the columnar sidecar.

        Relation filtering matches plain records by their ``rel``
        column; burst records (whose column entry can be ``None`` for
        ``re.b``) are matched by expansion at the caller's level, so
        this returns them when the other filters pass.
        """
        columns = self.columns()
        t_col, k_col, n_col, rel_col = (
            columns["t"],
            columns["k"],
            columns["n"],
            columns["rel"],
        )
        indices: List[int] = []
        for i in range(len(t_col)):
            if t0 is not None and t_col[i] < t0:
                continue
            if t1 is not None and t_col[i] > t1:
                continue
            if node is not None and n_col[i] != node:
                continue
            if kind is not None and k_col[i] != kind:
                continue
            if relation is not None:
                rel = rel_col[i]
                if rel is not None and rel != relation:
                    continue
                if rel is None and k_col[i] not in (
                    fmt.RULE_BURST,
                    fmt.TUPLE_IDENT,
                ):
                    continue
            indices.append(i)
        return self.records_at(indices)

    # ------------------------------------------------------------------
    # Provenance indexes (backward slicing)

    def _build_provenance(self) -> None:
        effect: Dict[Any, Dict[int, List[int]]] = {}
        ident: Dict[Any, Dict[int, List[int]]] = {}
        for i, record in enumerate(self.records()):
            kind = record["k"]
            node = record["n"]
            if kind == fmt.RULE_EXEC:
                effect.setdefault(node, {}).setdefault(
                    record["e"], []
                ).append(i)
            elif kind == fmt.RULE_BURST:
                per_node = effect.setdefault(node, {})
                for e in record["e"]:
                    per_node.setdefault(e, []).append(i)
            elif kind == fmt.TUPLE_IDENT:
                ident.setdefault(node, {}).setdefault(
                    record["i"], []
                ).append(i)
        self._effect_index = effect
        self._ident_index = ident

    def edges_to(self, node: str, tid: int) -> List[Dict[str, Any]]:
        """``re`` records (bursts expanded) whose effect is ``tid``."""
        if self._effect_index is None:
            self._build_provenance()
        indices = self._effect_index.get(node, {}).get(tid, [])
        out: List[Dict[str, Any]] = []
        records = self.records()
        for i in indices:
            for edge in _expand_for_effect(records[i], tid):
                out.append(edge)
        return out

    def ident_rows(self, node: str, tid: int) -> List[Dict[str, Any]]:
        """``tt`` records for one tuple id, in write order."""
        if self._ident_index is None:
            self._build_provenance()
        indices = self._ident_index.get(node, {}).get(tid, [])
        records = self.records()
        return [records[i] for i in indices]


def _expand_for_effect(
    record: Dict[str, Any], tid: int
) -> Iterator[Dict[str, Any]]:
    if record["k"] == fmt.RULE_EXEC:
        if record["e"] == tid:
            yield record
        return
    for i, effect in enumerate(record["e"]):
        if effect == tid:
            yield fmt.rule_exec_record(
                record["n"],
                record["r"],
                record["c"][i],
                effect,
                record["ti"][i],
                record["to"][i],
                record["ev"],
            )
