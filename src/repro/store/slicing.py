"""Backward slicing over the persisted causality graph.

A *backward slice* of an alarm tuple is the minimal supporting set of
rule executions, cross-node hops, and leaf input tuples that explain
it — HOLMES/CamQuery-style, generalizing
:func:`repro.analysis.causality.trace_back` (which follows only the
event spine) to the full dependency graph including every
precondition edge.

One algorithm, two graph providers:

- :class:`MemoryProvider` reads the live in-memory introspection rings
  (``ruleExec`` tables + tuple registries) of a running system;
- :class:`StoreProvider` reads a :class:`~repro.store.store.ForensicStore`
  (segments on disk), which keeps answering after the rings rotate.

Both see the *same* node-local tuple ids (the store records registry
ids), and :meth:`Slice.to_json` is canonical (sorted, compact), so a
memory slice and a store slice of the same alarm are byte-identical
while history is still in the rings — the property the differential
battery pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.store import format as fmt

DEFAULT_MAX_NODES = 100000


class MemoryProvider:
    """Graph provider over live nodes (address -> P2Node, traced)."""

    def __init__(self, nodes: Dict[str, Any]) -> None:
        self._nodes = nodes

    def edges_to(self, node: str, tid: int) -> List[Dict[str, Any]]:
        live = self._nodes.get(node)
        if live is None or not live.store.has("ruleExec"):
            return []
        out = []
        for row in live.store.get("ruleExec").scan():
            _, rule, cause, effect, in_t, out_t, is_event = row.values
            if effect == tid:
                out.append(
                    fmt.rule_exec_record(
                        node, rule, cause, effect, in_t, out_t, is_event
                    )
                )
        return out

    def source_of(self, node: str, tid: int) -> Optional[PyTuple]:
        live = self._nodes.get(node)
        if live is None or live.registry is None:
            return None
        return live.registry.source_of(tid)

    def contents_of(self, node: str, tid: int) -> Optional[Dict[str, Any]]:
        live = self._nodes.get(node)
        if live is None or live.registry is None:
            return None
        tup = live.registry.lookup(tid)
        if tup is None:
            return None
        return fmt.tuple_payload(tup)


class StoreProvider:
    """Graph provider over a (possibly closed) forensic store."""

    def __init__(self, store) -> None:
        self._store = store

    def edges_to(self, node: str, tid: int) -> List[Dict[str, Any]]:
        return self._store.edges_to(node, tid)

    def source_of(self, node: str, tid: int) -> Optional[PyTuple]:
        return self._store.source_of(node, tid)

    def contents_of(self, node: str, tid: int) -> Optional[Dict[str, Any]]:
        return self._store.contents_of(node, tid)


@dataclass
class Slice:
    """One backward slice, in canonical (sorted) form."""

    node: str
    tid: int
    #: Rule-execution edges in the slice (event *and* precondition).
    links: List[Dict[str, Any]] = field(default_factory=list)
    #: Cross-node hops followed: receiver (node, tid) -> sender.
    hops: List[Dict[str, Any]] = field(default_factory=list)
    #: Leaf inputs: tuples with no recorded producer (injected or
    #: beyond retention), with their payload when one is known.
    inputs: List[Dict[str, Any]] = field(default_factory=list)
    #: True when the walk hit ``max_nodes`` before exhausting the graph.
    truncated: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": {"node": self.node, "tid": self.tid},
            "links": self.links,
            "hops": self.hops,
            "inputs": self.inputs,
            "truncated": self.truncated,
            "counts": {
                "links": len(self.links),
                "hops": len(self.hops),
                "inputs": len(self.inputs),
            },
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-stable for a given dependency graph."""
        return fmt.encode(self.to_dict())


def _link_sort_key(link: Dict[str, Any]):
    return (
        link["n"],
        link["e"],
        link["r"],
        not link["ev"],
        link["c"],
        link["ti"],
        link["to"],
    )


def _dedup_latest(edges: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Keep the newest edge per logical identity.

    The in-memory ``ruleExec`` table replaces rows keyed on
    (rule, cause, effect, is_event) when an execution repeats; the
    store keeps every historical record.  Deduplicating to the latest
    (max ``to``) makes both providers present the same edge set while
    the rings still hold the history.
    """
    best: Dict[PyTuple, Dict[str, Any]] = {}
    for edge in edges:
        key = (edge["n"], edge["r"], edge["c"], edge["e"], edge["ev"])
        held = best.get(key)
        if held is None or edge["to"] >= held["to"]:
            best[key] = edge
    return list(best.values())


def backward_slice(
    provider,
    node: str,
    tid: int,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> Slice:
    """BFS backward from ``(node, tid)`` to the minimal supporting set.

    Every rule-execution edge whose effect is a visited tuple is
    followed to its cause; tuples with no local producer are chased
    across the network via their recorded (SrcAddr, SrcTID); tuples
    with neither are the slice's leaf inputs.  A visited set makes the
    walk terminate on cyclic REPLACED ping-pongs.
    """
    result = Slice(node=node, tid=tid)
    queue = deque([(node, tid)])
    visited = {(node, tid)}
    expanded = 0

    while queue:
        if expanded >= max_nodes:
            result.truncated = True
            break
        expanded += 1
        current_node, current_tid = queue.popleft()
        edges = _dedup_latest(provider.edges_to(current_node, current_tid))
        hopped = False
        if not edges:
            source = provider.source_of(current_node, current_tid)
            if source is not None:
                src, src_tid = source
                if not (src == current_node and src_tid == current_tid):
                    result.hops.append(
                        {
                            "n": current_node,
                            "i": current_tid,
                            "s": src,
                            "si": src_tid,
                        }
                    )
                    hopped = True
                    if (src, src_tid) not in visited:
                        visited.add((src, src_tid))
                        queue.append((src, src_tid))
        if not edges and not hopped:
            result.inputs.append(
                {
                    "n": current_node,
                    "i": current_tid,
                    "rep": provider.contents_of(current_node, current_tid),
                }
            )
            continue
        for edge in edges:
            result.links.append(edge)
            upstream = (current_node, edge["c"])
            if upstream not in visited:
                visited.add(upstream)
                queue.append(upstream)

    result.links.sort(key=_link_sort_key)
    result.hops.sort(key=lambda h: (h["n"], h["i"]))
    result.inputs.sort(key=lambda r: (r["n"], r["i"]))
    return result
