"""Timed fault schedules: a small DSL over the fault injector.

A :class:`FaultSchedule` is a declarative list of ``(when, kind, args)``
entries built with three combinators:

- :meth:`at` — one fault at an absolute virtual time;
- :meth:`every` — a fault repeated on a period over a bounded interval
  (expanded eagerly into ``at`` entries so the schedule stays a plain,
  comparable value);
- :meth:`window` — a fault applied at a start time and automatically
  *inverted* at an end time (partition → heal, isolate → rejoin,
  take_down → bring_up, crash → restart, rate faults → rate 0).

Entries are validated against :attr:`FaultInjector.KINDS` signatures at
build time, so a typo'd kind or wrong argument count fails when the
schedule is written rather than when the entry fires mid-campaign.

Schedules are inert data until :meth:`apply` arms them on a system's
:class:`~repro.faults.injector.FaultInjector` via the sim clock, which
makes them trivially serializable: :meth:`describe` emits the exact
text form a campaign verdict embeds, so any campaign can be re-run from
its seed or its printed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class ScheduleEntry:
    """One scheduled injection: apply ``kind(*args)`` at time ``when``."""

    when: float
    kind: str
    args: Tuple

    def describe(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"at {self.when:g}: {self.kind}({rendered})"


def _rate_inverse(kind: str) -> Callable[[Tuple], Tuple[str, Tuple]]:
    return lambda args: (kind, (0.0,))


#: kind → function(args) -> (inverse kind, inverse args).  Kinds absent
#: here are irreversible and rejected by :meth:`window`.  ``crash``
#: inverts to ``restart`` (durable-state recovery), so
#: ``window(t0, t1, "crash", addr)`` models a crash–restart cycle with
#: ``t1 - t0`` seconds of downtime — it requires a RecoveryManager on
#: the target system at fire time.
INVERSES: Dict[str, Callable[[Tuple], Tuple[str, Tuple]]] = {
    "crash": lambda args: ("restart", args),
    "partition": lambda args: ("heal", args),
    "isolate": lambda args: ("rejoin", args),
    "take_down": lambda args: ("bring_up", args),
    "loss": _rate_inverse("loss"),
    "reorder": _rate_inverse("reorder"),
    "duplicate": _rate_inverse("duplicate"),
    "link_loss": lambda args: ("link_loss", (args[0], args[1], 0.0)),
    # A slow-node window restores full speed at the end.  traffic_storm
    # is deliberately absent: its duration is an argument, so it is
    # self-terminating and belongs in at() entries.
    "slow_node": lambda args: ("slow_node", (args[0], 1.0)),
}


class FaultSchedule:
    """An ordered, immutable-once-applied plan of fault injections."""

    def __init__(self) -> None:
        self._entries: List[ScheduleEntry] = []
        self._applied = False

    # ------------------------------------------------------------------
    # Builders (each returns self for chaining)

    def at(self, when: float, kind: str, *args) -> "FaultSchedule":
        """Inject ``kind(*args)`` at absolute virtual time ``when``."""
        self._check_mutable()
        if when < 0:
            raise ReproError(f"schedule time must be non-negative: {when}")
        # Build-time validation: a typo'd kind or wrong arity fails
        # here, not mid-campaign when the entry finally fires.
        FaultInjector.validate_call(kind, tuple(args))
        self._entries.append(ScheduleEntry(when, kind, tuple(args)))
        return self

    def every(
        self,
        period: float,
        kind: str,
        *args,
        start: Optional[float] = None,
        until: float,
    ) -> "FaultSchedule":
        """Repeat ``kind(*args)`` each ``period`` seconds in
        [start, until] (start defaults to one period in)."""
        if period <= 0:
            raise ReproError(f"period must be positive: {period}")
        when = period if start is None else start
        if until < when:
            raise ReproError(
                f"'until' ({until}) precedes the first firing ({when})"
            )
        while when <= until + 1e-12:
            self.at(when, kind, *args)
            when += period
        return self

    def window(
        self, start: float, end: float, kind: str, *args
    ) -> "FaultSchedule":
        """Apply a fault at ``start`` and its inverse at ``end``."""
        if end <= start:
            raise ReproError(f"empty fault window [{start}, {end}]")
        inverse = INVERSES.get(kind)
        if inverse is None:
            raise ReproError(
                f"fault kind {kind!r} has no inverse; use at() instead"
            )
        self.at(start, kind, *args)
        inv_kind, inv_args = inverse(tuple(args))
        self.at(end, inv_kind, *inv_args)
        return self

    # ------------------------------------------------------------------

    def entries(self) -> List[ScheduleEntry]:
        """Entries in firing order (ties keep insertion order)."""
        return sorted(self._entries, key=lambda e: e.when)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def end_time(self) -> float:
        """Time of the last entry (0 for an empty schedule) — after
        this, every windowed fault has been healed."""
        if not self._entries:
            return 0.0
        return max(e.when for e in self._entries)

    def apply(
        self, injector: FaultInjector, offset: float = 0.0
    ) -> None:
        """Arm every entry on the injector's sim clock (once).

        ``offset`` shifts the whole schedule, so schedules written in
        time-relative form ("10s into the campaign") can be armed after
        an arbitrary stabilization phase.
        """
        if self._applied:
            raise ReproError("schedule already applied")
        self._applied = True
        entries = self.entries()
        for entry in entries:
            injector.apply_at(offset + entry.when, entry.kind, *entry.args)
        tel = injector.system.telemetry
        if tel.enabled and entries:
            sim = injector.system.sim
            tel.event(
                "phase", phase="fault_schedule_armed",
                entries=len(entries), offset=offset,
            )
            first = offset + entries[0].when
            last = offset + self.end_time
            sim.schedule_at(
                first, lambda: tel.event("phase", phase="fault_window_begin")
            )
            sim.schedule_at(
                last, lambda: tel.event("phase", phase="fault_window_end")
            )

    def describe(self) -> List[str]:
        """One line per entry, in firing order (embedded in verdicts)."""
        return [entry.describe() for entry in self.entries()]

    def _check_mutable(self) -> None:
        if self._applied:
            raise ReproError("cannot modify an applied schedule")

    def __repr__(self) -> str:
        return f"<FaultSchedule {len(self._entries)} entries>"
