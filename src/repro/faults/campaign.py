"""Randomized fault campaigns: monitors under adversarial load.

A :class:`FaultCampaign` samples a randomized
:class:`~repro.faults.schedule.FaultSchedule` from a seeded RNG, runs a
Chord ring with the paper's ring and oscillation monitors attached,
drives the schedule through its fault window, and emits a structured
:class:`CampaignVerdict`:

- **converged** — the ring is oracle-correct after the recovery phase;
- **sound** — every alarm raised during the fault window cleared
  within ``clear_grace`` seconds of the last heal (no stuck alarms);
- the full alarm timeline, the applied schedule in reproducible text
  form, and the network's transport counters (retransmissions,
  per-reason drops, suppressed duplicates).

Same seed + same config ⇒ byte-for-byte identical verdict
(:meth:`CampaignVerdict.fingerprint`), which is what the regression
tests pin and what ``python -m repro.faults.campaign --seeds ...``
prints for the CI smoke job.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chord.harness import ChordNetwork
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.monitors.oscillation import OscillationMonitor
from repro.monitors.ring import RingProbeMonitor
from repro.net.network import ReliableConfig


@dataclass
class CampaignConfig:
    """Knobs of one campaign run (defaults fit an 8-node smoke ring)."""

    num_nodes: int = 8
    transport: str = "reliable"
    reliable: Optional[ReliableConfig] = None
    stabilize_time: float = 240.0
    #: Fault windows start up to this far into the campaign phase.
    fault_lead: float = 10.0
    #: Longest fault window (windows are sampled within it).
    fault_duration: float = 60.0
    #: Observation window after the last heal; must exceed
    #: ``clear_grace`` so late alarms are actually observable.
    recovery_time: float = 260.0
    #: Alarms must stop within this many seconds after the last heal.
    #: The bound is set by the monitors themselves: the oscillation
    #: detector's ``repeatOscill`` is a windowed aggregate over a 120 s
    #: ``oscill`` table checked every ``tOscCheck``, so genuinely
    #: transient oscillation near heal time keeps the aggregate firing
    #: for up to ~155 s afterwards — that is correct monitor behaviour,
    #: not a stuck alarm.
    clear_grace: float = 200.0
    max_faults: int = 3
    ring_probe_period: float = 15.0
    oscillation_check: float = 20.0
    #: Include irreversible crashes in the sampled fault mix.
    allow_crash: bool = False
    #: Churn mode: protect every node with durable checkpoint+WAL state
    #: (:mod:`repro.recovery`) and add sampled crash→restart windows to
    #: the schedule.  Restarted nodes replay their durable image and
    #: re-join the ring; the verdict records each recovery outcome.
    churn: bool = False
    #: Most crash–restart cycles per churn campaign (distinct nodes).
    max_restarts: int = 2
    #: Sampled downtime bounds for churn windows (seconds).
    min_down: float = 8.0
    max_down: float = 45.0
    #: Checkpoint period for churn-mode durable protection.
    checkpoint_interval: float = 20.0
    #: Run with the telemetry plane enabled (spans, flight recorder,
    #: fault/alarm events).  Implied by ``artifact_dir``.
    observability: bool = False
    #: Export telemetry artifacts here after the run (trace + JSONL +
    #: Prometheus, prefix ``campaign_seed<seed>``); the verdict embeds
    #: the JSONL path so a failure can be replayed in Perfetto or
    #: ``python -m repro.obs summarize``.
    artifact_dir: Optional[str] = None

    def reliable_config(self) -> ReliableConfig:
        return self.reliable if self.reliable is not None else ReliableConfig()


@dataclass
class CampaignVerdict:
    """Everything a campaign observed, reproducible from its seed."""

    seed: int
    transport: str
    stabilized: bool
    converged: bool
    sound: bool
    heal_time: float
    last_alarm_time: Optional[float]
    alarm_counts: Dict[str, int]
    alarms: List[Tuple[float, str, str]] = field(default_factory=list)
    schedule: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: Recovery outcomes in churn mode: one ``(time, node, replayed,
    #: lapsed)`` entry per crash–restart performed.
    restarts: List[Tuple[float, str, int, int]] = field(default_factory=list)
    #: Path of the exported telemetry JSONL artifact (None when the
    #: campaign ran without ``artifact_dir``).
    artifact: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.stabilized and self.converged and self.sound

    def fingerprint(self) -> str:
        """Canonical JSON of the whole verdict — byte-for-byte stable
        across runs of the same seed/config."""
        return json.dumps(
            {
                "seed": self.seed,
                "transport": self.transport,
                "stabilized": self.stabilized,
                "converged": self.converged,
                "sound": self.sound,
                "heal_time": round(self.heal_time, 6),
                "last_alarm_time": (
                    None
                    if self.last_alarm_time is None
                    else round(self.last_alarm_time, 6)
                ),
                "alarm_counts": self.alarm_counts,
                "alarms": [
                    [round(t, 6), event, node]
                    for t, event, node in self.alarms
                ],
                "schedule": self.schedule,
                "counters": self.counters,
                "drop_reasons": self.drop_reasons,
                "restarts": [
                    [round(t, 6), node, replayed, lapsed]
                    for t, node, replayed, lapsed in self.restarts
                ],
                "artifact": self.artifact,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class FaultCampaign:
    """One seeded randomized campaign over a monitored Chord ring."""

    #: Reversible fault kinds the sampler draws from (weights are the
    #: repetition counts in this list).
    FAULT_MENU = [
        "partition",
        "partition",
        "isolate",
        "loss",
        "link_loss",
        "duplicate",
        "reorder",
    ]

    def __init__(
        self, seed: int, config: Optional[CampaignConfig] = None
    ) -> None:
        self.seed = seed
        self.config = config if config is not None else CampaignConfig()

    # ------------------------------------------------------------------
    # Schedule sampling

    def sample_schedule(self, addresses: List[str]) -> FaultSchedule:
        """Draw a randomized, fully-healed fault schedule.

        Times are relative (the runner arms the schedule at the end of
        stabilization).  Every sampled fault is a window, so by
        ``schedule.end_time`` the system is fault-free by construction
        — the precondition of the soundness verdict.
        """
        config = self.config
        rng = random.Random((self.seed * 0x9E3779B1 + 0xFA01) & 0xFFFFFFFF)
        schedule = FaultSchedule()
        menu = list(self.FAULT_MENU)
        if config.allow_crash:
            menu.append("crash")
        for _ in range(rng.randint(1, config.max_faults)):
            start = rng.uniform(1.0, config.fault_lead)
            end = start + rng.uniform(
                0.3 * config.fault_duration, config.fault_duration
            )
            kind = rng.choice(menu)
            if kind == "partition":
                a, b = rng.sample(addresses, 2)
                schedule.window(start, end, "partition", a, b)
            elif kind == "isolate":
                schedule.window(
                    start, end, "isolate", rng.choice(addresses)
                )
            elif kind == "loss":
                schedule.window(
                    start, end, "loss", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "link_loss":
                a, b = rng.sample(addresses, 2)
                schedule.window(
                    start,
                    end,
                    "link_loss",
                    a,
                    b,
                    round(rng.uniform(0.2, 0.6), 3),
                )
            elif kind == "duplicate":
                schedule.window(
                    start, end, "duplicate", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "reorder":
                schedule.window(
                    start, end, "reorder", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "crash":
                schedule.at(start, "crash", rng.choice(addresses))
        if config.churn:
            # Crash→restart windows on distinct nodes: the window's
            # inverse (crash → restart) recovers each node from its
            # durable image after the sampled downtime.
            count = rng.randint(1, config.max_restarts)
            count = min(count, max(1, len(addresses) - 1))
            for addr in rng.sample(sorted(addresses), count):
                start = rng.uniform(1.0, config.fault_lead)
                down = rng.uniform(config.min_down, config.max_down)
                schedule.window(start, start + down, "crash", addr)
        return schedule

    # ------------------------------------------------------------------
    # Running

    def run(self, control: bool = False) -> CampaignVerdict:
        """Run the campaign; with ``control=True`` no faults are
        injected (the zero-alarm baseline the soundness tests compare
        against)."""
        config = self.config
        net = ChordNetwork(
            num_nodes=config.num_nodes,
            seed=self.seed,
            transport=config.transport,
            reliable=config.reliable_config(),
            observability=config.observability or bool(config.artifact_dir),
        )
        net.start()
        stabilized = net.wait_stable(max_time=config.stabilize_time)

        # Churn mode: durable protection attaches after stabilization
        # (the baseline checkpoint captures the stable ring), in control
        # runs too so both arms carry identical durability work.
        recovery = None
        if config.churn:
            recovery = net.enable_recovery(
                checkpoint_interval=config.checkpoint_interval
            )

        nodes = [net.node(a) for a in net.live_addresses()]
        ring_monitor = RingProbeMonitor(
            probe_period=config.ring_probe_period
        )
        osc_monitor = OscillationMonitor(
            check_period=config.oscillation_check
        )
        handles = [ring_monitor.install(nodes), osc_monitor.install(nodes)]

        # Timestamped alarm timeline (MonitorHandle keeps only tuples).
        alarms: List[Tuple[float, str, str]] = []
        events = [
            name
            for handle in handles
            for name in handle.monitor.alarm_events
        ]
        sim = net.system.sim
        for node in nodes:
            for event in events:
                node.subscribe(
                    event,
                    lambda tup, _e=event, _n=node.address: alarms.append(
                        (sim.now, _e, _n)
                    ),
                )

        # Crash wipes a node's subscriptions (P2Node.stop detaches all
        # callbacks), so each restart must re-attach the alarm taps on
        # the fresh node — and gets recorded as a recovery outcome.
        recoveries: List[Tuple[float, str, int, int]] = []
        if recovery is not None:

            def resubscribe(addr, new_node, report):
                recoveries.append(
                    (sim.now, addr, report.replayed, report.lapsed)
                )
                for event in events:
                    new_node.subscribe(
                        event,
                        lambda tup, _e=event, _n=addr: alarms.append(
                            (sim.now, _e, _n)
                        ),
                    )

            recovery.on_restart.append(resubscribe)

        armed_at = net.system.now
        if control:
            schedule = FaultSchedule()
        else:
            schedule = self.sample_schedule(net.live_addresses())
            injector = FaultInjector(net.system)
            schedule.apply(injector, offset=armed_at)
        heal_time = armed_at + schedule.end_time

        # Chord's failure recovery: a node evicted during a long
        # isolation must re-join through the landmark once the network
        # heals (its neighbors dropped it and its own successor
        # expired).  No-op for nodes that kept a successor.
        if not control:
            sim.schedule_at(
                heal_time + 10.0,
                lambda: [
                    net.ensure_joined(a) for a in net.live_addresses()
                ],
            )

        net.run_for(schedule.end_time + config.recovery_time)
        converged = net.wait_stable(max_time=60.0)

        stats = net.system.network.stats
        alarm_counts: Dict[str, int] = {}
        for _, event, _ in alarms:
            alarm_counts[event] = alarm_counts.get(event, 0) + 1
        last_alarm = max((t for t, _, _ in alarms), default=None)
        sound = (
            last_alarm is None
            or last_alarm <= heal_time + config.clear_grace
        )
        if control:
            sound = not alarms
        artifact = None
        if config.artifact_dir:
            prefix = f"campaign_seed{self.seed}"
            if control:
                prefix += "_control"
            paths = net.system.export_telemetry(
                config.artifact_dir,
                prefix=prefix,
                meta={
                    "seed": self.seed,
                    "transport": config.transport,
                    "nodes": config.num_nodes,
                    "control": control,
                },
            )
            artifact = paths["jsonl"]
        return CampaignVerdict(
            seed=self.seed,
            transport=config.transport,
            stabilized=stabilized,
            converged=converged,
            sound=sound,
            heal_time=heal_time,
            last_alarm_time=last_alarm,
            alarm_counts=alarm_counts,
            alarms=alarms,
            schedule=schedule.describe(),
            restarts=recoveries,
            counters={
                "messages_sent": stats.messages_sent,
                "messages_delivered": stats.messages_delivered,
                "messages_dropped": stats.messages_dropped,
                "messages_retransmitted": stats.messages_retransmitted,
                "duplicates_suppressed": stats.duplicates_suppressed,
                "send_failures": stats.send_failures,
                "gap_skips": stats.gap_skips,
                "acks_sent": stats.acks_sent,
            },
            drop_reasons=dict(stats.drop_reasons),
            artifact=artifact,
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run fixed-seed campaigns and print verdicts.

    Used by the nightly ``campaign-smoke`` CI job::

        python -m repro.faults.campaign --seeds 0 1 2
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument(
        "--transport", choices=["udp", "reliable"], default="reliable"
    )
    parser.add_argument(
        "--control", action="store_true", help="run without faults"
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="enable durable recovery and add crash-restart windows",
    )
    parser.add_argument(
        "--verdicts",
        metavar="FILE",
        default=None,
        help="append each seed's canonical verdict JSON to FILE "
        "(one line per seed, for CI artifact upload)",
    )
    parser.add_argument(
        "--fingerprints",
        action="store_true",
        help="print the canonical verdict JSON per seed",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="run with telemetry enabled and export trace/JSONL/Prometheus "
        "artifacts per seed into DIR",
    )
    args = parser.parse_args(argv)

    failures = 0
    verdict_lines = []
    for seed in args.seeds:
        config = CampaignConfig(
            num_nodes=args.nodes,
            transport=args.transport,
            artifact_dir=args.artifacts,
            churn=args.churn,
        )
        verdict = FaultCampaign(seed, config).run(control=args.control)
        status = "PASS" if verdict.passed else "FAIL"
        print(
            f"[{status}] seed={seed} converged={verdict.converged} "
            f"sound={verdict.sound} alarms={verdict.alarm_counts} "
            f"retransmits={verdict.counters['messages_retransmitted']} "
            f"drops={verdict.drop_reasons}"
        )
        for line in verdict.schedule:
            print(f"         {line}")
        if verdict.restarts:
            for t, node, replayed, lapsed in verdict.restarts:
                print(
                    f"         restart {node} at {t:g}: "
                    f"replayed={replayed} lapsed={lapsed}"
                )
        if verdict.artifact:
            print(f"         artifact: {verdict.artifact}")
        if args.fingerprints:
            print(verdict.fingerprint())
        if args.verdicts:
            verdict_lines.append(verdict.fingerprint())
        if not verdict.passed:
            failures += 1
    if args.verdicts:
        with open(args.verdicts, "a") as handle:
            for line in verdict_lines:
                handle.write(line + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
