"""Randomized fault campaigns: monitors under adversarial load.

A :class:`FaultCampaign` samples a randomized
:class:`~repro.faults.schedule.FaultSchedule` from a seeded RNG, runs a
Chord ring with the paper's ring and oscillation monitors attached,
drives the schedule through its fault window, and emits a structured
:class:`CampaignVerdict`:

- **converged** — the ring is oracle-correct after the recovery phase;
- **sound** — every alarm raised during the fault window cleared
  within ``clear_grace`` seconds of the last heal (no stuck alarms);
- the full alarm timeline, the applied schedule in reproducible text
  form, and the network's transport counters (retransmissions,
  per-reason drops, suppressed duplicates).

Same seed + same config ⇒ byte-for-byte identical verdict
(:meth:`CampaignVerdict.fingerprint`), which is what the regression
tests pin and what ``python -m repro.faults.campaign --seeds ...``
prints for the CI smoke job.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chord.harness import ChordNetwork
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.monitors.oscillation import OscillationMonitor
from repro.monitors.ring import RingProbeMonitor
from repro.net.network import ReliableConfig
from repro.overload.controller import OverloadConfig
from repro.overload.policy import CLASSES
from repro.sim.batch import ExecutionConfig
from repro.store.store import StoreConfig


@dataclass
class CampaignConfig:
    """Knobs of one campaign run (defaults fit an 8-node smoke ring)."""

    num_nodes: int = 8
    transport: str = "reliable"
    reliable: Optional[ReliableConfig] = None
    stabilize_time: float = 240.0
    #: Fault windows start up to this far into the campaign phase.
    fault_lead: float = 10.0
    #: Longest fault window (windows are sampled within it).
    fault_duration: float = 60.0
    #: Observation window after the last heal; must exceed
    #: ``clear_grace`` so late alarms are actually observable.
    recovery_time: float = 260.0
    #: Alarms must stop within this many seconds after the last heal.
    #: The bound is set by the monitors themselves: the oscillation
    #: detector's ``repeatOscill`` is a windowed aggregate over a 120 s
    #: ``oscill`` table checked every ``tOscCheck``, so genuinely
    #: transient oscillation near heal time keeps the aggregate firing
    #: for up to ~155 s afterwards — that is correct monitor behaviour,
    #: not a stuck alarm.
    clear_grace: float = 200.0
    max_faults: int = 3
    ring_probe_period: float = 15.0
    oscillation_check: float = 20.0
    #: Include irreversible crashes in the sampled fault mix.
    allow_crash: bool = False
    #: Churn mode: protect every node with durable checkpoint+WAL state
    #: (:mod:`repro.recovery`) and add sampled crash→restart windows to
    #: the schedule.  Restarted nodes replay their durable image and
    #: re-join the ring; the verdict records each recovery outcome.
    churn: bool = False
    #: Most crash–restart cycles per churn campaign (distinct nodes).
    max_restarts: int = 2
    #: Sampled downtime bounds for churn windows (seconds).
    min_down: float = 8.0
    max_down: float = 45.0
    #: Checkpoint period for churn-mode durable protection.
    checkpoint_interval: float = 20.0
    #: Storm mode: replace the reversible-fault menu with randomized
    #: ``traffic_storm`` bursts (plus sampled ``slow_node`` windows)
    #: against overload-protected nodes.  The verdict gains an
    #: ``overload`` summary — per-class offered/admitted/shed/deferred,
    #: BUSY nacks, queue peaks, the priority invariant, and post-heal
    #: lookup outcomes — and ``passed`` requires the invariant to hold.
    storm: bool = False
    #: Overload config for every node in storm mode (None derives one
    #: from ``shedding``: bounded queues with ``service_time=0.002``,
    #: or unbounded observe-only for the control arm).
    overload: Optional[OverloadConfig] = None
    #: False runs the storm control arm: unbounded queues, shedding
    #: off — the verdict's queue peaks demonstrate unbounded growth.
    shedding: bool = True
    max_storms: int = 2
    #: Storm arrival-rate bounds (msgs / virtual second).  With the
    #: default 2 ms service time the node drains 500 msg/s, so these
    #: are ~1.4–2.4x saturation.
    storm_rate_min: float = 700.0
    storm_rate_max: float = 1200.0
    storm_duration_min: float = 4.0
    storm_duration_max: float = 10.0
    #: Probability each storm is accompanied by a slow_node window.
    slow_node_prob: float = 0.5
    #: Post-heal Chord lookups asserted in the storm verdict.
    storm_lookups: int = 3
    #: Run with the telemetry plane enabled (spans, flight recorder,
    #: fault/alarm events).  Implied by ``artifact_dir``.
    observability: bool = False
    #: Export telemetry artifacts here after the run (trace + JSONL +
    #: Prometheus, prefix ``campaign_seed<seed>``); the verdict embeds
    #: the JSONL path so a failure can be replayed in Perfetto or
    #: ``python -m repro.obs summarize``.
    artifact_dir: Optional[str] = None
    #: Execution mode (:mod:`repro.sim.batch`): None keeps the original
    #: continuous-time per-tuple loop; an :class:`ExecutionConfig`
    #: selects tick mode, and the batch-vs-per-tuple differential
    #: battery pins that the verdict fingerprint is identical across
    #: batch sizes for a given tick.
    execution: Optional[ExecutionConfig] = None
    #: Run every node traced + logged with a durable forensic store
    #: (:mod:`repro.store`) spilling under ``<store_dir>/seed<seed>``.
    #: The verdict embeds the manifest path, segment names, and totals —
    #: in the fingerprint, the same way the telemetry JSONL pointer is —
    #: so a failing seed's history can be sliced offline with
    #: ``python -m repro.store slice``.
    store_dir: Optional[str] = None
    #: Ring capacities for store-enabled campaigns (small rings force
    #: rotation, proving the store carries what memory dropped).
    trace_entries: int = 5000
    log_capacity: int = 2000

    def reliable_config(self) -> ReliableConfig:
        if self.reliable is not None:
            return self.reliable
        if self.storm:
            # Bounded transport queues in storm mode: a capped sender
            # window + backlog (overflow is a sender-visible drop) and a
            # capped receiver reorder buffer, so a BUSY-induced sequence
            # gap cannot park an unbounded pile of admitted frames that
            # would later dump into the mailbox all at once.
            return ReliableConfig(window=64, backlog=512, reorder_cap=64)
        return ReliableConfig()

    def storm_overload(self) -> OverloadConfig:
        """The per-node overload config a storm campaign runs with."""
        if self.overload is not None:
            return self.overload
        if self.shedding:
            return OverloadConfig(service_time=0.002)
        # Control arm: same service rate, but unbounded queues and no
        # shedding — depth peaks show what the protection prevents.
        return OverloadConfig(
            mailbox_capacity=None,
            strand_queue_capacity=None,
            service_time=0.002,
            shedding=False,
        )


@dataclass
class CampaignVerdict:
    """Everything a campaign observed, reproducible from its seed."""

    seed: int
    transport: str
    stabilized: bool
    converged: bool
    sound: bool
    heal_time: float
    last_alarm_time: Optional[float]
    alarm_counts: Dict[str, int]
    alarms: List[Tuple[float, str, str]] = field(default_factory=list)
    schedule: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    drop_reasons: Dict[str, int] = field(default_factory=dict)
    #: Recovery outcomes in churn mode: one ``(time, node, replayed,
    #: lapsed)`` entry per crash–restart performed.
    restarts: List[Tuple[float, str, int, int]] = field(default_factory=list)
    #: Storm-mode overload summary (None outside storm mode): per-class
    #: shed accounting aggregated over nodes, transport backpressure
    #: counters, queue depth peaks, the priority invariant, and
    #: post-heal lookup outcomes.
    overload: Optional[Dict] = None
    #: Path of the exported telemetry JSONL artifact (None when the
    #: campaign ran without ``artifact_dir``).
    artifact: Optional[str] = None
    #: Forensic-store pointers (None without ``store_dir``): manifest
    #: path, segment file names, and write totals, fingerprint-embedded
    #: like ``artifact``.
    store: Optional[Dict] = None

    @property
    def passed(self) -> bool:
        ok = self.stabilized and self.converged and self.sound
        if self.overload is not None:
            ok = (
                ok
                and self.overload["invariant_ok"]
                and all(r[1] for r in self.overload["lookups"])
            )
        return ok

    def fingerprint(self) -> str:
        """Canonical JSON of the whole verdict — byte-for-byte stable
        across runs of the same seed/config."""
        return json.dumps(
            {
                "seed": self.seed,
                "transport": self.transport,
                "stabilized": self.stabilized,
                "converged": self.converged,
                "sound": self.sound,
                "heal_time": round(self.heal_time, 6),
                "last_alarm_time": (
                    None
                    if self.last_alarm_time is None
                    else round(self.last_alarm_time, 6)
                ),
                "alarm_counts": self.alarm_counts,
                "alarms": [
                    [round(t, 6), event, node]
                    for t, event, node in self.alarms
                ],
                "schedule": self.schedule,
                "counters": self.counters,
                "drop_reasons": self.drop_reasons,
                "restarts": [
                    [round(t, 6), node, replayed, lapsed]
                    for t, node, replayed, lapsed in self.restarts
                ],
                "overload": self.overload,
                "artifact": self.artifact,
                "store": self.store,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class FaultCampaign:
    """One seeded randomized campaign over a monitored Chord ring."""

    #: Reversible fault kinds the sampler draws from (weights are the
    #: repetition counts in this list).
    FAULT_MENU = [
        "partition",
        "partition",
        "isolate",
        "loss",
        "link_loss",
        "duplicate",
        "reorder",
    ]

    def __init__(
        self, seed: int, config: Optional[CampaignConfig] = None
    ) -> None:
        self.seed = seed
        self.config = config if config is not None else CampaignConfig()
        # Storms outlive their at() entries by their duration argument;
        # sampling records the true quiet time here so heal_time (and
        # the soundness window) starts after the last storm ends.
        self._storm_end = 0.0

    # ------------------------------------------------------------------
    # Schedule sampling

    def sample_schedule(self, addresses: List[str]) -> FaultSchedule:
        """Draw a randomized, fully-healed fault schedule.

        Times are relative (the runner arms the schedule at the end of
        stabilization).  Every sampled fault is a window, so by
        ``schedule.end_time`` the system is fault-free by construction
        — the precondition of the soundness verdict.
        """
        config = self.config
        rng = random.Random((self.seed * 0x9E3779B1 + 0xFA01) & 0xFFFFFFFF)
        schedule = FaultSchedule()
        if config.storm:
            return self._sample_storms(rng, schedule, addresses)
        menu = list(self.FAULT_MENU)
        if config.allow_crash:
            menu.append("crash")
        for _ in range(rng.randint(1, config.max_faults)):
            start = rng.uniform(1.0, config.fault_lead)
            end = start + rng.uniform(
                0.3 * config.fault_duration, config.fault_duration
            )
            kind = rng.choice(menu)
            if kind == "partition":
                a, b = rng.sample(addresses, 2)
                schedule.window(start, end, "partition", a, b)
            elif kind == "isolate":
                schedule.window(
                    start, end, "isolate", rng.choice(addresses)
                )
            elif kind == "loss":
                schedule.window(
                    start, end, "loss", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "link_loss":
                a, b = rng.sample(addresses, 2)
                schedule.window(
                    start,
                    end,
                    "link_loss",
                    a,
                    b,
                    round(rng.uniform(0.2, 0.6), 3),
                )
            elif kind == "duplicate":
                schedule.window(
                    start, end, "duplicate", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "reorder":
                schedule.window(
                    start, end, "reorder", round(rng.uniform(0.05, 0.3), 3)
                )
            elif kind == "crash":
                schedule.at(start, "crash", rng.choice(addresses))
        if config.churn:
            # Crash→restart windows on distinct nodes: the window's
            # inverse (crash → restart) recovers each node from its
            # durable image after the sampled downtime.
            count = rng.randint(1, config.max_restarts)
            count = min(count, max(1, len(addresses) - 1))
            for addr in rng.sample(sorted(addresses), count):
                start = rng.uniform(1.0, config.fault_lead)
                down = rng.uniform(config.min_down, config.max_down)
                schedule.window(start, start + down, "crash", addr)
        return schedule

    def _sample_storms(
        self,
        rng: random.Random,
        schedule: FaultSchedule,
        addresses: List[str],
    ) -> FaultSchedule:
        """Storm-mode sampling: traffic bursts + slow-node windows only.

        The ordinary fault menu is deliberately excluded — the storm
        verdict isolates overload behaviour from partition/loss noise.
        """
        config = self.config
        count = min(
            rng.randint(1, config.max_storms), len(addresses)
        )
        self._storm_end = 0.0
        for addr in rng.sample(sorted(addresses), count):
            start = rng.uniform(1.0, config.fault_lead)
            rate = round(
                rng.uniform(config.storm_rate_min, config.storm_rate_max), 1
            )
            duration = round(
                rng.uniform(
                    config.storm_duration_min, config.storm_duration_max
                ),
                2,
            )
            schedule.at(start, "traffic_storm", addr, rate, duration)
            self._storm_end = max(self._storm_end, start + duration)
            if rng.random() < config.slow_node_prob:
                slow_start = round(rng.uniform(start, start + duration), 2)
                slow_len = round(rng.uniform(2.0, duration), 2)
                schedule.window(
                    slow_start,
                    slow_start + slow_len,
                    "slow_node",
                    addr,
                    round(rng.uniform(1.5, 3.0), 2),
                )
                self._storm_end = max(
                    self._storm_end, slow_start + slow_len
                )
        return schedule

    # ------------------------------------------------------------------
    # Running

    def run(self, control: bool = False) -> CampaignVerdict:
        """Run the campaign; with ``control=True`` no faults are
        injected (the zero-alarm baseline the soundness tests compare
        against)."""
        config = self.config
        store_config = None
        if config.store_dir:
            import os

            leaf = f"seed{self.seed}"
            if config.storm:
                leaf += "_storm" if config.shedding else "_storm_noshed"
            if control:
                leaf += "_control"
            store_config = StoreConfig(
                directory=os.path.join(config.store_dir, leaf)
            )
        net = ChordNetwork(
            num_nodes=config.num_nodes,
            seed=self.seed,
            transport=config.transport,
            reliable=config.reliable_config(),
            observability=config.observability or bool(config.artifact_dir),
            overload=config.storm_overload() if config.storm else None,
            execution=config.execution,
            store=store_config,
            tracing=store_config is not None,
            logging=store_config is not None,
            trace_entries=config.trace_entries,
            log_capacity=config.log_capacity,
        )
        net.start()
        stabilized = net.wait_stable(max_time=config.stabilize_time)

        # Churn mode: durable protection attaches after stabilization
        # (the baseline checkpoint captures the stable ring), in control
        # runs too so both arms carry identical durability work.
        recovery = None
        if config.churn:
            recovery = net.enable_recovery(
                checkpoint_interval=config.checkpoint_interval
            )

        nodes = [net.node(a) for a in net.live_addresses()]
        ring_monitor = RingProbeMonitor(
            probe_period=config.ring_probe_period
        )
        osc_monitor = OscillationMonitor(
            check_period=config.oscillation_check
        )
        handles = [ring_monitor.install(nodes), osc_monitor.install(nodes)]

        # Timestamped alarm timeline (MonitorHandle keeps only tuples).
        alarms: List[Tuple[float, str, str]] = []
        events = [
            name
            for handle in handles
            for name in handle.monitor.alarm_events
        ]
        sim = net.system.sim
        for node in nodes:
            for event in events:
                node.subscribe(
                    event,
                    lambda tup, _e=event, _n=node.address: alarms.append(
                        (sim.now, _e, _n)
                    ),
                )

        # Crash wipes a node's subscriptions (P2Node.stop detaches all
        # callbacks), so each restart must re-attach the alarm taps on
        # the fresh node — and gets recorded as a recovery outcome.
        recoveries: List[Tuple[float, str, int, int]] = []
        if recovery is not None:

            def resubscribe(addr, new_node, report):
                recoveries.append(
                    (sim.now, addr, report.replayed, report.lapsed)
                )
                for event in events:
                    new_node.subscribe(
                        event,
                        lambda tup, _e=event, _n=addr: alarms.append(
                            (sim.now, _e, _n)
                        ),
                    )

            recovery.on_restart.append(resubscribe)

        armed_at = net.system.now
        if control:
            schedule = FaultSchedule()
        else:
            schedule = self.sample_schedule(net.live_addresses())
            injector = FaultInjector(net.system)
            schedule.apply(injector, offset=armed_at)
        # Storms run past their at() entry for their sampled duration,
        # so quiet time is the later of the last entry and the last
        # storm's end.
        quiet_after = max(schedule.end_time, self._storm_end)
        heal_time = armed_at + quiet_after

        # Chord's failure recovery: a node evicted during a long
        # isolation must re-join through the landmark once the network
        # heals (its neighbors dropped it and its own successor
        # expired).  No-op for nodes that kept a successor.
        if not control:
            sim.schedule_at(
                heal_time + 10.0,
                lambda: [
                    net.ensure_joined(a) for a in net.live_addresses()
                ],
            )
            if config.storm:
                # A storm-silenced node can still hold a stale successor
                # at heal+10 (so the first pass no-ops on it) that only
                # expires with the soft-state horizon; sweep again after
                # it so the node re-joins within the recovery window.
                sim.schedule_at(
                    heal_time + 60.0,
                    lambda: [
                        net.ensure_joined(a) for a in net.live_addresses()
                    ],
                )

        net.run_for(quiet_after + config.recovery_time)
        converged = net.wait_stable(max_time=60.0)

        # Storm mode: post-heal lookups prove the ring still routes
        # after overload — DATA (lookup traffic) survived the shedding.
        overload_summary = None
        if config.storm:
            lookups: List[List] = []
            live = sorted(net.live_addresses())
            src = live[0]
            for addr in live[: config.storm_lookups]:
                key = net.ids[addr]
                result = net.lookup(src, key, timeout=20.0)
                owner = net.lookup_owner(key)
                ok = result is not None and (
                    owner is None or result.values[3] == owner
                )
                lookups.append([addr, bool(ok)])
            overload_summary = self._overload_summary(net, lookups)

        stats = net.system.network.stats
        alarm_counts: Dict[str, int] = {}
        for _, event, _ in alarms:
            alarm_counts[event] = alarm_counts.get(event, 0) + 1
        last_alarm = max((t for t, _, _ in alarms), default=None)
        sound = (
            last_alarm is None
            or last_alarm <= heal_time + config.clear_grace
        )
        if control:
            sound = not alarms
        artifact = None
        if config.artifact_dir:
            prefix = f"campaign_seed{self.seed}"
            if config.storm:
                prefix += "_storm" if config.shedding else "_storm_noshed"
            if control:
                prefix += "_control"
            paths = net.system.export_telemetry(
                config.artifact_dir,
                prefix=prefix,
                meta={
                    "seed": self.seed,
                    "transport": config.transport,
                    "nodes": config.num_nodes,
                    "control": control,
                },
            )
            artifact = paths["jsonl"]
        store_info = None
        if store_config is not None:
            store = net.system.close_store()
            store_info = {
                "manifest": store.manifest_path(),
                "segments": store.segment_paths(),
                "records": store.records_written,
                "events": store.events_appended,
                "bytes": store.bytes_written,
                "ring_rotations": sum(
                    store.ring_rotations.values()
                ),
            }
        return CampaignVerdict(
            seed=self.seed,
            transport=config.transport,
            stabilized=stabilized,
            converged=converged,
            sound=sound,
            heal_time=heal_time,
            last_alarm_time=last_alarm,
            alarm_counts=alarm_counts,
            alarms=alarms,
            schedule=schedule.describe(),
            restarts=recoveries,
            counters={
                "messages_sent": stats.messages_sent,
                "messages_delivered": stats.messages_delivered,
                "messages_dropped": stats.messages_dropped,
                "messages_retransmitted": stats.messages_retransmitted,
                "duplicates_suppressed": stats.duplicates_suppressed,
                "send_failures": stats.send_failures,
                "gap_skips": stats.gap_skips,
                "acks_sent": stats.acks_sent,
                "busy_nacks": stats.busy_nacks,
                "backlogged": stats.backlogged,
                "held_overflow": stats.held_overflow,
            },
            drop_reasons=dict(stats.drop_reasons),
            overload=overload_summary,
            artifact=artifact,
            store=store_info,
        )

    def _overload_summary(self, net: ChordNetwork, lookups: List[List]) -> Dict:
        """Aggregate every node's overload accounting into one
        fingerprint-stable dict (sorted keys, ints and bools only)."""
        classes = {
            cls: {"offered": 0, "admitted": 0, "shed": 0, "deferred": 0}
            for cls in CLASSES
        }
        shed_reasons: Dict[str, int] = {}
        mailbox_peak = 0
        strand_peak = 0
        transitions = 0
        invariant = True
        for addr in sorted(net.system.nodes):
            ctrl = net.system.nodes[addr].overload
            if ctrl is None:
                continue
            for cls, counts in ctrl.counts.items():
                agg = classes[cls]
                agg["offered"] += counts.offered
                agg["admitted"] += counts.admitted
                agg["shed"] += counts.shed
                agg["deferred"] += counts.deferred
                for reason, n in counts.shed_reasons.items():
                    shed_reasons[reason] = shed_reasons.get(reason, 0) + n
            mailbox_peak = max(mailbox_peak, ctrl.mailbox.depth_peak)
            strand_peak = max(strand_peak, ctrl.strand_state.depth_peak)
            transitions += (
                ctrl.mailbox.state.transitions
                + ctrl.strand_state.transitions
            )
            invariant = invariant and ctrl.invariant_ok()
        return {
            "classes": classes,
            "shed_reasons": {
                reason: shed_reasons[reason]
                for reason in sorted(shed_reasons)
            },
            "mailbox_peak": mailbox_peak,
            "strand_peak": strand_peak,
            "transitions": transitions,
            "shedding": self.config.shedding,
            "invariant_ok": invariant,
            "lookups": lookups,
        }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run fixed-seed campaigns and print verdicts.

    Used by the nightly ``campaign-smoke`` CI job::

        python -m repro.faults.campaign --seeds 0 1 2
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument(
        "--transport", choices=["udp", "reliable"], default="reliable"
    )
    parser.add_argument(
        "--control", action="store_true", help="run without faults"
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="enable durable recovery and add crash-restart windows",
    )
    parser.add_argument(
        "--storm",
        action="store_true",
        help="overload mode: traffic storms + slow nodes against "
        "overload-protected nodes; asserts the priority-shedding "
        "invariant and post-heal lookups",
    )
    parser.add_argument(
        "--no-shedding",
        action="store_true",
        help="storm control arm: unbounded observe-only queues "
        "(demonstrates the growth shedding prevents)",
    )
    parser.add_argument(
        "--verdicts",
        metavar="FILE",
        default=None,
        help="append each seed's canonical verdict JSON to FILE "
        "(one line per seed, for CI artifact upload)",
    )
    parser.add_argument(
        "--fingerprints",
        action="store_true",
        help="print the canonical verdict JSON per seed",
    )
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="run with telemetry enabled and export trace/JSONL/Prometheus "
        "artifacts per seed into DIR",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="trace + log every node into a durable forensic store under "
        "DIR/seed<seed>; the verdict fingerprint embeds the manifest "
        "and segment pointers (slice offline with python -m repro.store)",
    )
    args = parser.parse_args(argv)

    failures = 0
    verdict_lines = []
    for seed in args.seeds:
        config = CampaignConfig(
            num_nodes=args.nodes,
            transport=args.transport,
            artifact_dir=args.artifacts,
            store_dir=args.store,
            churn=args.churn,
            storm=args.storm,
            shedding=not args.no_shedding,
        )
        verdict = FaultCampaign(seed, config).run(control=args.control)
        status = "PASS" if verdict.passed else "FAIL"
        print(
            f"[{status}] seed={seed} converged={verdict.converged} "
            f"sound={verdict.sound} alarms={verdict.alarm_counts} "
            f"retransmits={verdict.counters['messages_retransmitted']} "
            f"drops={verdict.drop_reasons}"
        )
        for line in verdict.schedule:
            print(f"         {line}")
        if verdict.overload is not None:
            ov = verdict.overload
            shed = {
                cls: ov["classes"][cls]["shed"] for cls in ov["classes"]
            }
            print(
                f"         overload: invariant_ok={ov['invariant_ok']} "
                f"shed={shed} deferred="
                f"{sum(c['deferred'] for c in ov['classes'].values())} "
                f"mailbox_peak={ov['mailbox_peak']} "
                f"lookups={ov['lookups']}"
            )
        if verdict.restarts:
            for t, node, replayed, lapsed in verdict.restarts:
                print(
                    f"         restart {node} at {t:g}: "
                    f"replayed={replayed} lapsed={lapsed}"
                )
        if verdict.artifact:
            print(f"         artifact: {verdict.artifact}")
        if verdict.store:
            print(
                f"         store: {verdict.store['manifest']} "
                f"segments={len(verdict.store['segments'])} "
                f"events={verdict.store['events']} "
                f"ring_rotations={verdict.store['ring_rotations']}"
            )
        if args.fingerprints:
            print(verdict.fingerprint())
        if args.verdicts:
            verdict_lines.append(verdict.fingerprint())
        if not verdict.passed:
            failures += 1
    if args.verdicts:
        with open(args.verdicts, "a") as handle:
            for line in verdict_lines:
                handle.write(line + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
