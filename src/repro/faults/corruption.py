"""Direct routing-state corruption.

These helpers overwrite a node's ring pointers with wrong values —
modelling the bugs, stale state, or malicious manipulation the paper's
ring monitors (§3.1.1-§3.1.2) exist to detect.  Corruption goes through
the normal insert path, so delta rules and monitors observe it exactly
as they would observe an organic fault.

Campaign and schedule code should prefer the injector verb
``FaultInjector.corrupt(node, relation, wrong_addr)``, which routes
through these helpers *and* records the corruption in the fault log —
so it shows up in campaign fingerprints and schedule validation.  These
functions remain the low-level implementation (and the direct entry
point for unit tests that do not want an injector).
"""

from __future__ import annotations

from repro.chord.ids import node_id_for
from repro.runtime.node import P2Node


def corrupt_pred(node: P2Node, wrong_addr: str) -> None:
    """Point ``node``'s predecessor at ``wrong_addr``."""
    node.inject(
        "pred", (node.address, node_id_for(wrong_addr, node.id_bits), wrong_addr)
    )


def corrupt_best_succ(node: P2Node, wrong_addr: str) -> None:
    """Point ``node``'s best successor at ``wrong_addr``.

    Also plants the same entry in ``succ`` so the periodic best-successor
    recomputation does not immediately repair the corruption (letting
    monitors observe it for at least one detection round).
    """
    wrong_id = node_id_for(wrong_addr, node.id_bits)
    node.inject("succ", (node.address, wrong_id, wrong_addr))
    node.inject("bestSucc", (node.address, wrong_id, wrong_addr))
