"""End-to-end fault scenarios.

:class:`OscillationScenario` reproduces the paper's §3.1.3 pathology:
a Chord variant with the *recycled dead neighbor* bug (successor gossip
adopted without checking the recently-deceased list) runs normally until
one node dies; its neighbors then oscillate between removing the dead
node (ping timeout) and re-adopting it (gossip), which the oscillation
monitor detects at all three granularities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.chord.harness import ChordNetwork
from repro.monitors.base import MonitorHandle
from repro.monitors.oscillation import OscillationMonitor


@dataclass
class OscillationReport:
    """What the scenario observed."""

    victim: str
    oscillations: int
    repeat_oscillators: List[str]
    chaotic: List[str]


class OscillationScenario:
    """Buggy Chord + one crash = observable oscillation."""

    def __init__(
        self,
        num_nodes: int = 8,
        seed: int = 0,
        check_period: float = 20.0,
        repeat_threshold: int = 3,
        chaotic_threshold: int = 2,
    ) -> None:
        self.net = ChordNetwork(
            num_nodes=num_nodes, seed=seed, recycle_dead_bug=True
        )
        self.monitor = OscillationMonitor(
            check_period=check_period,
            repeat_threshold=repeat_threshold,
            chaotic_threshold=chaotic_threshold,
        )
        self.handle: MonitorHandle = None  # set in run()

    def run(
        self, stabilize_time: float = 120.0, observe_time: float = 180.0
    ) -> OscillationReport:
        """Stabilize, install the monitor, kill a node, observe."""
        net = self.net
        net.start()
        net.wait_stable(max_time=stabilize_time)
        nodes = [net.node(a) for a in net.live_addresses()]
        self.handle = self.monitor.install(nodes)

        victim = net.live_addresses()[len(net.live_addresses()) // 2]
        net.kill(victim)
        net.run_for(observe_time)

        def about_victim(event: str) -> List[str]:
            return sorted(
                {
                    t.values[0]
                    for t in self.handle.alarms[event]
                    if t.values[1] == victim
                }
            )

        return OscillationReport(
            victim=victim,
            oscillations=sum(
                1
                for t in self.handle.alarms["oscill"]
                if t.values[1] == victim
            ),
            repeat_oscillators=about_victim("repeatOscill"),
            chaotic=about_victim("chaotic"),
        )
