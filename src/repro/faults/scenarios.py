"""End-to-end fault scenarios.

:class:`OscillationScenario` reproduces the paper's §3.1.3 pathology:
a Chord variant with the *recycled dead neighbor* bug (successor gossip
adopted without checking the recently-deceased list) runs normally until
one node dies; its neighbors then oscillate between removing the dead
node (ping timeout) and re-adopting it (gossip), which the oscillation
monitor detects at all three granularities.

:class:`TransientPartitionScenario` is the inverse demonstration —
*correct* Chord under a fault that heals.  A timed partition window
(driven by the :class:`~repro.faults.schedule.FaultSchedule` DSL)
raises monitor alarms while it lasts; once the window closes the
alarms stop.  This is the soundness contract the randomized
:class:`~repro.faults.campaign.FaultCampaign` checks in bulk, shown on
one deterministic schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.chord.harness import ChordNetwork
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.monitors.base import MonitorHandle
from repro.monitors.oscillation import OscillationMonitor
from repro.monitors.ring import RingProbeMonitor


@dataclass
class OscillationReport:
    """What the scenario observed."""

    victim: str
    oscillations: int
    repeat_oscillators: List[str]
    chaotic: List[str]


class OscillationScenario:
    """Buggy Chord + one crash = observable oscillation."""

    def __init__(
        self,
        num_nodes: int = 8,
        seed: int = 0,
        check_period: float = 20.0,
        repeat_threshold: int = 3,
        chaotic_threshold: int = 2,
    ) -> None:
        self.net = ChordNetwork(
            num_nodes=num_nodes, seed=seed, recycle_dead_bug=True
        )
        self.monitor = OscillationMonitor(
            check_period=check_period,
            repeat_threshold=repeat_threshold,
            chaotic_threshold=chaotic_threshold,
        )
        self.handle: MonitorHandle = None  # set in run()

    def run(
        self, stabilize_time: float = 120.0, observe_time: float = 180.0
    ) -> OscillationReport:
        """Stabilize, install the monitor, kill a node, observe."""
        net = self.net
        net.start()
        net.wait_stable(max_time=stabilize_time)
        nodes = [net.node(a) for a in net.live_addresses()]
        self.handle = self.monitor.install(nodes)

        victim = net.live_addresses()[len(net.live_addresses()) // 2]
        net.kill(victim)
        net.run_for(observe_time)

        def about_victim(event: str) -> List[str]:
            return sorted(
                {
                    t.values[0]
                    for t in self.handle.alarms[event]
                    if t.values[1] == victim
                }
            )

        return OscillationReport(
            victim=victim,
            oscillations=sum(
                1
                for t in self.handle.alarms["oscill"]
                if t.values[1] == victim
            ),
            repeat_oscillators=about_victim("repeatOscill"),
            chaotic=about_victim("chaotic"),
        )


@dataclass
class TransientFaultReport:
    """Alarm timeline of one healed fault window."""

    schedule: List[str]
    heal_time: float
    #: Timestamped ``(time, event, reporting node)`` alarm records.
    alarms: List[Tuple[float, str, str]]
    converged: bool

    def alarms_after(self, when: float) -> List[Tuple[float, str, str]]:
        return [record for record in self.alarms if record[0] > when]

    def cleared_within(self, grace: float) -> bool:
        """True if no alarm fired later than ``grace`` seconds past the
        heal (the campaign runner's soundness predicate)."""
        return not self.alarms_after(self.heal_time + grace)


class TransientPartitionScenario:
    """Correct Chord + a partition window that heals = alarms that clear."""

    def __init__(
        self,
        num_nodes: int = 8,
        seed: int = 0,
        transport: str = "reliable",
        probe_period: float = 15.0,
        check_period: float = 20.0,
    ) -> None:
        self.net = ChordNetwork(
            num_nodes=num_nodes, seed=seed, transport=transport
        )
        self.ring_monitor = RingProbeMonitor(probe_period=probe_period)
        self.osc_monitor = OscillationMonitor(check_period=check_period)

    def run(
        self,
        stabilize_time: float = 240.0,
        fault_start: float = 5.0,
        fault_duration: float = 45.0,
        observe_time: float = 260.0,
    ) -> TransientFaultReport:
        """Stabilize, partition two ring neighbors for a window, heal,
        observe the alarm timeline."""
        net = self.net
        net.start()
        net.wait_stable(max_time=stabilize_time)
        nodes = [net.node(a) for a in net.live_addresses()]
        handles = [
            self.ring_monitor.install(nodes),
            self.osc_monitor.install(nodes),
        ]

        alarms: List[Tuple[float, str, str]] = []
        sim = net.system.sim
        for node in nodes:
            for handle in handles:
                for event in handle.monitor.alarm_events:
                    node.subscribe(
                        event,
                        lambda tup, _e=event, _n=node.address: alarms.append(
                            (sim.now, _e, _n)
                        ),
                    )

        # Partition a node from its current successor: the fault every
        # ring probe and oscillation rule is pointed at.
        victim = net.live_addresses()[0]
        succ = net.best_succ_of(victim)
        schedule = FaultSchedule()
        schedule.window(
            fault_start, fault_start + fault_duration, "partition",
            victim, succ,
        )
        armed_at = net.system.now
        schedule.apply(FaultInjector(net.system), offset=armed_at)
        heal_time = armed_at + schedule.end_time

        net.run_for(schedule.end_time + observe_time)
        converged = net.wait_stable(max_time=60.0)
        return TransientFaultReport(
            schedule=schedule.describe(),
            heal_time=heal_time,
            alarms=alarms,
            converged=converged,
        )
