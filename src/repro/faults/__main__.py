"""``python -m repro.faults`` — run fixed-seed fault campaigns."""

from repro.faults.campaign import main

raise SystemExit(main())
