"""Fault injection: crashes, partitions, loss, state corruption, and the
scripted fault scenarios the monitoring examples/tests detect.

The paper's detectors are only demonstrable against misbehaving systems;
this package supplies the misbehaviour:

- :mod:`repro.faults.injector` — node crashes (immediate or scheduled),
  link partitions, loss/reorder/duplication control, and the schedule
  dispatch vocabulary;
- :mod:`repro.faults.schedule` — the timed fault-schedule DSL
  (at/every/window entries armed on the sim clock);
- :mod:`repro.faults.campaign` — seeded randomized fault campaigns over
  a monitored Chord ring, emitting reproducible structured verdicts;
- :mod:`repro.faults.corruption` — direct state corruption (wrong
  predecessor / successor pointers) that the ring monitors must flag;
- :mod:`repro.faults.scenarios` — end-to-end scenarios, e.g. the
  recycled-dead-neighbor oscillation pathology of §3.1.3 running on the
  buggy Chord variant.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, ScheduleEntry
from repro.faults.campaign import (
    CampaignConfig,
    CampaignVerdict,
    FaultCampaign,
)
from repro.faults.corruption import corrupt_best_succ, corrupt_pred
from repro.faults.scenarios import (
    OscillationScenario,
    TransientFaultReport,
    TransientPartitionScenario,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "ScheduleEntry",
    "FaultCampaign",
    "CampaignConfig",
    "CampaignVerdict",
    "corrupt_best_succ",
    "corrupt_pred",
    "OscillationScenario",
    "TransientFaultReport",
    "TransientPartitionScenario",
]
