"""Fault injection: crashes, partitions, loss, state corruption, and the
scripted fault scenarios the monitoring examples/tests detect.

The paper's detectors are only demonstrable against misbehaving systems;
this package supplies the misbehaviour:

- :mod:`repro.faults.injector` — node crashes (immediate or scheduled),
  link partitions, and message-loss control;
- :mod:`repro.faults.corruption` — direct state corruption (wrong
  predecessor / successor pointers) that the ring monitors must flag;
- :mod:`repro.faults.scenarios` — end-to-end scenarios, e.g. the
  recycled-dead-neighbor oscillation pathology of §3.1.3 running on the
  buggy Chord variant.
"""

from repro.faults.injector import FaultInjector
from repro.faults.corruption import corrupt_best_succ, corrupt_pred
from repro.faults.scenarios import OscillationScenario

__all__ = [
    "FaultInjector",
    "corrupt_best_succ",
    "corrupt_pred",
    "OscillationScenario",
]
