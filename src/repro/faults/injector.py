"""Crash, partition, and loss injection over a running system."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.system import System


class FaultInjector:
    """Scripted fault injection with a record of everything injected."""

    def __init__(self, system: System) -> None:
        self._system = system
        self.log: List[Tuple[float, str, tuple]] = []

    def _record(self, kind: str, args: tuple) -> None:
        self.log.append((self._system.now, kind, args))

    # ------------------------------------------------------------------

    def crash(self, address: str) -> None:
        """Fail-stop a node now."""
        self._system.crash(address)
        self._record("crash", (address,))

    def crash_at(self, when: float, address: str) -> None:
        """Schedule a fail-stop at absolute virtual time ``when``."""
        self._system.sim.schedule_at(
            when, lambda: self.crash(address)
        )

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two nodes (both directions)."""
        self._system.network.partition(a, b)
        self._record("partition", (a, b))

    def heal(self, a: str, b: str) -> None:
        self._system.network.heal(a, b)
        self._record("heal", (a, b))

    def isolate(self, address: str) -> None:
        """Partition one node from every other node (it stays alive)."""
        for other in self._system.network.addresses:
            if other != address:
                self._system.network.partition(address, other)
        self._record("isolate", (address,))

    def rejoin(self, address: str) -> None:
        """Undo :meth:`isolate`."""
        for other in self._system.network.addresses:
            if other != address:
                self._system.network.heal(address, other)
        self._record("rejoin", (address,))

    def set_loss_rate(self, rate: float) -> None:
        self._system.network.set_loss_rate(rate)
        self._record("loss", (rate,))
