"""Crash, partition, loss, reordering, and duplication injection over a
running system.

Every injection is recorded in ``log`` as ``(virtual_time, kind, args)``
— the ground-truth fault timeline campaign verdicts and forensic tests
compare monitor alarms against.  The string ``kind`` names double as
the vocabulary of the :class:`repro.faults.schedule.FaultSchedule` DSL,
dispatched through :meth:`apply`.
"""

from __future__ import annotations

import inspect
from typing import List, Tuple

from repro.core.system import System
from repro.errors import ReproError
from repro.faults.corruption import corrupt_best_succ, corrupt_pred
from repro.net.marshal import encode_message
from repro.runtime.tuples import Tuple as RTuple

#: Synthetic source address storm traffic is sent from.  It is never
#: attached to the network, which is fine: reliable-mode acks and BUSY
#: nacks act directly on the sender channel object, not on a receiver.
STORM_SOURCE = "storm!injector"

#: Relation name of storm payloads.  Unknown to every priority map, so
#: admission control classes it DATA — a storm models an application
#: traffic spike, the load the monitoring plane must yield to.
STORM_RELATION = "stormPayload"


class FaultInjector:
    """Scripted fault injection with a record of everything injected."""

    def __init__(self, system: System) -> None:
        self._system = system
        self.log: List[Tuple[float, str, tuple]] = []
        # Monotone wire-mid counter shared by all storms from this
        # injector, so overlapping storms never reuse a message id.
        self._storm_seq = 0

    @property
    def system(self) -> System:
        """The system faults are injected into (read-only)."""
        return self._system

    def _record(self, kind: str, args: tuple) -> None:
        self.log.append((self._system.now, kind, args))
        tel = self._system.telemetry
        if tel.enabled:
            tel.event("fault", kind=kind, args=[str(a) for a in args])

    # ------------------------------------------------------------------

    def crash(self, address: str) -> None:
        """Fail-stop a node now (stamps the durable image's crash time
        when the node is recovery-protected)."""
        recovery = getattr(self._system, "recovery", None)
        if recovery is not None:
            recovery.crash(address)
        else:
            self._system.crash(address)
        self._record("crash", (address,))

    def restart(self, address: str) -> None:
        """Recover a crashed node from its durable checkpoint+WAL image.

        Requires a :class:`~repro.recovery.manager.RecoveryManager` on
        the system.  Skipped (not recorded) if the node is already
        running — a schedule's restart can race a manual one.
        """
        recovery = getattr(self._system, "recovery", None)
        if recovery is None:
            raise ReproError(
                "restart fault requires a RecoveryManager on the system "
                "(see repro.recovery)"
            )
        if not self._system.node(address).stopped:
            return
        recovery.restart(address)
        self._record("restart", (address,))

    def crash_restart(self, address: str, down_for: float) -> None:
        """Crash now; restart from durable state after ``down_for``
        seconds of virtual downtime."""
        self.crash(address)
        self._system.sim.schedule(
            down_for, lambda: self.restart(address)
        )

    def crash_at(self, when: float, address: str) -> None:
        """Schedule a fail-stop at absolute virtual time ``when``."""
        self._system.sim.schedule_at(
            when, lambda: self.crash(address)
        )

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two nodes (both directions)."""
        self._system.network.partition(a, b)
        self._record("partition", (a, b))

    def heal(self, a: str, b: str) -> None:
        self._system.network.heal(a, b)
        self._record("heal", (a, b))

    def isolate(self, address: str) -> None:
        """Partition one node from every other node (it stays alive)."""
        for other in self._system.network.addresses:
            if other != address:
                self._system.network.partition(address, other)
        self._record("isolate", (address,))

    def rejoin(self, address: str) -> None:
        """Undo :meth:`isolate`."""
        for other in self._system.network.addresses:
            if other != address:
                self._system.network.heal(address, other)
        self._record("rejoin", (address,))

    def take_down(self, address: str) -> None:
        """Silently drop the node's traffic (it keeps running blind)."""
        self._system.network.take_down(address)
        self._record("take_down", (address,))

    def bring_up(self, address: str) -> None:
        """Undo :meth:`take_down`."""
        self._system.network.bring_up(address)
        self._record("bring_up", (address,))

    def set_loss_rate(self, rate: float) -> None:
        self._system.network.set_loss_rate(rate)
        self._record("loss", (rate,))

    def set_link_loss(self, src: str, dst: str, rate: float) -> None:
        """Loss rate for one directed link (0 restores the global rate)."""
        self._system.network.set_link_loss(src, dst, rate)
        self._record("link_loss", (src, dst, rate))

    def set_reorder_rate(self, rate: float) -> None:
        self._system.network.set_reorder_rate(rate)
        self._record("reorder", (rate,))

    def set_duplicate_rate(self, rate: float) -> None:
        self._system.network.set_duplicate_rate(rate)
        self._record("duplicate", (rate,))

    def traffic_storm(
        self, address: str, rate: float, duration: float
    ) -> None:
        """Flood ``address`` with synthetic DATA-class tuples.

        Sends ``rate`` messages per virtual second for ``duration``
        seconds, on a deterministic tick chain (no randomness — the
        storm is byte-identical under a given schedule).  The payloads
        are ``stormPayload`` tuples, which no priority map knows, so
        admission control treats them as application traffic: the
        overload they create must shed MONITOR/TRACE work first.
        """
        if rate <= 0.0:
            raise ReproError(f"storm rate must be > 0: {rate}")
        if duration <= 0.0:
            raise ReproError(f"storm duration must be > 0: {duration}")
        self._record("traffic_storm", (address, rate, duration))
        interval = 1.0 / rate
        remaining = max(1, int(rate * duration))
        system = self._system

        def tick(left: int) -> None:
            self._storm_seq += 1
            tup = RTuple(STORM_RELATION, (address, self._storm_seq))
            wire = encode_message(tup, STORM_SOURCE, None, mid=self._storm_seq)
            system.network.send(STORM_SOURCE, address, wire, size=len(wire))
            if left > 1:
                system.sim.schedule(interval, lambda: tick(left - 1))

        system.sim.schedule(0.0, lambda: tick(remaining))

    def slow_node(self, address: str, factor: float) -> None:
        """Scale a node's per-message service time by ``factor``.

        Models a node that got slow (GC pauses, CPU contention) without
        stopping: its mailbox drains ``factor``× slower, so the same
        arrival rate saturates it sooner.  ``factor=1.0`` restores full
        speed (the schedule DSL's inverse for a windowed slow-down).
        Requires overload protection on the node — without a mailbox
        there is no service rate to slow.
        """
        if factor <= 0.0:
            raise ReproError(f"slow_node factor must be > 0: {factor}")
        node = self._system.node(address)
        if node.overload is None:
            raise ReproError(
                f"slow_node requires overload protection on {address!r} "
                "(System overload=OverloadConfig(...))"
            )
        node.overload.slow_factor = factor
        self._record("slow_node", (address, factor))

    def corrupt(self, address: str, relation: str, wrong_addr: str) -> None:
        """Corrupt one of a node's ring pointers to ``wrong_addr``.

        ``relation`` is ``"pred"`` or ``"bestSucc"`` (``"succ"`` is an
        alias).  Routing through the injector — rather than calling the
        :mod:`repro.faults.corruption` helpers directly — records the
        corruption in the fault log, so campaign fingerprints and
        schedule validation see it like any other fault.
        """
        node = self._system.node(address)
        if relation == "pred":
            corrupt_pred(node, wrong_addr)
        elif relation in ("bestSucc", "succ"):
            corrupt_best_succ(node, wrong_addr)
        else:
            raise ReproError(
                f"corrupt: unknown relation {relation!r} "
                "(expected 'pred' or 'bestSucc')"
            )
        self._record("corrupt", (address, relation, wrong_addr))

    # ------------------------------------------------------------------
    # Schedule dispatch

    #: kind → bound-method name; the vocabulary of the FaultSchedule DSL.
    KINDS = {
        "crash": "crash",
        "restart": "restart",
        "crash_restart": "crash_restart",
        "partition": "partition",
        "heal": "heal",
        "isolate": "isolate",
        "rejoin": "rejoin",
        "take_down": "take_down",
        "bring_up": "bring_up",
        "loss": "set_loss_rate",
        "link_loss": "set_link_loss",
        "reorder": "set_reorder_rate",
        "duplicate": "set_duplicate_rate",
        "traffic_storm": "traffic_storm",
        "slow_node": "slow_node",
        "corrupt": "corrupt",
    }

    @classmethod
    def validate_call(cls, kind: str, args: tuple) -> None:
        """Check a (kind, args) pair against the injector's signature.

        Schedules call this at *build* time so a typo'd kind or a wrong
        argument count fails when the schedule is written, not hours of
        virtual time into a campaign run.
        """
        method_name = cls.KINDS.get(kind)
        if method_name is None:
            known = ", ".join(sorted(cls.KINDS))
            raise ReproError(
                f"unknown fault kind: {kind!r} (known: {known})"
            )
        params = [
            p
            for p in inspect.signature(
                getattr(cls, method_name)
            ).parameters.values()
            if p.name != "self"
        ]
        required = sum(1 for p in params if p.default is inspect.Parameter.empty)
        if not (required <= len(args) <= len(params)):
            want = (
                str(required)
                if required == len(params)
                else f"{required}..{len(params)}"
            )
            raise ReproError(
                f"fault {kind!r} takes {want} argument(s), got "
                f"{len(args)}: {args!r}"
            )

    def apply(self, kind: str, *args) -> None:
        """Inject a fault by its schedule-entry name."""
        method = self.KINDS.get(kind)
        if method is None:
            raise ReproError(f"unknown fault kind: {kind!r}")
        getattr(self, method)(*args)

    def apply_at(self, when: float, kind: str, *args) -> None:
        """Schedule :meth:`apply` at absolute virtual time ``when``."""
        if kind not in self.KINDS:
            raise ReproError(f"unknown fault kind: {kind!r}")
        self._system.sim.schedule_at(
            when, lambda: self.apply(kind, *args)
        )
