"""Pattern matching of functor argument lists against tuple values.

Body functor arguments are restricted to variables and constants (the
validator enforces this), so matching is plain unification: variables
bind or must agree with an existing binding; constants must equal the
tuple value.  Returns the extended bindings dict or None on mismatch.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.overlog import ast
from repro.overlog.expr import values_equal

Bindings = Dict[str, Any]

IGNORE_PREFIX = "_"
"""Variables starting with '_' match anything without binding."""


def match_args(
    patterns: Sequence[ast.Expr],
    values: Sequence[Any],
    bindings: Bindings,
) -> Optional[Bindings]:
    """Unify ``patterns`` against ``values`` under ``bindings``.

    Returns a *new* dict extending ``bindings`` on success, None on
    failure.  The caller's dict is never mutated, so backtracking joins
    can reuse it for the next candidate.
    """
    if len(patterns) != len(values):
        return None
    out: Optional[Bindings] = None
    for pattern, value in zip(patterns, values):
        if isinstance(pattern, ast.Var):
            name = pattern.name
            if name.startswith(IGNORE_PREFIX):
                continue
            if out is not None and name in out:
                if not values_equal(out[name], value):
                    return None
            elif name in bindings:
                if not values_equal(bindings[name], value):
                    return None
            else:
                if out is None:
                    out = dict(bindings)
                out[name] = value
        elif isinstance(pattern, ast.Const):
            if not values_equal(pattern.value, value):
                return None
        elif isinstance(pattern, ast.SymbolicConst):
            # Unresolved symbolic constants compare as their own name.
            if not values_equal(pattern.name, value):
                return None
        else:
            # The validator rejects complex expressions in body functors.
            return None
    return out if out is not None else dict(bindings)
