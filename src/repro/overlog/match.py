"""Pattern matching of functor argument lists against tuple values.

Body functor arguments are restricted to variables and constants (the
validator enforces this), so matching is plain unification: variables
bind or must agree with an existing binding; constants must equal the
tuple value.  Returns the extended bindings dict or None on mismatch.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.overlog import ast
from repro.overlog.expr import values_equal

Bindings = Dict[str, Any]

IGNORE_PREFIX = "_"
"""Variables starting with '_' match anything without binding."""

# Compiled-pattern step kinds (see compile_pattern).
SKIP = 0    # '_'-prefixed variable: matches anything, binds nothing
BIND = 1    # variable: bind, or compare against an existing binding
CONST = 2   # constant / symbolic constant: compare by value
REJECT = 3  # anything else: the validator forbids it in body functors


def compile_pattern(patterns: Sequence[ast.Expr]):
    """Precompile functor arguments into ``(kind, payload)`` steps.

    Matching runs once per candidate row, so the per-row AST dispatch
    (isinstance chains, prefix checks) is hoisted here; elements compile
    their pattern once at construction and match with
    :func:`match_compiled`.
    """
    steps = []
    for pattern in patterns:
        if isinstance(pattern, ast.Var):
            if pattern.name.startswith(IGNORE_PREFIX):
                steps.append((SKIP, None))
            else:
                steps.append((BIND, pattern.name))
        elif isinstance(pattern, ast.Const):
            steps.append((CONST, pattern.value))
        elif isinstance(pattern, ast.SymbolicConst):
            # Unresolved symbolic constants compare as their own name.
            steps.append((CONST, pattern.name))
        else:
            steps.append((REJECT, None))
    return tuple(steps)


def match_compiled(
    steps,
    values: Sequence[Any],
    bindings: Bindings,
) -> Optional[Bindings]:
    """Unify precompiled ``steps`` against ``values`` under ``bindings``.

    Same contract as :func:`match_args`: returns a new dict extending
    ``bindings`` on success (never mutating the caller's), None on
    mismatch.
    """
    if len(steps) != len(values):
        return None
    out: Optional[Bindings] = None
    for (kind, payload), value in zip(steps, values):
        if kind == BIND:
            if out is not None:
                # out extends bindings, so it alone decides.
                if payload in out:
                    if not values_equal(out[payload], value):
                        return None
                else:
                    out[payload] = value
            elif payload in bindings:
                if not values_equal(bindings[payload], value):
                    return None
            else:
                out = dict(bindings)
                out[payload] = value
        elif kind == CONST:
            if not values_equal(payload, value):
                return None
        elif kind == REJECT:
            return None
    return out if out is not None else dict(bindings)


def match_args(
    patterns: Sequence[ast.Expr],
    values: Sequence[Any],
    bindings: Bindings,
) -> Optional[Bindings]:
    """Unify ``patterns`` against ``values`` under ``bindings``.

    Returns a *new* dict extending ``bindings`` on success, None on
    failure.  The caller's dict is never mutated, so backtracking joins
    can reuse it for the next candidate.

    One-shot convenience over :func:`compile_pattern` +
    :func:`match_compiled`; hot paths compile their pattern once and
    call :func:`match_compiled` directly.
    """
    return match_compiled(compile_pattern(patterns), values, bindings)
