"""The OverLog language: the Datalog variant P2 programs are written in.

This package contains everything needed to go from OverLog source text to
a validated program the runtime planner can compile:

- :mod:`repro.overlog.types` — the value model, notably :class:`NodeID`
  (an integer on the Chord ring, with modular arithmetic and interval
  membership so the paper's lookup rules run verbatim);
- :mod:`repro.overlog.lexer` / :mod:`repro.overlog.parser` — source text
  to AST;
- :mod:`repro.overlog.ast` — AST node definitions;
- :mod:`repro.overlog.builtins` — ``f_now()``, ``f_rand()``,
  ``f_randID()`` and friends;
- :mod:`repro.overlog.expr` — the expression evaluator;
- :mod:`repro.overlog.program` — :class:`Program` container plus semantic
  validation (variable safety, location specifiers, aggregate placement).
"""

from repro.overlog.types import NodeID, INFINITY
from repro.overlog.parser import parse
from repro.overlog.program import Program

__all__ = ["NodeID", "INFINITY", "parse", "Program"]
