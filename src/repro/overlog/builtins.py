"""Built-in OverLog functions (the ``f_*`` family).

Builtins are resolved against an :class:`EvalContext` so they see virtual
time and the simulation's seeded randomness — ``f_now()`` returns the
simulator clock, not wall time, which is what makes traced timings
deterministic and reproducible.

Implemented (all used by the paper's rules, plus hashing for Chord IDs):

- ``f_now()``       — current virtual time (seconds, float)
- ``f_rand()``      — random 31-bit integer nonce
- ``f_randID()``    — random :class:`NodeID` on the ring
- ``f_hash(x)``     — stable hash of any value to a :class:`NodeID`
- ``f_dist(a, b)``  — clockwise ring distance from a to b
- ``f_size(xs)``    — length of a list value
- ``f_concat(a,b)`` — string concatenation of rendered values
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict

from repro.errors import EvaluationError
from repro.overlog.types import DEFAULT_ID_BITS, NodeID


class EvalContext:
    """Everything builtins need: a clock, randomness, and the ring size."""

    def __init__(
        self,
        now: Callable[[], float],
        rng,
        id_bits: int = DEFAULT_ID_BITS,
    ) -> None:
        self.now = now
        self.rng = rng
        self.id_bits = id_bits


def stable_hash_id(value: Any, bits: int = DEFAULT_ID_BITS) -> NodeID:
    """Hash any value to a NodeID deterministically across processes."""
    digest = hashlib.sha1(repr(value).encode()).digest()
    number = int.from_bytes(digest[:8], "big")
    return NodeID(number, bits)


def _f_now(ctx: EvalContext) -> float:
    return ctx.now()


def _f_rand(ctx: EvalContext) -> int:
    return ctx.rng.randrange(1 << 31)


def _f_rand_id(ctx: EvalContext) -> NodeID:
    return NodeID(ctx.rng.randrange(1 << ctx.id_bits), ctx.id_bits)


def _f_hash(ctx: EvalContext, value: Any) -> NodeID:
    return stable_hash_id(value, ctx.id_bits)


def _f_dist(ctx: EvalContext, a: Any, b: Any) -> NodeID:
    if not isinstance(a, NodeID):
        a = NodeID(int(a), ctx.id_bits)
    return (b - a) if isinstance(b, NodeID) else NodeID(int(b), ctx.id_bits) - a


def _f_size(ctx: EvalContext, xs: Any) -> int:
    try:
        return len(xs)
    except TypeError:
        raise EvaluationError(f"f_size: value has no length: {xs!r}")


def _f_concat(ctx: EvalContext, a: Any, b: Any) -> str:
    return f"{a}{b}"


def _f_pow(ctx: EvalContext, base: Any, exponent: Any) -> Any:
    """Integer power — Chord's finger targets are NID + f_pow(2, I)."""
    return int(base) ** int(exponent)


BUILTINS: Dict[str, Callable] = {
    "f_now": _f_now,
    "f_rand": _f_rand,
    "f_randID": _f_rand_id,
    "f_hash": _f_hash,
    "f_dist": _f_dist,
    "f_size": _f_size,
    "f_concat": _f_concat,
    "f_pow": _f_pow,
}


def call_builtin(name: str, ctx: EvalContext, args: list) -> Any:
    """Invoke the named builtin; raises EvaluationError if unknown."""
    func = BUILTINS.get(name)
    if func is None:
        raise EvaluationError(f"unknown built-in function {name!r}")
    try:
        return func(ctx, *args)
    except TypeError as exc:
        raise EvaluationError(f"bad arguments to {name}: {exc}") from exc
