"""Program container, symbolic-constant binding, and semantic validation.

A :class:`Program` wraps a parsed AST with a name and a binding table for
symbolic constants (so monitor templates can say ``periodic@N(E, tProbe)``
and be instantiated with ``tProbe=15`` at install time).  ``validate()``
performs the semantic checks the planner relies on:

- body functor arguments are variables or constants only;
- every rule body contains at least one functor;
- head variables are bound by the body (except in delete rules, where
  unbound head variables act as deletion wildcards);
- at most one aggregate per head, with a body-bound aggregate variable;
- condition/assignment expressions only use variables some body functor
  or earlier assignment can bind;
- ``periodic`` functors have a constant period.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional

from repro.errors import ValidationError
from repro.overlog import ast
from repro.overlog.parser import parse


class Program:
    """A named, optionally parameter-bound OverLog program."""

    def __init__(
        self,
        tree: ast.ProgramAST,
        name: str = "program",
        bindings: Optional[Dict[str, Any]] = None,
        role: str = "data",
    ) -> None:
        self.name = name
        self.tree = tree
        #: Overload-protection priority class for every relation this
        #: program materializes or derives (``data`` / ``monitor`` /
        #: ``trace``, highest priority first); the installing node's
        #: priority map learns it.  See :mod:`repro.overload.policy`.
        self.role = role
        if bindings:
            self.tree = _substitute(self.tree, bindings)

    @classmethod
    def parse(
        cls,
        source: str,
        name: str = "program",
        bindings: Optional[Dict[str, Any]] = None,
        role: str = "data",
    ) -> "Program":
        """Parse source text and wrap it (does not validate)."""
        return cls(parse(source), name=name, bindings=bindings, role=role)

    @classmethod
    def compile(
        cls,
        source: str,
        name: str = "program",
        bindings: Optional[Dict[str, Any]] = None,
        role: str = "data",
    ) -> "Program":
        """Parse + validate in one step; the common entry point."""
        program = cls.parse(source, name=name, bindings=bindings, role=role)
        program.validate()
        return program

    @property
    def rules(self) -> List[ast.Rule]:
        return self.tree.rules

    @property
    def materializations(self) -> List[ast.Materialize]:
        return self.tree.materializations

    def __str__(self) -> str:
        return str(self.tree)

    # ------------------------------------------------------------------
    # Validation

    def validate(self) -> None:
        """Run all semantic checks; raises :class:`ValidationError`."""
        seen_tables: Dict[str, ast.Materialize] = {}
        for mat in self.materializations:
            if mat.name in seen_tables:
                raise ValidationError(
                    f"{self.name}: table {mat.name!r} materialized twice"
                )
            seen_tables[mat.name] = mat
        for rule in self.rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: ast.Rule) -> None:
        label = rule.rule_id or str(rule.head)
        where = f"{self.name}/{label}"

        functors = rule.body_functors()
        if not functors:
            raise ValidationError(f"{where}: rule body has no predicates")

        # Body functor args must be variables or constants.
        for functor in functors:
            for arg in functor.args:
                if not isinstance(
                    arg, (ast.Var, ast.Const, ast.SymbolicConst)
                ):
                    raise ValidationError(
                        f"{where}: body predicate {functor.name!r} has a "
                        f"complex argument {arg}; only variables and "
                        "constants are allowed in body predicates"
                    )

        # Aggregates: head-only, at most one.
        aggregates = rule.head.aggregates()
        if len(aggregates) > 1:
            raise ValidationError(
                f"{where}: at most one aggregate is allowed per head"
            )
        for term in rule.body:
            for expr in _term_exprs(term):
                if _contains_aggregate(expr):
                    raise ValidationError(
                        f"{where}: aggregates are only legal in rule heads"
                    )

        # Collect variables bindable by the body.
        functor_vars: set = set()
        for functor in functors:
            functor_vars |= functor.variables()
        bound = set(functor_vars)
        for term in rule.body:
            if isinstance(term, ast.Assign):
                missing = term.expr.variables() - bound
                if missing:
                    raise ValidationError(
                        f"{where}: assignment {term} uses unbound "
                        f"variable(s) {sorted(missing)}"
                    )
                bound.add(term.var)
            elif isinstance(term, ast.Cond):
                missing = term.expr.variables() - bound
                if missing:
                    raise ValidationError(
                        f"{where}: condition {term} uses unbound "
                        f"variable(s) {sorted(missing)}"
                    )

        # Head safety (delete rules may leave wildcards unbound).
        if not rule.delete:
            head_vars: set = set()
            for arg in rule.head.args:
                if isinstance(arg, ast.Aggregate):
                    if arg.var is not None and arg.var not in bound:
                        raise ValidationError(
                            f"{where}: aggregate variable {arg.var} "
                            "is not bound by the body"
                        )
                    continue
                head_vars |= arg.variables()
            unbound = {
                v for v in head_vars if not v.startswith("_")
            } - bound
            if unbound:
                raise ValidationError(
                    f"{where}: head variable(s) {sorted(unbound)} are "
                    "not bound by the body"
                )

        # Location specifier of the head must be bound (or constant).
        loc = rule.head.location
        if isinstance(loc, ast.Aggregate):
            raise ValidationError(
                f"{where}: head location specifier cannot be an aggregate"
            )

        # periodic(loc, nonce, period): the period must be constant.
        for functor in functors:
            if functor.name == "periodic":
                if len(functor.args) < 3:
                    raise ValidationError(
                        f"{where}: periodic needs (loc, nonce, period)"
                    )
                period = functor.args[2]
                if not isinstance(period, (ast.Const, ast.SymbolicConst)):
                    raise ValidationError(
                        f"{where}: periodic period must be a constant, "
                        f"got {period}"
                    )


# ---------------------------------------------------------------------------
# Helpers


def _term_exprs(term: ast.BodyTerm) -> List[ast.Expr]:
    if isinstance(term, ast.Functor):
        return list(term.args)
    if isinstance(term, ast.Assign):
        return [term.expr]
    if isinstance(term, ast.Cond):
        return [term.expr]
    return []


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.BinOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.FuncCall):
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.ListExpr):
        return any(_contains_aggregate(i) for i in expr.items)
    if isinstance(expr, ast.RangeCheck):
        return (
            _contains_aggregate(expr.subject)
            or _contains_aggregate(expr.low)
            or _contains_aggregate(expr.high)
        )
    return False


def _substitute(tree: ast.ProgramAST, bindings: Dict[str, Any]) -> ast.ProgramAST:
    """Replace symbolic constants with literal values, recursively."""
    tree = copy.deepcopy(tree)
    for statement in tree.statements:
        if isinstance(statement, ast.Rule):
            statement.head = _sub_functor(statement.head, bindings)
            statement.body = [_sub_term(t, bindings) for t in statement.body]
    return tree


def _sub_term(term: ast.BodyTerm, bindings: Dict[str, Any]) -> ast.BodyTerm:
    if isinstance(term, ast.Functor):
        return _sub_functor(term, bindings)
    if isinstance(term, ast.Assign):
        return ast.Assign(term.var, _sub_expr(term.expr, bindings))
    if isinstance(term, ast.Cond):
        return ast.Cond(_sub_expr(term.expr, bindings))
    return term


def _sub_functor(functor: ast.Functor, bindings: Dict[str, Any]) -> ast.Functor:
    return ast.Functor(
        functor.name, [_sub_expr(a, bindings) for a in functor.args]
    )


def _sub_expr(expr: ast.Expr, bindings: Dict[str, Any]) -> ast.Expr:
    if isinstance(expr, ast.SymbolicConst) and expr.name in bindings:
        return ast.Const(bindings[expr.name])
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _sub_expr(expr.operand, bindings))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _sub_expr(expr.left, bindings),
            _sub_expr(expr.right, bindings),
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name, tuple(_sub_expr(a, bindings) for a in expr.args)
        )
    if isinstance(expr, ast.ListExpr):
        return ast.ListExpr(
            tuple(_sub_expr(i, bindings) for i in expr.items)
        )
    if isinstance(expr, ast.RangeCheck):
        return ast.RangeCheck(
            _sub_expr(expr.subject, bindings),
            _sub_expr(expr.low, bindings),
            _sub_expr(expr.high, bindings),
            expr.low_closed,
            expr.high_closed,
        )
    return expr
