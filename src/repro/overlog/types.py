"""The OverLog value model.

Tuples carry plain Python values (str, int, float, bool, tuples-as-lists)
plus :class:`NodeID`: an identifier on a ring of size 2**bits with modular
arithmetic.  NodeID makes the paper's Chord rules work as written — e.g.
rule ``l2``'s ``D := K - FID - 1`` needs subtraction mod 2**m, and ``FID
in (NID, K)`` needs wrap-around interval membership.
"""

from __future__ import annotations

from typing import Any, Union


class _Infinity:
    """Sentinel for the OverLog ``infinity`` keyword (table bounds)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "infinity"

    def __gt__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return True

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self


INFINITY = _Infinity()

DEFAULT_ID_BITS = 32
"""Ring size exponent used by the Chord harness (2**32 identifiers)."""


class NodeID:
    """An identifier on the ring Z / 2**bits, with modular arithmetic.

    Supports ``+``/``-`` with ints and other NodeIDs (mod 2**bits),
    total ordering by raw value, and :meth:`in_interval` for circular
    interval membership with either-end openness — the semantics of the
    OverLog ``X in (A, B]`` expression.
    """

    __slots__ = ("value", "bits")

    def __init__(self, value: int, bits: int = DEFAULT_ID_BITS) -> None:
        self.bits = bits
        self.value = value % (1 << bits)

    @property
    def modulus(self) -> int:
        return 1 << self.bits

    # -- arithmetic -----------------------------------------------------

    def _coerce(self, other: Union["NodeID", int]) -> int:
        if isinstance(other, NodeID):
            return other.value
        if isinstance(other, bool):  # bool is an int subclass; reject it
            raise TypeError("cannot mix NodeID and bool arithmetic")
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union["NodeID", int]) -> "NodeID":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return NodeID(self.value + value, self.bits)

    __radd__ = __add__

    def __sub__(self, other: Union["NodeID", int]) -> "NodeID":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return NodeID(self.value - value, self.bits)

    def __rsub__(self, other: Union["NodeID", int]) -> "NodeID":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return NodeID(value - self.value, self.bits)

    # -- comparison (raw value order, used by min/max aggregates) -------

    def _cmp_value(self, other: Any) -> int:
        if isinstance(other, NodeID):
            return other.value
        if isinstance(other, int) and not isinstance(other, bool):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other: Any) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self.value == value

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: Any) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self.value < value

    def __le__(self, other: Any) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self.value <= value

    def __gt__(self, other: Any) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self.value > value

    def __ge__(self, other: Any) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self.value >= value

    def __hash__(self) -> int:
        return hash(self.value)

    # -- ring membership -------------------------------------------------

    def in_interval(
        self,
        low: Union["NodeID", int],
        high: Union["NodeID", int],
        low_closed: bool = False,
        high_closed: bool = False,
    ) -> bool:
        """Circular interval membership on the ring.

        ``x.in_interval(a, b)`` is OverLog's ``X in (A, B)``; the closed
        flags give the ``[``/``]`` variants.  When ``a == b`` the open
        interval ``(a, a)`` is the whole ring minus the endpoint(s) —
        Chord's convention, which makes a single-node ring route to
        itself via ``K in (NID, SID]``.
        """
        a = low.value if isinstance(low, NodeID) else int(low) % self.modulus
        b = high.value if isinstance(high, NodeID) else int(high) % self.modulus
        x = self.value

        if x == a:
            hit_low = low_closed
        else:
            hit_low = None
        if x == b:
            hit_high = high_closed
        else:
            hit_high = None
        if hit_low is not None or hit_high is not None:
            # On an endpoint: inside iff any matching endpoint is closed.
            return bool(hit_low) or bool(hit_high)

        if a == b:
            # Degenerate interval spans the whole ring (minus endpoints).
            return True
        if a < b:
            return a < x < b
        # Wrapped interval.
        return x > a or x < b

    def __repr__(self) -> str:
        return f"NodeID({self.value})"

    def __str__(self) -> str:
        return str(self.value)


def format_value(value: Any) -> str:
    """Human-readable rendering of an OverLog value (for traces/logs)."""
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    return str(value)
