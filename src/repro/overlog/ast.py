"""AST node definitions for OverLog.

The parser produces a :class:`ProgramAST` holding statements, each of
which is a :class:`Materialize` declaration or a :class:`Rule`.  A rule
head is a :class:`Functor` whose first argument is, by P2 convention, the
location specifier (``name@Loc(A, B)`` and ``name(Loc, A, B)`` both parse
to args ``[Loc, A, B]``).  Rule bodies are ordered lists of body terms:
functors (joins against tables or the trigger event), assignments
(``X := expr``) and conditions (boolean expressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions


class Expr:
    """Base class for OverLog expressions."""

    def variables(self) -> set:
        """The set of variable names appearing in this expression."""
        return set()


@dataclass(frozen=True)
class Var(Expr):
    """A variable (identifier starting with an upper-case letter)."""

    name: str

    def variables(self) -> set:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant: number, string, boolean."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class SymbolicConst(Expr):
    """A lower-case identifier used as a value (e.g. ``tProbe``, ``mysnap``).

    Resolved against the program's binding table at install time; an
    unbound symbolic constant evaluates to its own name as a string,
    matching the paper's convention that lower-case terms are constants.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``-`` or ``!``."""

    op: str
    operand: Expr

    def variables(self) -> set:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def variables(self) -> set:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A built-in function call, e.g. ``f_now()`` or ``f_randID()``."""

    name: str
    args: Sequence[Expr] = field(default_factory=tuple)

    def variables(self) -> set:
        out: set = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class ListExpr(Expr):
    """A list literal, e.g. ``[B, A]`` in the path-vector rule."""

    items: Sequence[Expr]

    def variables(self) -> set:
        out: set = set()
        for item in self.items:
            out |= item.variables()
        return out

    def __str__(self) -> str:
        return "[" + ", ".join(str(i) for i in self.items) + "]"


@dataclass(frozen=True)
class RangeCheck(Expr):
    """Circular interval membership: ``X in (A, B]`` and variants."""

    subject: Expr
    low: Expr
    high: Expr
    low_closed: bool
    high_closed: bool

    def variables(self) -> set:
        return (
            self.subject.variables()
            | self.low.variables()
            | self.high.variables()
        )

    def __str__(self) -> str:
        lo = "[" if self.low_closed else "("
        hi = "]" if self.high_closed else ")"
        return f"{self.subject} in {lo}{self.low}, {self.high}{hi}"


@dataclass(frozen=True)
class Aggregate(Expr):
    """A head aggregate: ``count<*>``, ``min<D>``, ``max<Count>``, ...

    Only legal as a head argument.  ``var`` is None for ``count<*>``.
    """

    func: str
    var: Optional[str]

    def variables(self) -> set:
        return {self.var} if self.var else set()

    def __str__(self) -> str:
        return f"{self.func}<{self.var if self.var else '*'}>"


AGGREGATE_FUNCS = ("count", "min", "max", "sum", "avg", "topk")


# ---------------------------------------------------------------------------
# Body terms and statements


@dataclass
class Functor:
    """A predicate occurrence: ``name@Loc(A, B)`` with args [Loc, A, B]."""

    name: str
    args: List[Expr]

    def variables(self) -> set:
        out: set = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    @property
    def location(self) -> Expr:
        """The location specifier (first argument, P2 convention)."""
        return self.args[0]

    def aggregates(self) -> List[Aggregate]:
        return [a for a in self.args if isinstance(a, Aggregate)]

    def __str__(self) -> str:
        rest = ", ".join(str(a) for a in self.args[1:])
        return f"{self.name}@{self.args[0]}({rest})"


@dataclass
class Assign:
    """An assignment body term: ``X := expr``."""

    var: str
    expr: Expr

    def variables(self) -> set:
        return {self.var} | self.expr.variables()

    def __str__(self) -> str:
        return f"{self.var} := {self.expr}"


@dataclass
class Cond:
    """A filter body term: any boolean expression."""

    expr: Expr

    def variables(self) -> set:
        return self.expr.variables()

    def __str__(self) -> str:
        return str(self.expr)


BodyTerm = Union[Functor, Assign, Cond]


@dataclass
class Rule:
    """A deductive rule: ``[ruleID] [delete] head :- body terms.``"""

    head: Functor
    body: List[BodyTerm]
    rule_id: Optional[str] = None
    delete: bool = False
    source: str = ""

    def body_functors(self) -> List[Functor]:
        return [t for t in self.body if isinstance(t, Functor)]

    def __str__(self) -> str:
        prefix = f"{self.rule_id} " if self.rule_id else ""
        if self.delete:
            prefix += "delete "
        body = ", ".join(str(t) for t in self.body)
        return f"{prefix}{self.head} :- {body}."


@dataclass
class Materialize:
    """A ``materialize(name, lifetime, size, keys(...))`` declaration.

    ``lifetime`` is seconds (or INFINITY); ``max_size`` is a tuple count
    (or INFINITY); ``keys`` are 1-based field positions per the paper.
    """

    name: str
    lifetime: Any
    max_size: Any
    keys: List[int]

    def __str__(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return (
            f"materialize({self.name}, {self.lifetime}, "
            f"{self.max_size}, keys({keys}))."
        )


@dataclass
class Watch:
    """A ``watch(name).`` statement: observe every ``name`` tuple.

    P2's debugging primitive — watched tuples are recorded by the node
    (and by the event logger when attached) without writing a rule.
    """

    name: str

    def __str__(self) -> str:
        return f"watch({self.name})."


Statement = Union[Rule, Materialize, Watch]


@dataclass
class ProgramAST:
    """The parsed form of an OverLog source text."""

    statements: List[Statement] = field(default_factory=list)

    @property
    def rules(self) -> List[Rule]:
        return [s for s in self.statements if isinstance(s, Rule)]

    @property
    def materializations(self) -> List[Materialize]:
        return [s for s in self.statements if isinstance(s, Materialize)]

    @property
    def watches(self) -> List[Watch]:
        return [s for s in self.statements if isinstance(s, Watch)]

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)
