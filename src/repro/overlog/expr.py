"""Expression evaluation over variable bindings.

The evaluator walks an expression AST under a bindings dict (variable
name -> value) and an :class:`EvalContext` (clock/randomness/ring size
for builtins).  Unbound variables raise :class:`EvaluationError` — the
program validator catches unsafe rules before they reach here, so a
raised error indicates an engine bug or an intentionally unbound delete
wildcard (handled by the caller, not here).

Semantics worth noting:

- ``+`` concatenates lists/strings as well as adding numbers; NodeID
  arithmetic is modular (delegated to :class:`NodeID`);
- ``==``/``!=`` never raise on type mismatch (distinct types compare
  unequal), matching Datalog's value semantics;
- ``&&``/``||`` are short-circuiting;
- ``X in (A, B]`` uses circular interval membership when any operand is
  a NodeID, and plain ordering otherwise.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import EvaluationError
from repro.overlog import ast
from repro.overlog.builtins import EvalContext, call_builtin
from repro.overlog.types import NodeID

Bindings = Dict[str, Any]


def compile_expr(expr: ast.Expr):
    """Compile ``expr`` into a ``fn(bindings, ctx) -> value`` closure.

    Semantics are identical to :func:`evaluate`; the per-node AST
    dispatch (isinstance chains, operator string comparisons) happens
    once here instead of on every evaluation, so elements that evaluate
    the same expression millions of times compile it at construction.
    Ill-formed nodes compile to closures that raise when *called*, not
    here, preserving evaluate's lazy error behaviour (aggregate heads
    are compiled but never invoked through this path).
    """
    if isinstance(expr, ast.Const):
        value = expr.value
        return lambda bindings, ctx: value
    if isinstance(expr, ast.Var):
        name = expr.name

        def load(bindings, ctx):
            try:
                return bindings[name]
            except KeyError:
                raise EvaluationError(
                    f"unbound variable {name}"
                ) from None

        return load
    if isinstance(expr, ast.SymbolicConst):
        name = expr.name
        return lambda bindings, ctx: name
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand)
        if expr.op == "-":
            return lambda b, c: _negate(operand(b, c))
        if expr.op == "!":
            return lambda b, c: not _truthy(operand(b, c))
        return _raiser(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinOp):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        if op == "&&":
            return lambda b, c: (
                _truthy(right(b, c)) if _truthy(left(b, c)) else False
            )
        if op == "||":
            return lambda b, c: (
                True if _truthy(left(b, c)) else _truthy(right(b, c))
            )
        if op == "==":
            return lambda b, c: values_equal(left(b, c), right(b, c))
        if op == "!=":
            return lambda b, c: not values_equal(left(b, c), right(b, c))
        if op in ("<", "<=", ">", ">="):
            return lambda b, c: _compare(op, left(b, c), right(b, c))
        if op in ("+", "-", "*", "/", "%"):
            return lambda b, c: _arith(op, left(b, c), right(b, c))
        return _raiser(f"unknown binary operator {op!r}")
    if isinstance(expr, ast.FuncCall):
        name = expr.name
        arg_fns = tuple(compile_expr(a) for a in expr.args)
        return lambda b, c: call_builtin(
            name, c, [fn(b, c) for fn in arg_fns]
        )
    if isinstance(expr, ast.ListExpr):
        item_fns = tuple(compile_expr(item) for item in expr.items)
        return lambda b, c: tuple(fn(b, c) for fn in item_fns)
    if isinstance(expr, ast.RangeCheck):
        subject = compile_expr(expr.subject)
        low = compile_expr(expr.low)
        high = compile_expr(expr.high)
        low_closed = expr.low_closed
        high_closed = expr.high_closed
        return lambda b, c: _interval(
            subject(b, c), low(b, c), high(b, c), low_closed, high_closed
        )
    if isinstance(expr, ast.Aggregate):
        return _raiser("aggregates are only legal in rule heads")
    return _raiser(f"cannot evaluate expression node {expr!r}")


def _raiser(message: str):
    def fail(bindings, ctx):
        raise EvaluationError(message)

    return fail


def evaluate(expr: ast.Expr, bindings: Bindings, ctx: EvalContext) -> Any:
    """Evaluate ``expr`` under ``bindings``; raises on unbound variables."""
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name not in bindings:
            raise EvaluationError(f"unbound variable {expr.name}")
        return bindings[expr.name]
    if isinstance(expr, ast.SymbolicConst):
        # Unresolved lower-case identifiers evaluate to their own name —
        # the paper's "lower-case terms are constants" convention.
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        return _unary(expr, bindings, ctx)
    if isinstance(expr, ast.BinOp):
        return _binary(expr, bindings, ctx)
    if isinstance(expr, ast.FuncCall):
        args = [evaluate(a, bindings, ctx) for a in expr.args]
        return call_builtin(expr.name, ctx, args)
    if isinstance(expr, ast.ListExpr):
        return tuple(evaluate(item, bindings, ctx) for item in expr.items)
    if isinstance(expr, ast.RangeCheck):
        return _range_check(expr, bindings, ctx)
    if isinstance(expr, ast.Aggregate):
        raise EvaluationError("aggregates are only legal in rule heads")
    raise EvaluationError(f"cannot evaluate expression node {expr!r}")


def _unary(expr: ast.UnaryOp, bindings: Bindings, ctx: EvalContext) -> Any:
    value = evaluate(expr.operand, bindings, ctx)
    if expr.op == "-":
        return _negate(value)
    if expr.op == "!":
        return not _truthy(value)
    raise EvaluationError(f"unknown unary operator {expr.op!r}")


def _negate(value: Any) -> Any:
    if isinstance(value, NodeID):
        return NodeID(-value.value, value.bits)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return -value
    raise EvaluationError(f"cannot negate {value!r}")


def _binary(expr: ast.BinOp, bindings: Bindings, ctx: EvalContext) -> Any:
    op = expr.op

    # Short-circuit boolean connectives.
    if op == "&&":
        if not _truthy(evaluate(expr.left, bindings, ctx)):
            return False
        return _truthy(evaluate(expr.right, bindings, ctx))
    if op == "||":
        if _truthy(evaluate(expr.left, bindings, ctx)):
            return True
        return _truthy(evaluate(expr.right, bindings, ctx))

    left = evaluate(expr.left, bindings, ctx)
    right = evaluate(expr.right, bindings, ctx)

    if op == "==":
        return values_equal(left, right)
    if op == "!=":
        return not values_equal(left, right)
    if op in ("<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op in ("+", "-", "*", "/", "%"):
        return _arith(op, left, right)
    raise EvaluationError(f"unknown binary operator {op!r}")


def values_equal(left: Any, right: Any) -> bool:
    """Datalog-style equality: mismatched types are unequal, not errors."""
    try:
        result = left == right
    except Exception:
        return False
    if result is NotImplemented:
        return False
    return bool(result)


def _compare(op: str, left: Any, right: Any) -> bool:
    try:
        if op == "<":
            result = left < right
        elif op == "<=":
            result = left <= right
        elif op == ">":
            result = left > right
        else:
            result = left >= right
    except TypeError as exc:
        raise EvaluationError(
            f"cannot compare {left!r} {op} {right!r}"
        ) from exc
    if result is NotImplemented:
        raise EvaluationError(f"cannot compare {left!r} {op} {right!r}")
    return bool(result)


def _arith(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        # List / string concatenation ("[B,A] + P" builds paths).
        if isinstance(left, (tuple, list)) or isinstance(right, (tuple, list)):
            return _as_tuple(left) + _as_tuple(right)
        if isinstance(left, str) and isinstance(right, str):
            return left + right
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise EvaluationError("division by zero")
                return left // right if left % right == 0 else left / right
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
    except EvaluationError:
        raise
    except TypeError as exc:
        raise EvaluationError(
            f"cannot compute {left!r} {op} {right!r}"
        ) from exc
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def _as_tuple(value: Any):
    if isinstance(value, tuple):
        return value
    if isinstance(value, list):
        return tuple(value)
    return (value,)


def _range_check(
    expr: ast.RangeCheck, bindings: Bindings, ctx: EvalContext
) -> bool:
    return _interval(
        evaluate(expr.subject, bindings, ctx),
        evaluate(expr.low, bindings, ctx),
        evaluate(expr.high, bindings, ctx),
        expr.low_closed,
        expr.high_closed,
    )


def _interval(
    subject: Any, low: Any, high: Any, low_closed: bool, high_closed: bool
) -> bool:
    if isinstance(subject, NodeID):
        return subject.in_interval(low, high, low_closed, high_closed)
    if isinstance(low, NodeID) or isinstance(high, NodeID):
        bits = low.bits if isinstance(low, NodeID) else high.bits
        return NodeID(int(subject), bits).in_interval(
            low, high, low_closed, high_closed
        )

    # Plain linear interval for non-ring values.
    above = subject >= low if low_closed else subject > low
    below = subject <= high if high_closed else subject < high
    return bool(above and below)


def _truthy(value: Any) -> bool:
    """OverLog truthiness: the string "true"/"false" convention plus bool."""
    if isinstance(value, str):
        if value == "true":
            return True
        if value == "false":
            return False
    return bool(value)
