"""Tokenizer for OverLog source text.

Produces a flat list of :class:`Token`.  Identifier case matters in
OverLog: an identifier starting with an upper-case letter (or ``_``) is a
variable; lower-case identifiers are predicate names, keywords, or
symbolic constants — the parser decides which from context.

Comments: ``//`` and ``#`` to end of line, ``/* ... */`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

# Token kinds
IDENT = "IDENT"          # lower-case identifier
VARIABLE = "VARIABLE"    # upper-case identifier
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"          # operators and punctuation, value holds the lexeme
EOF = "EOF"

_TWO_CHAR = (":-", ":=", "==", "!=", "<=", ">=", "||", "&&")
_ONE_CHAR = "@(),.<>+-*/%[]!="


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def is_punct(self, lexeme: str) -> bool:
        return self.kind == PUNCT and self.value == lexeme

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on invalid input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]

        # Whitespace
        if ch in " \t\r\n":
            advance(1)
            continue

        # Line comments
        if source.startswith("//", i) or ch == "#":
            while i < n and source[i] != "\n":
                advance(1)
            continue

        # Block comments
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue

        # Strings
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            chars: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    advance(1)
                    escape = source[i]
                    chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    advance(1)
                else:
                    chars.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal", start_line, start_col)
            advance(1)  # closing quote
            tokens.append(Token(STRING, "".join(chars), start_line, start_col))
            continue

        # Numbers (int or float; a '.' is only part of the number when
        # followed by a digit, since '.' also terminates statements)
        if ch.isdigit():
            start_line, start_col = line, col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if (
                j < n
                and source[j] == "."
                and j + 1 < n
                and source[j + 1].isdigit()
            ):
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(NUMBER, text, start_line, start_col))
            continue

        # Identifiers and variables
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = VARIABLE if (text[0].isupper() or text[0] == "_") else IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue

        # Two-character operators
        matched = False
        for op in _TWO_CHAR:
            if source.startswith(op, i):
                tokens.append(Token(PUNCT, op, line, col))
                advance(2)
                matched = True
                break
        if matched:
            continue

        # Single-character punctuation
        if ch in _ONE_CHAR:
            tokens.append(Token(PUNCT, ch, line, col))
            advance(1)
            continue

        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(EOF, "", line, col))
    return tokens
