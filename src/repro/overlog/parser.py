"""Recursive-descent parser for OverLog.

Entry point: :func:`parse`, which returns a :class:`ProgramAST`.

Grammar notes (matching the paper's usage):

- A statement is a ``materialize(...)`` declaration or a rule, ending
  with ``.``.
- A rule may start with an optional rule identifier (``rp1``, ``cs2``,
  ...) and an optional ``delete`` keyword.
- ``name@Loc(A, B)`` and ``name(Loc, A, B)`` are equivalent; both yield
  a functor with args ``[Loc, A, B]``.
- Head arguments may be aggregates (``count<*>``, ``min<D>``, ...).
- Body terms are functors, assignments (``X := expr``) or boolean
  conditions; ``X in (A, B]`` is circular interval membership.
- Built-in function calls are identifiers starting with ``f_``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.overlog import ast
from repro.overlog.ast import AGGREGATE_FUNCS
from repro.overlog.lexer import (
    EOF,
    IDENT,
    NUMBER,
    PUNCT,
    STRING,
    VARIABLE,
    Token,
    tokenize,
)
from repro.overlog.types import INFINITY


def parse(source: str) -> ast.ProgramAST:
    """Parse OverLog source text into a :class:`ProgramAST`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token if token is not None else self._peek()
        return ParseError(
            f"{message}, got {token.kind}({token.value!r})",
            token.line,
            token.column,
        )

    def _expect_punct(self, lexeme: str) -> Token:
        token = self._next()
        if not token.is_punct(lexeme):
            raise self._error(f"expected {lexeme!r}", token)
        return token

    def _expect_kind(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(f"expected {kind}", token)
        return token

    def _accept_punct(self, lexeme: str) -> bool:
        if self._peek().is_punct(lexeme):
            self._next()
            return True
        return False

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        program = ast.ProgramAST()
        while self._peek().kind != EOF:
            program.statements.append(self._statement())
        return program

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind == IDENT and token.value == "materialize":
            return self._materialize()
        if (
            token.kind == IDENT
            and token.value == "watch"
            and self._peek(1).is_punct("(")
            and self._peek(2).kind == IDENT
            and self._peek(3).is_punct(")")
            and self._peek(4).is_punct(".")
        ):
            return self._watch()
        return self._rule()

    def _watch(self) -> ast.Watch:
        self._next()  # 'watch'
        self._expect_punct("(")
        name = self._expect_kind(IDENT).value
        self._expect_punct(")")
        self._expect_punct(".")
        return ast.Watch(name)

    # -- materialize -------------------------------------------------------

    def _materialize(self) -> ast.Materialize:
        self._next()  # 'materialize'
        self._expect_punct("(")
        name = self._expect_kind(IDENT).value
        self._expect_punct(",")
        lifetime = self._bound()
        self._expect_punct(",")
        max_size = self._bound()
        self._expect_punct(",")
        keys_token = self._expect_kind(IDENT)
        if keys_token.value != "keys":
            raise self._error("expected 'keys'", keys_token)
        self._expect_punct("(")
        keys = [self._key_position()]
        while self._accept_punct(","):
            keys.append(self._key_position())
        self._expect_punct(")")
        self._expect_punct(")")
        self._expect_punct(".")
        return ast.Materialize(name, lifetime, max_size, keys)

    def _bound(self):
        token = self._next()
        if token.kind == NUMBER:
            return _number_value(token.value)
        if token.kind == IDENT and token.value == "infinity":
            return INFINITY
        raise self._error("expected a number or 'infinity'", token)

    def _key_position(self) -> int:
        token = self._expect_kind(NUMBER)
        value = _number_value(token.value)
        if not isinstance(value, int) or value < 1:
            raise self._error("key positions are 1-based integers", token)
        return value

    # -- rules --------------------------------------------------------------

    def _rule(self) -> ast.Rule:
        rule_id: Optional[str] = None
        delete = False

        # A leading identifier followed by another identifier is a rule id
        # (e.g. "rp1 reqBestSucc@..." or "cs10 delete lookupCluster@...").
        # "delete" itself is always the keyword, never a rule id.
        token = self._peek()
        if (
            token.kind == IDENT
            and token.value != "delete"
            and self._peek(1).kind == IDENT
        ):
            rule_id = self._next().value

        # After an optional rule id, allow the delete keyword.
        token = self._peek()
        if token.kind == IDENT and token.value == "delete":
            if self._peek(1).kind == IDENT:
                self._next()
                delete = True

        head = self._functor(in_head=True)
        self._expect_punct(":-")
        body: List[ast.BodyTerm] = [self._body_term()]
        while self._accept_punct(","):
            body.append(self._body_term())
        self._expect_punct(".")
        rule = ast.Rule(head=head, body=body, rule_id=rule_id, delete=delete)
        rule.source = str(rule)
        return rule

    def _functor(self, in_head: bool = False) -> ast.Functor:
        name = self._expect_kind(IDENT).value
        args: List[ast.Expr] = []
        explicit_location: Optional[ast.Expr] = None
        if self._accept_punct("@"):
            explicit_location = self._primary()
        self._expect_punct("(")
        if not self._peek().is_punct(")"):
            args.append(self._argument(in_head))
            while self._accept_punct(","):
                args.append(self._argument(in_head))
        self._expect_punct(")")
        if explicit_location is not None:
            args = [explicit_location] + args
        if not args:
            raise ParseError(
                f"functor {name!r} needs a location specifier "
                "(either name@Loc(...) or a first argument)"
            )
        return ast.Functor(name, args)

    def _argument(self, in_head: bool) -> ast.Expr:
        if in_head and self._looks_like_aggregate():
            return self._aggregate()
        return self._expression()

    def _looks_like_aggregate(self) -> bool:
        token = self._peek()
        if token.kind != IDENT or token.value not in AGGREGATE_FUNCS:
            return False
        if not self._peek(1).is_punct("<"):
            return False
        inner = self._peek(2)
        if not (inner.is_punct("*") or inner.kind == VARIABLE):
            return False
        return self._peek(3).is_punct(">")

    def _aggregate(self) -> ast.Aggregate:
        func = self._next().value
        self._expect_punct("<")
        token = self._next()
        var = None if token.is_punct("*") else token.value
        self._expect_punct(">")
        return ast.Aggregate(func, var)

    # -- body terms -----------------------------------------------------------

    def _body_term(self) -> ast.BodyTerm:
        token = self._peek()
        # Assignment: VARIABLE := expr
        if token.kind == VARIABLE and self._peek(1).is_punct(":="):
            var = self._next().value
            self._next()  # :=
            return ast.Assign(var, self._expression())
        # Functor: IDENT followed by '@' or '(' (but f_* calls are exprs).
        if token.kind == IDENT and not token.value.startswith("f_"):
            follower = self._peek(1)
            if follower.is_punct("@") or follower.is_punct("("):
                return self._functor()
        return ast.Cond(self._expression())

    # -- expressions -------------------------------------------------------------
    #
    # Precedence (loosest first): || , && , in , comparison , + - , * / % ,
    # unary, primary.

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._peek().is_punct("||"):
            self._next()
            left = ast.BinOp("||", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._in_expr()
        while self._peek().is_punct("&&"):
            self._next()
            left = ast.BinOp("&&", left, self._in_expr())
        return left

    def _in_expr(self) -> ast.Expr:
        left = self._cmp_expr()
        token = self._peek()
        if token.kind == IDENT and token.value == "in":
            self._next()
            return self._interval(left)
        return left

    def _interval(self, subject: ast.Expr) -> ast.RangeCheck:
        open_token = self._next()
        if open_token.is_punct("("):
            low_closed = False
        elif open_token.is_punct("["):
            low_closed = True
        else:
            raise self._error("expected '(' or '[' after 'in'", open_token)
        low = self._expression()
        self._expect_punct(",")
        high = self._expression()
        close_token = self._next()
        if close_token.is_punct(")"):
            high_closed = False
        elif close_token.is_punct("]"):
            high_closed = True
        else:
            raise self._error("expected ')' or ']'", close_token)
        return ast.RangeCheck(subject, low, high, low_closed, high_closed)

    def _cmp_expr(self) -> ast.Expr:
        left = self._add_expr()
        token = self._peek()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if token.is_punct(op):
                self._next()
                return ast.BinOp(op, left, self._add_expr())
        return left

    def _add_expr(self) -> ast.Expr:
        left = self._mul_expr()
        while True:
            token = self._peek()
            if token.is_punct("+") or token.is_punct("-"):
                self._next()
                left = ast.BinOp(token.value, left, self._mul_expr())
            else:
                return left

    def _mul_expr(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_punct("*") or token.is_punct("/") or token.is_punct("%"):
                self._next()
                left = ast.BinOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("-"):
            self._next()
            return ast.UnaryOp("-", self._unary())
        if token.is_punct("!"):
            self._next()
            return ast.UnaryOp("!", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._next()
        if token.kind == NUMBER:
            return ast.Const(_number_value(token.value))
        if token.kind == STRING:
            return ast.Const(token.value)
        if token.kind == VARIABLE:
            return ast.Var(token.value)
        if token.is_punct("("):
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("["):
            items: List[ast.Expr] = []
            if not self._peek().is_punct("]"):
                items.append(self._expression())
                while self._accept_punct(","):
                    items.append(self._expression())
            self._expect_punct("]")
            return ast.ListExpr(tuple(items))
        if token.kind == IDENT:
            if token.value == "true":
                return ast.Const(True)
            if token.value == "false":
                return ast.Const(False)
            if token.value == "infinity":
                return ast.Const(INFINITY)
            if token.value.startswith("f_"):
                self._expect_punct("(")
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self._expression())
                    while self._accept_punct(","):
                        args.append(self._expression())
                self._expect_punct(")")
                return ast.FuncCall(token.value, tuple(args))
            return ast.SymbolicConst(token.value)
        raise self._error("expected an expression", token)


def _number_value(text: str):
    """Convert a NUMBER lexeme to int or float."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
