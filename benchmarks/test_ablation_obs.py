"""Ablation: what the telemetry plane costs (docs/OBSERVABILITY.md).

Three claims are pinned on a fixed single-node workload:

- **determinism** — two disabled runs produce identical virtual-clock
  measurements (the baseline is exact, not statistical);
- **no heisenberg** — enabling observability does not change the
  simulation: the virtual-clock sample (cpu%, tx, tuples, ops) of the
  enabled run equals the disabled run *exactly*, because spans and the
  flight recorder never touch the sim clock or the random streams;
- **bounded wall cost** — the real-time overhead of recording spans,
  histograms, and events is measured and written to
  ``benchmarks/results/BENCH_obs.json`` for trend tooling, alongside
  the usual text table.
"""

import time

import pytest

from benchmarks.common import Row, sample_to_row, write_json, write_results
from repro.core.metrics import Meter
from repro.core.system import System

WORKLOAD = """
materialize(state, 60, 200, keys(1,2)).
w1 state@N(E) :- periodic@N(E, 0.5).
w2 derived@N(S) :- state@N(S).
w3 chained@N(S) :- derived@N(S).
"""

WINDOW = 120.0


def run_one(label: str, observability: bool):
    wall0 = time.perf_counter()
    system = System(seed=5, observability=observability)
    node = system.add_node("n:1")
    node.install_source(WORKLOAD, name="workload")
    system.run_for(20.0)
    meter = Meter(system)
    meter.start()
    system.run_for(WINDOW)
    sample = meter.stop()
    wall = time.perf_counter() - wall0
    return sample_to_row(label, sample), sample, wall, system


def virtual_signature(sample) -> tuple:
    """Everything the simulation computed, independent of wall time."""
    return (
        sample.cpu_percent,
        sample.tx_messages,
        sample.live_tuples,
        sample.memory_bytes,
        sample.churn_bytes,
        tuple(sorted(sample.ops.items())),
    )


def run_ablation():
    baseline_row, baseline, wall_a, _ = run_one("disabled", False)
    repeat_row, repeat, wall_b, _ = run_one("disabled#2", False)
    enabled_row, enabled, wall_c, system = run_one("enabled", True)
    return {
        "rows": [baseline_row, repeat_row, enabled_row],
        "samples": (baseline, repeat, enabled),
        "walls": (wall_a, wall_b, wall_c),
        "system": system,
    }


@pytest.mark.benchmark(group="ablation")
def test_obs_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    baseline, repeat, enabled = result["samples"]
    wall_a, wall_b, wall_c = result["walls"]
    system = result["system"]

    # Determinism: same seed, same config => identical measurements.
    assert virtual_signature(baseline) == virtual_signature(repeat)
    # No heisenberg: telemetry must not perturb the simulation.
    assert virtual_signature(enabled) == virtual_signature(baseline)

    # The enabled run actually recorded something.
    records = system.telemetry.recorder.snapshot()
    spans = [r for r in records if r["type"] == "span"]
    assert spans, "enabled run recorded no spans"
    rule_hist = system.telemetry.rule_duration.merged()
    assert rule_hist.count > 0

    baseline_wall = min(wall_a, wall_b)
    overhead = (wall_c - baseline_wall) / baseline_wall
    write_results(
        "ablation_obs",
        f"Ablation: telemetry plane on a fixed workload "
        f"(window {WINDOW:.0f}s, overhead {100 * overhead:+.1f}% wall)",
        result["rows"],
    )
    write_json(
        "BENCH_obs",
        {
            "workload": {"window_s": WINDOW, "seed": 5, "nodes": 1},
            "wall_seconds": {
                "disabled": baseline_wall,
                "enabled": wall_c,
            },
            "overhead_ratio": overhead,
            "spans_recorded": len(spans),
            "records_total": len(records),
            "rule_duration_seconds": {
                "count": rule_hist.count,
                "mean": rule_hist.mean(),
                "p50": rule_hist.percentile(50),
                "p95": rule_hist.percentile(95),
                "p99": rule_hist.percentile(99),
                "max": rule_hist.max,
            },
            "ops_per_wall_second": {
                "disabled": sum(baseline.ops.values()) / baseline_wall,
                "enabled": sum(enabled.ops.values()) / wall_c,
            },
        },
    )
