"""Ablation: semantic successor trimming (DESIGN.md §6, rules sw1-sw4).

Chord keeps the k *closest* successors; a table that merely caps size
(evicting by age) fills with arbitrary gossiped members and converges
slowly, because the true successor must both arrive and survive
eviction pressure.  This ablation compares time-to-oracle-correct ring
with trimming on (succ_keep=4) versus effectively off (succ_keep equal
to the table cap, so the trim rule never fires).
"""

import pytest

from repro.chord import ChordNetwork, ChordParams

POPULATION = 21
DEADLINE = 600.0


def time_to_stable(succ_keep: int) -> float:
    params = ChordParams(succ_keep=succ_keep)
    net = ChordNetwork(num_nodes=POPULATION, seed=23, params=params)
    net.start()
    checkpoint = 5.0
    while net.system.now < DEADLINE:
        if net.ring_correct():
            return net.system.now
        net.run_for(checkpoint)
    return float("inf") if not net.ring_correct() else net.system.now


@pytest.mark.benchmark(group="ablation")
def test_succ_trimming_speeds_convergence(benchmark):
    def run():
        return time_to_stable(4), time_to_stable(16)

    trimmed, untrimmed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ntime to oracle-correct ring ({POPULATION} nodes): "
        f"trimmed(k=4) {trimmed:.0f}s vs untrimmed {untrimmed:.0f}s"
    )
    assert trimmed <= DEADLINE
    # Trimming must not be slower; at this population it is typically
    # several times faster (untrimmed may not converge at all).
    assert trimmed <= untrimmed
