"""BENCH_scale: batched vs per-tuple throughput on a monitored ring.

The scale benchmark the batch-execution kernel is pinned by: boot a
Chord ring (1,000 nodes for the published artifact), install the
paper's monitors — ring probes plus the status-flow fan-in monitor,
whose collectors absorb the many-to-few telemetry stream that
monitoring overlays exist for — and measure a steady-state window
under both execution kernels on the same seed:

- ``events_per_wall_second`` — logical events (messages delivered +
  rule firings) per second of real time; the headline series;
- ``sim_over_wall`` — how much faster than real time the simulated
  deployment runs;
- kernel shape (ticks executed, largest single-tick batch).

Both kernels execute the identical workload — the differential battery
(``tests/batchexec``) proves bit-identical state, and this benchmark
re-checks that the two runs counted exactly the same logical events —
so the ratio isolates execution machinery, not semantic drift.

Run as a script or via ``python -m benchmarks.bench_scale``::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --nodes 1000 --window 5 --out benchmarks/results/BENCH_scale.json

The CI ``scale-smoke`` job runs ``--nodes 256 --window 3`` nightly and
uploads the JSON as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, Optional

from repro.chord.harness import ChordNetwork
from repro.monitors import RingProbeMonitor, StatusFlowMonitor
from repro.sim.batch import DEFAULT_TICK, ExecutionConfig

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_scale.json"
)


def run_mode(
    execution: ExecutionConfig,
    nodes: int,
    seed: int,
    *,
    window: float = 5.0,
    report_period: float = 0.2,
    metrics: int = 8,
    collectors: int = 4,
    join_spacing: float = 0.05,
    settle: float = 30.0,
) -> Dict[str, Any]:
    """One kernel's measured window; returns its result row."""
    net = ChordNetwork(num_nodes=nodes, seed=seed, execution=execution)
    setup_t0 = time.perf_counter()
    net.start(join_spacing=join_spacing)
    net.run_for(nodes * join_spacing + settle)

    RingProbeMonitor(probe_period=15.0).install(
        net.system.node(a) for a in net.addresses
    )
    StatusFlowMonitor(report_period=report_period).install(
        net.system.node(a) for a in net.addresses
    )
    sinks = net.addresses[:collectors]
    for i, addr in enumerate(net.addresses):
        node = net.system.node(addr)
        for metric in range(metrics):
            node.inject(
                "collectorOf", (addr, metric, sinks[(i + metric) % collectors])
            )
    net.run_for(2.0)  # let the report/probe streams reach steady state
    setup_wall = time.perf_counter() - setup_t0

    def totals() -> Dict[str, int]:
        stats = net.system.network.stats
        return {
            "delivered": stats.messages_delivered,
            "rules": sum(
                net.system.node(a).rule_executions for a in net.addresses
            ),
            "sim_events": net.system.sim.events_processed,
        }

    before = totals()
    t0 = time.perf_counter()
    net.run_for(window)
    wall = time.perf_counter() - t0
    after = totals()

    delivered = after["delivered"] - before["delivered"]
    rules = after["rules"] - before["rules"]
    events = delivered + rules
    kernel = net.system.sim.kernel
    return {
        "mode": execution.label,
        "batched": execution.batched,
        "window_sim_seconds": window,
        "window_wall_seconds": round(wall, 4),
        "setup_wall_seconds": round(setup_wall, 4),
        "messages_delivered": delivered,
        "rule_executions": rules,
        "events": events,
        "events_per_wall_second": round(events / wall, 1),
        "sim_over_wall": round(window / wall, 4),
        "scheduler_events_dispatched": (
            after["sim_events"] - before["sim_events"]
        ),
        "kernel_ticks": None if kernel is None else kernel.ticks,
        "kernel_max_tick_events": (
            None if kernel is None else kernel.max_tick_events
        ),
        # Successor-pointer mismatches vs the oracle ring at window end.
        # At 1,000 nodes the ring is still converging during the
        # window — stabilization traffic is part of the workload, and
        # the count (identical across kernels by the battery's
        # contract) records how far along it is.
        "ring_mismatches": len(net.ring_errors()),
    }


def run_benchmark(
    nodes: int = 1000,
    seed: int = 0,
    window: float = 5.0,
    report_period: float = 0.2,
    metrics: int = 8,
    collectors: int = 4,
    settle: float = 30.0,
) -> Dict[str, Any]:
    """Both kernels on the same seed; returns the BENCH_scale document."""
    kwargs = dict(
        window=window,
        report_period=report_period,
        metrics=metrics,
        collectors=collectors,
        settle=settle,
    )
    per_tuple = run_mode(
        ExecutionConfig(batch_size=1, tick=DEFAULT_TICK), nodes, seed, **kwargs
    )
    batched = run_mode(
        ExecutionConfig(batch_size=None, tick=DEFAULT_TICK),
        nodes,
        seed,
        **kwargs,
    )
    return {
        "benchmark": "scale_monitored_ring",
        "nodes": nodes,
        "seed": seed,
        "workload": {
            "report_period_s": report_period,
            "metrics_per_node": metrics,
            "collectors": collectors,
            "monitors": ["ring-probe", "status-flow"],
        },
        "events_metric": "messages_delivered + rule_executions, per wall second",
        "per_tuple": per_tuple,
        "batched": batched,
        # Same seed + same workload must mean same logical events; a
        # mismatch would invalidate the comparison (and fail the
        # differential battery long before this benchmark runs).
        "events_identical": per_tuple["events"] == batched["events"],
        "speedup": round(
            batched["events_per_wall_second"]
            / per_tuple["events_per_wall_second"],
            3,
        ),
    }


def main(argv: Optional[list] = None) -> Dict[str, Any]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=float, default=5.0)
    parser.add_argument("--report-period", type=float, default=0.2)
    parser.add_argument("--metrics", type=int, default=8)
    parser.add_argument("--collectors", type=int, default=4)
    parser.add_argument(
        "--settle",
        type=float,
        default=30.0,
        help="post-join stabilization time (sim seconds)",
    )
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args(argv)

    result = run_benchmark(
        nodes=args.nodes,
        seed=args.seed,
        window=args.window,
        report_period=args.report_period,
        metrics=args.metrics,
        collectors=args.collectors,
        settle=args.settle,
    )
    for row in (result["per_tuple"], result["batched"]):
        print(
            f"{row['mode']:>24}: {row['events']} events in "
            f"{row['window_wall_seconds']:.2f}s wall — "
            f"{row['events_per_wall_second']:,.0f} events/s, "
            f"sim/wall {row['sim_over_wall']:.2f}x"
        )
    print(
        f"speedup: {result['speedup']}x "
        f"(events identical: {result['events_identical']})"
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return result


if __name__ == "__main__":
    main()
