"""Shared machinery for the figure-regeneration benchmarks.

Every benchmark measures a steady-state window of a simulated
deployment with :class:`repro.core.Meter` and reports the paper's four
series: CPU utilization (work-model proxy, %), memory (estimated tuple
bytes), transmitted messages, and live tuples.  Absolute values are not
comparable to the paper's C++ testbed; the *shapes* (what grows, how
fast, who is cheaper) are the reproduction target — see DESIGN.md §4/§5.

Results are also appended to ``benchmarks/results/*.txt`` so
EXPERIMENTS.md can quote the measured tables.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.chord import ChordNetwork, ChordParams
from repro.core.metrics import Meter, MetricsSample

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The paper's probe/snapshot rate axis: 1/32 ... 1 per second.
PAPER_RATES = (1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0)


@dataclass
class Row:
    """One configuration's measurements.

    ``churn_kib`` is transient tuple allocation during the window (the
    proxy for the paper's process-memory growth when rule outputs are
    events rather than stored state — see EXPERIMENTS.md).
    """

    label: str
    cpu_percent: float
    memory_bytes: float
    tx_messages: int
    live_tuples: float
    churn_kib: float = 0.0

    def formatted(self) -> str:
        return (
            f"{self.label:>12} | cpu {self.cpu_percent:8.3f}% | "
            f"mem {self.memory_bytes / 1024.0:9.1f} KiB | "
            f"tx {self.tx_messages:7d} | live {self.live_tuples:9.1f} | "
            f"churn {self.churn_kib:10.1f} KiB"
        )


def sample_to_row(label: str, sample) -> Row:
    """Build a Row from a MetricsSample."""
    return Row(
        label=label,
        cpu_percent=sample.cpu_percent,
        memory_bytes=sample.memory_bytes,
        tx_messages=sample.tx_messages,
        live_tuples=sample.live_tuples,
        churn_kib=sample.churn_bytes / 1024.0,
    )


def write_results(name: str, title: str, rows: Sequence[Row]) -> str:
    """Render a table, persist it under benchmarks/results/, return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    lines = [title, "-" * len(title)]
    lines += [row.formatted() for row in rows]
    text = "\n".join(lines)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text


def write_text(name: str, text: str) -> str:
    """Persist a free-form result block under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text.rstrip("\n") + "\n")
    print("\n" + text)
    return text


def write_json(name: str, payload: Dict) -> str:
    """Persist a machine-readable result under benchmarks/results/.

    The human-readable tables stay in ``*.txt``; JSON is for trend
    tooling (CI artifact diffing), so it is indented and key-sorted.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def measure_window(
    system,
    addresses: Optional[List[str]],
    warmup: float,
    window: float,
) -> MetricsSample:
    """Warm up, then measure one steady-state window."""
    system.run_for(warmup)
    meter = Meter(system, addresses=addresses)
    meter.start()
    system.run_for(window)
    return meter.stop()


def build_stable_chord(
    num_nodes: int = 8,
    seed: int = 3,
    tracing: bool = False,
    recycle_dead_bug: bool = False,
    settle: float = 60.0,
    params: Optional[ChordParams] = None,
) -> ChordNetwork:
    """A stabilized Chord population ready for measurement."""
    net = ChordNetwork(
        num_nodes=num_nodes,
        seed=seed,
        tracing=tracing,
        recycle_dead_bug=recycle_dead_bug,
        params=params,
    )
    net.start()
    if not net.wait_stable(max_time=300.0):
        raise RuntimeError(f"chord failed to stabilize: {net.ring_errors()}")
    net.run_for(settle)
    return net


def slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope — used for 'grows linearly' shape checks."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def mostly_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when the series grows overall (first < last) and no step
    drops by more than ``tolerance`` of the total range (noise guard)."""
    if values[-1] <= values[0]:
        return False
    span = values[-1] - values[0]
    for a, b in zip(values, values[1:]):
        if b < a - tolerance * span:
            return False
    return True
