"""§4 in-text measurement: the cost of execution logging.

Paper: enabling execution logging on a Chord node raises CPU by ~40%
(0.98 -> 1.38) and memory by ~66% (8 MB -> 13 MB).  We measure the same
A/B — one stabilized Chord population without tracing, one with — and
check the shape: a clear relative overhead on both axes whose absolute
cost remains small.

Setup mirrors the paper at reduced scale: a population stabilizes, then
a late-joining measured node (the paper's "21st node") is observed.
"""

import pytest

from benchmarks.common import (
    Row,
    build_stable_chord,
    measure_window,
    sample_to_row,
    write_results,
)

POPULATION = 10
WARMUP = 30.0
WINDOW = 120.0


def run_one(tracing: bool) -> Row:
    net = build_stable_chord(
        num_nodes=POPULATION, seed=17, tracing=tracing, settle=30.0
    )
    measured = net.add_late_node(tracing=tracing)
    net.run_for(60.0)  # the late node joins and stabilizes
    sample = measure_window(net.system, [measured], WARMUP, WINDOW)
    return sample_to_row("tracing" if tracing else "baseline", sample)


def run_experiment():
    baseline = run_one(tracing=False)
    traced = run_one(tracing=True)
    return baseline, traced


@pytest.mark.benchmark(group="logging-cost")
def test_execution_logging_overhead(benchmark):
    baseline, traced = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    write_results(
        "logging_cost",
        "S4 text: execution logging cost on the measured node "
        f"(window {WINDOW:.0f}s)",
        [baseline, traced],
    )

    cpu_ratio = traced.cpu_percent / baseline.cpu_percent
    mem_delta_kib = (traced.memory_bytes - baseline.memory_bytes) / 1024.0
    print(
        f"\ncpu x{cpu_ratio:.2f} (paper x1.40); "
        f"memory +{mem_delta_kib:.1f} KiB of trace state"
    )

    # Shape: clear relative CPU overhead (paper saw +40%) that is not a
    # blow-up (the paper calls the absolute increase "minute").
    assert 1.1 < cpu_ratio < 5.0, cpu_ratio
    # Memory: tracing adds trace-table state.  The paper's x1.66 ratio
    # includes ~8 MB of process base memory our stored-tuple proxy does
    # not model, so we assert on the absolute delta instead: clearly
    # positive, yet bounded (well under a MiB for one node).
    assert 1.0 < mem_delta_kib < 1024.0, mem_delta_kib
    # Tracing is node-local: it must not add network traffic.
    assert traced.tx_messages <= baseline.tx_messages * 1.2
