"""Figure 4: cost of an increasing number of periodic rules.

Paper: N copies of ``result@NAddr() :- periodic@NAddr(E, 1).`` run on a
Chord node; CPU grows roughly proportionally with N (to ~4.5% at 250
from a ~1% baseline) and memory settles ~70% above Chord's.

We install N-rule programs on the measured node of a stabilized Chord
population and sweep the paper's axis.
"""

import pytest

from benchmarks.common import (
    sample_to_row,
    Row,
    build_stable_chord,
    measure_window,
    mostly_increasing,
    slope,
    write_results,
)

RULE_COUNTS = (0, 50, 100, 150, 250)
WARMUP = 10.0
WINDOW = 60.0


def periodic_rules_program(count: int) -> str:
    return "\n".join(
        f"pr{i} result{i}@NAddr() :- periodic@NAddr(E, 1)."
        for i in range(count)
    )


def run_one(count: int) -> Row:
    net = build_stable_chord(num_nodes=8, seed=17, settle=30.0)
    measured = net.live_addresses()[-1]
    if count:
        net.node(measured).install_source(
            periodic_rules_program(count), name=f"fig4-{count}"
        )
    sample = measure_window(net.system, [measured], WARMUP, WINDOW)
    return sample_to_row(f"{count} rules", sample)


def run_sweep():
    return [run_one(count) for count in RULE_COUNTS]


@pytest.mark.benchmark(group="fig4")
def test_fig4_periodic_rule_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_results(
        "fig4_periodic_rules",
        f"Figure 4: periodic rules at 1 Hz (window {WINDOW:.0f}s)",
        rows,
    )

    cpus = [r.cpu_percent for r in rows]
    # Shape: CPU grows monotonically with the rule count...
    assert mostly_increasing(cpus, tolerance=0.05), cpus
    # ...and roughly proportionally: the per-rule cost at 250 rules is
    # within 3x of the per-rule cost at 50 rules (linear, not super-).
    per_rule_50 = (cpus[1] - cpus[0]) / 50
    per_rule_250 = (cpus[-1] - cpus[0]) / 250
    assert per_rule_50 > 0
    assert 1 / 3 < per_rule_250 / per_rule_50 < 3, (per_rule_50, per_rule_250)
    # Memory: the paper attributes its growth to "the increased rates of
    # intermediate tuples generated"; our transient-churn series shows
    # exactly that growth (stored-tuple bytes stay flat, since the
    # synthetic rules' outputs are events — see EXPERIMENTS.md).
    churn = [r.churn_kib for r in rows]
    assert mostly_increasing(churn, tolerance=0.05), churn
