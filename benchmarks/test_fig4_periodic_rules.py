"""Figure 4: cost of an increasing number of periodic rules.

Paper: N copies of ``result@NAddr() :- periodic@NAddr(E, 1).`` run on a
Chord node; CPU grows roughly proportionally with N (to ~4.5% at 250
from a ~1% baseline) and memory settles ~70% above Chord's.

We install N-rule programs on the measured node of a stabilized Chord
population and sweep the paper's axis.
"""

import pytest

from benchmarks.common import (
    sample_to_row,
    Row,
    build_stable_chord,
    measure_window,
    mostly_increasing,
    slope,
    write_results,
    write_text,
)
from repro.core.metrics import Meter
from repro.monitors import ExecutionProfiler
from repro.overlog.types import NodeID
from repro.runtime.planner import scan_joins

RULE_COUNTS = (0, 50, 100, 150, 250)
WARMUP = 10.0
WINDOW = 60.0


def periodic_rules_program(count: int) -> str:
    return "\n".join(
        f"pr{i} result{i}@NAddr() :- periodic@NAddr(E, 1)."
        for i in range(count)
    )


def run_one(count: int) -> Row:
    net = build_stable_chord(num_nodes=8, seed=17, settle=30.0)
    measured = net.live_addresses()[-1]
    if count:
        net.node(measured).install_source(
            periodic_rules_program(count), name=f"fig4-{count}"
        )
    sample = measure_window(net.system, [measured], WARMUP, WINDOW)
    return sample_to_row(f"{count} rules", sample)


def run_sweep():
    return [run_one(count) for count in RULE_COUNTS]


@pytest.mark.benchmark(group="fig4")
def test_fig4_periodic_rule_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_results(
        "fig4_periodic_rules",
        f"Figure 4: periodic rules at 1 Hz (window {WINDOW:.0f}s)",
        rows,
    )

    cpus = [r.cpu_percent for r in rows]
    # Shape: CPU grows monotonically with the rule count...
    assert mostly_increasing(cpus, tolerance=0.05), cpus
    # ...and roughly proportionally: the per-rule cost at 250 rules is
    # within 3x of the per-rule cost at 50 rules (linear, not super-).
    per_rule_50 = (cpus[1] - cpus[0]) / 50
    per_rule_250 = (cpus[-1] - cpus[0]) / 250
    assert per_rule_50 > 0
    assert 1 / 3 < per_rule_250 / per_rule_50 < 3, (per_rule_50, per_rule_250)
    # Memory: the paper attributes its growth to "the increased rates of
    # intermediate tuples generated"; our transient-churn series shows
    # exactly that growth (stored-tuple bytes stay flat, since the
    # synthetic rules' outputs are events — see EXPERIMENTS.md).
    churn = [r.churn_kib for r in rows]
    assert mostly_increasing(churn, tolerance=0.05), churn


# ---------------------------------------------------------------------------
# Hash-indexed joins: scan vs index on the §3.2 profiling workload.
#
# Execution profiling walks the trace graph backwards: every hop joins
# ``ruleBack`` against ``ruleExec``/``tupleTable`` with the current
# tuple ID bound.  Those tables hold the *entire recent execution
# history* of a traced node, so a scanning join examines thousands of
# rows per hop while a hash probe touches only the matching bucket.
# This is the workload the secondary-index layer exists for.


def run_profiled_lookups(use_indexes: bool):
    """Traced Chord + ExecutionProfiler; profile a batch of lookups and
    meter the join work.  ``use_indexes=False`` replans every rule with
    scanning joins (the pre-index engine)."""

    def build():
        net = build_stable_chord(
            num_nodes=6, seed=17, tracing=True, settle=60.0
        )
        nodes = [net.node(a) for a in net.live_addresses()]
        profiler = ExecutionProfiler(stop_rule="l1")
        handle = profiler.install(nodes)
        return net, profiler, handle

    if use_indexes:
        net, profiler, handle = build()
    else:
        with scan_joins():
            net, profiler, handle = build()

    live = net.live_addresses()
    meter = Meter(net.system, addresses=list(live))
    meter.start()
    for i in range(12):
        key = NodeID(i * 0x1234567 + 99)
        result = net.lookup(live[i % len(live)], key)
        assert result is not None
        profiler.profile_tuple(net.node(result.values[0]), result)
        net.run_for(2.0)
    sample = meter.stop()
    return sample, handle.count("report")


@pytest.mark.benchmark(group="fig4")
def test_fig4_join_probe_index_win(benchmark):
    (scan, scan_reports), (indexed, indexed_reports) = benchmark.pedantic(
        lambda: [run_profiled_lookups(False), run_profiled_lookups(True)],
        rounds=1,
        iterations=1,
    )

    # Same workload, same walks completed.
    assert scan_reports > 0
    assert indexed_reports == scan_reports

    scan_rows = scan.join_rows_examined
    indexed_rows = indexed.join_rows_examined
    ratio = scan_rows / max(1, indexed_rows)
    write_text(
        "fig4_join_probe_index",
        "\n".join(
            [
                "Joins on the profiling workload: scan vs hash index",
                "---------------------------------------------------",
                f"   scan joins | rows examined {scan_rows:9d} | "
                f"cpu {scan.cpu_percent:8.3f}% | reports {scan_reports}",
                f"indexed joins | rows examined {indexed_rows:9d} | "
                f"cpu {indexed.cpu_percent:8.3f}% | reports {indexed_reports}",
                f"    reduction | {ratio:8.1f}x fewer rows examined",
            ]
        ),
    )

    # The index must prune the per-hop ruleExec/tupleTable scans by at
    # least 5x on this workload (it is closer to two orders in practice).
    assert ratio >= 5.0, (scan_rows, indexed_rows)
    # Indexed mode replaces scanning probes, not adds to them.
    assert indexed.ops.get("join_indexed", 0) > 0
