"""Figure 6: overhead of the proactive consistency detector vs. rate.

Paper: probes at rates 1/32 ... 1 per second (plus a no-probe baseline),
measured on the probing node.  Memory and transmitted messages grow
linearly with the rate; CPU grows steeply (the paper reports
superlinear growth, attributed to probes contending for cycles — a
discrete-event work model has no contention, so we verify strong
near-linear growth; see EXPERIMENTS.md).

Setup mirrors the paper: one node initiates probes ("a node initiates a
periodic consistency probe"), and that initiator is the measured node.
"""

import pytest

from benchmarks.common import (
    PAPER_RATES,
    Row,
    build_stable_chord,
    measure_window,
    mostly_increasing,
    sample_to_row,
    write_results,
)
from repro.monitors import ConsistencyProbeMonitor

WARMUP = 10.0
WINDOW = 100.0
POPULATION = 14


def rate_label(rate) -> str:
    if rate is None:
        return "none"
    return f"1/{round(1 / rate)}" if rate < 1 else "1"


def run_one(rate) -> Row:
    net = build_stable_chord(num_nodes=POPULATION, seed=19, settle=60.0)
    initiator = net.node(net.live_addresses()[-1])
    if rate is not None:
        ConsistencyProbeMonitor(
            probe_period=1.0 / rate,
            tally_period=max(1.0 / rate / 2, 1.0),
        ).install([initiator])
    sample = measure_window(net.system, [initiator.address], WARMUP, WINDOW)
    return sample_to_row(rate_label(rate), sample)


def run_sweep():
    return [run_one(None)] + [run_one(rate) for rate in PAPER_RATES]


@pytest.mark.benchmark(group="fig6")
def test_fig6_consistency_probe_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_results(
        "fig6_consistency_probes",
        f"Figure 6: proactive consistency probes, rate sweep "
        f"(window {WINDOW:.0f}s, measured on the probing node, "
        f"{POPULATION} nodes)",
        rows,
    )

    baseline, swept = rows[0], rows[1:]
    rates = list(PAPER_RATES)
    tx = [r.tx_messages for r in swept]
    live = [r.live_tuples for r in swept]
    cpu = [r.cpu_percent for r in swept]
    mem = [r.memory_bytes for r in swept]

    # Probing costs something at every rate.
    assert swept[0].tx_messages > baseline.tx_messages
    assert swept[0].cpu_percent > baseline.cpu_percent

    # Messages, live tuples and memory grow with the rate.
    assert mostly_increasing(tx, tolerance=0.05), tx
    assert mostly_increasing(live, tolerance=0.10), live
    assert mostly_increasing(mem, tolerance=0.10), mem

    # Tx linearity: scaling the rate 32x scales the added traffic
    # comparably (within a factor-2 band).
    added = [t - baseline.tx_messages for t in tx]
    ratio = added[-1] / added[0]
    expected = rates[-1] / rates[0]
    assert 0.4 * expected < ratio < 2.5 * expected, (ratio, expected)

    # Strong CPU growth with rate.
    added_cpu = [c - baseline.cpu_percent for c in cpu]
    assert added_cpu[-1] / max(added_cpu[0], 1e-9) >= 0.6 * expected
