"""Figure 5: cost of piggy-backed rules with a state lookup.

Paper: N copies of ``result@NAddr() :- event@NAddr(), bestSucc@NAddr(
SID, SAddr).`` share one 1 Hz timer; CPU grows roughly linearly to ~6%
at 250 copies — *steeper* than Figure 4's private-timer rules, because
each copy performs a table lookup ("state lookups are therefore
costlier than private timers").
"""

import pytest

from benchmarks.common import (
    sample_to_row,
    Row,
    build_stable_chord,
    measure_window,
    mostly_increasing,
    slope,
    write_results,
)
from benchmarks.test_fig4_periodic_rules import (
    RULE_COUNTS,
    WARMUP,
    WINDOW,
    periodic_rules_program,
)


def piggyback_program(count: int) -> str:
    # One shared timer produces the driving event; every copy joins the
    # node's bestSucc table, as in the paper.
    rules = ["drv fig5event@NAddr() :- periodic@NAddr(E, 1)."]
    rules += [
        f"pb{i} result{i}@NAddr() :- fig5event@NAddr(), "
        "bestSucc@NAddr(SID, SAddr)."
        for i in range(count)
    ]
    return "\n".join(rules)


def run_one(count: int) -> Row:
    net = build_stable_chord(num_nodes=8, seed=17, settle=30.0)
    measured = net.live_addresses()[-1]
    if count:
        net.node(measured).install_source(
            piggyback_program(count), name=f"fig5-{count}"
        )
    sample = measure_window(net.system, [measured], WARMUP, WINDOW)
    return sample_to_row(f"{count} rules", sample)


def run_sweep():
    return [run_one(count) for count in RULE_COUNTS]


@pytest.mark.benchmark(group="fig5")
def test_fig5_piggyback_rule_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_results(
        "fig5_piggyback_rules",
        f"Figure 5: piggy-backed rules with a bestSucc lookup "
        f"(window {WINDOW:.0f}s)",
        rows,
    )
    cpus = [r.cpu_percent for r in rows]
    assert mostly_increasing(cpus, tolerance=0.05), cpus


@pytest.mark.benchmark(group="fig5")
def test_fig5_state_lookups_costlier_than_private_timers(benchmark):
    """The cross-figure claim: comparing Fig 5 to Fig 4 shows state
    lookups cost more per rule than private timers."""

    def both_at_250():
        fig4 = run_fig4_250()
        fig5 = run_one(250)
        return fig4, fig5

    def run_fig4_250():
        net = build_stable_chord(num_nodes=8, seed=17, settle=30.0)
        measured = net.live_addresses()[-1]
        net.node(measured).install_source(
            periodic_rules_program(250), name="fig4-250"
        )
        sample = measure_window(net.system, [measured], WARMUP, WINDOW)
        return sample.cpu_percent

    fig4_cpu, fig5_row = benchmark.pedantic(
        both_at_250, rounds=1, iterations=1
    )
    print(
        f"\n250 rules: fig4 (private timers) {fig4_cpu:.3f}% vs "
        f"fig5 (piggyback + lookup) {fig5_row.cpu_percent:.3f}%"
    )
    assert fig5_row.cpu_percent > fig4_cpu
