"""Ablation: where the tracing overhead comes from (DESIGN.md §6).

Two knobs behind the §4 logging-cost number:

- the tracer's record bookkeeping + ruleExec writes (tracing on/off);
- the event logger's tuple/table logs (logging on/off).

Measured on a single node running a fixed synthetic workload, so the
deltas are attributable.
"""

import pytest

from benchmarks.common import Row, sample_to_row, write_results
from repro.core.metrics import Meter
from repro.core.system import System

WORKLOAD = """
materialize(state, 60, 200, keys(1,2)).
w1 state@N(E) :- periodic@N(E, 0.5).
w2 derived@N(S) :- state@N(S).
w3 chained@N(S) :- derived@N(S).
"""

WINDOW = 120.0


def run_one(label: str, tracing: bool, logging: bool) -> Row:
    system = System(seed=5)
    node = system.add_node("n:1", tracing=tracing, logging=logging)
    node.install_source(WORKLOAD, name="workload")
    system.run_for(20.0)
    meter = Meter(system)
    meter.start()
    system.run_for(WINDOW)
    sample = meter.stop()
    return sample_to_row(label, sample)


def run_ablation():
    return [
        run_one("plain", tracing=False, logging=False),
        run_one("logging", tracing=False, logging=True),
        run_one("tracing", tracing=True, logging=False),
        run_one("both", tracing=True, logging=True),
    ]


@pytest.mark.benchmark(group="ablation")
def test_tracer_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_results(
        "ablation_tracer",
        f"Ablation: introspection knobs on a fixed workload "
        f"(window {WINDOW:.0f}s)",
        rows,
    )
    plain, logging, tracing, both = rows
    # Each knob costs something...
    assert logging.cpu_percent > plain.cpu_percent
    assert tracing.cpu_percent > plain.cpu_percent
    assert tracing.live_tuples > plain.live_tuples  # ruleExec/tupleTable
    # ...and the combination costs at least as much as either alone.
    assert both.cpu_percent >= max(logging.cpu_percent, tracing.cpu_percent)


@pytest.mark.benchmark(group="ablation")
def test_trace_tables_are_bounded(benchmark):
    """The paper's 'fixed number of execution records' optimization:
    trace state must plateau, not grow with runtime."""

    def run():
        system = System(seed=6)
        node = system.add_node(
            "n:1", tracing=True, trace_lifetime=30.0, trace_entries=500
        )
        node.install_source(WORKLOAD, name="workload")
        system.run_for(60.0)
        early = node.live_tuples()
        system.run_for(180.0)
        late = node.live_tuples()
        return early, late

    early, late = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntrace state: early={early} late={late}")
    assert late <= early * 1.5
