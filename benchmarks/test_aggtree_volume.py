"""Collector-load benchmark: in-network aggregation vs centralized.

The tentpole's quantitative claim (ISSUE 6): on a 64-node ring with
all bundled global monitors installed, the aggregation tree cuts the
tuples arriving at the collector by at least **5x** versus shipping
every contribution — while producing byte-identical verdicts (the
differential bit rides along in the same run).  The measured run is
persisted as ``benchmarks/results/BENCH_aggtree.json`` for CI trend
tooling; ``python -m repro.aggtree --bench`` produces the same payload.
"""

import pytest

from benchmarks.common import write_json
from repro.aggtree.differential import run_volume_benchmark

#: The floor the CLI (--min-reduction) and CI enforce.
REDUCTION_FLOOR = 5.0


@pytest.mark.slow
def test_aggtree_collector_volume_reduction():
    bench = run_volume_benchmark(seed=0, nodes=64)
    write_json("BENCH_aggtree", bench)
    assert bench["equal"], "tree and centralized verdicts diverged"
    assert bench["reduction_tuples"] >= REDUCTION_FLOOR
    assert bench["reduction_bytes"] > 1.0
    assert (
        bench["collector_inbound_tuples"]["tree"]
        < bench["collector_inbound_tuples"]["centralized"]
    )
