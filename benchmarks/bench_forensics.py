"""BENCH_forensics: backward-slice latency vs durable-log size.

The forensic store's pitch is that post-mortem queries stay cheap no
matter how much history has been spilled: segment sidecars prune by
time / node / tuple-id range, so a backward slice touches a handful of
segments out of thousands.  This benchmark pins that claim:

- synthesize a deterministic workload of rule chains (cross-node, with
  identity records and payloads) over a bed of periodic log noise —
  the BEEP-style storm profile — directly into a store;
- at each log size (default 10k / 100k / 1M logical events), measure
  build throughput, on-disk size, burst-compression ratios, and the
  wall-clock latency of a backward slice of the *last* alarm, both
  cold (fresh open, indexes unbuilt) and warm;
- verify the slice is exactly the alarm's own chain (links, hop, leaf
  input) — pruning must not cost correctness.

The published target: sub-second cold slice at one million events.

Run::

    PYTHONPATH=src python benchmarks/bench_forensics.py \
        --sizes 10000 100000 1000000 \
        --out benchmarks/results/BENCH_forensics.json

The CI ``forensics-smoke`` job runs ``--sizes 10000 100000`` nightly
and uploads the JSON as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import time
from typing import Any, Dict, List

from repro.store import format as fmt
from repro.store.slicing import StoreProvider, backward_slice
from repro.store.store import ForensicStore, StoreConfig

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_forensics.json"
)

#: Synthetic deployment shape: chains hop across this many nodes.
NODES = 8
#: Noise records (periodic tupleLog entries) per chain event — the
#: storm profile burst compression exists for.
NOISE_PER_CHAIN_EVENT = 3


def build_store(directory: str, target_events: int) -> Dict[str, Any]:
    """Fill one store with ~target_events logical events; returns the
    alarm coordinates and raw-encoding byte count for the report."""
    shutil.rmtree(directory, ignore_errors=True)
    store = ForensicStore(
        StoreConfig(directory=directory, segment_events=8192)
    )
    nodes = [f"n{i}:700{i}" for i in range(NODES)]
    tids = {n: 0 for n in nodes}
    seqs = {n: 0 for n in nodes}
    raw_bytes = 0
    clock = 0.0
    alarm = None

    def emit(record: Dict[str, Any]) -> None:
        nonlocal raw_bytes
        raw_bytes += len(fmt.encode(record).encode("utf-8")) + 1
        store._append(record)

    chain_index = 0
    while store.events_appended < target_events:
        clock = round(clock + 0.01, 6)
        src = nodes[chain_index % NODES]
        dst = nodes[(chain_index + 1) % NODES]
        # Noise bed: periodic firings logged on both nodes.
        for node in (src, dst):
            for _ in range(NOISE_PER_CHAIN_EVENT):
                seqs[node] += 1
                emit(
                    fmt.tuple_log_record(
                        node,
                        seqs[node],
                        clock,
                        "periodic",
                        f"periodic({node}, {clock})",
                    )
                )
        # One two-hop chain: start -> mid on src, shipped, -> alarm on dst.
        tids[src] += 1
        start = tids[src]
        emit(
            fmt.tuple_ident_record(
                src,
                start,
                src,
                start,
                src,
                clock,
                {"rel": "start", "v": [src, chain_index]},
            )
        )
        tids[src] += 1
        mid = tids[src]
        emit(
            fmt.tuple_ident_record(
                src,
                mid,
                src,
                mid,
                dst,
                clock,
                {"rel": "hop", "v": [dst, chain_index]},
            )
        )
        emit(
            fmt.rule_exec_record(
                src, "r1", start, mid, clock, clock + 0.001, True
            )
        )
        tids[dst] += 1
        received = tids[dst]
        emit(
            fmt.tuple_ident_record(
                dst,
                received,
                src,
                mid,
                dst,
                clock + 0.002,
                {"rel": "hop", "v": [dst, chain_index]},
            )
        )
        tids[dst] += 1
        final = tids[dst]
        emit(
            fmt.tuple_ident_record(
                dst,
                final,
                dst,
                final,
                dst,
                clock + 0.003,
                {"rel": "alarm", "v": [dst, chain_index]},
            )
        )
        emit(
            fmt.rule_exec_record(
                dst, "r2", received, final, clock + 0.002, clock + 0.003, True
            )
        )
        alarm = {"node": dst, "tid": final, "chain": chain_index}
        chain_index += 1
    store.close()
    return {"store": store, "alarm": alarm, "raw_bytes": raw_bytes}


def check_slice(result, alarm) -> bool:
    """The alarm's slice must be exactly its own two-link chain."""
    return (
        len(result.links) == 2
        and len(result.hops) == 1
        and len(result.inputs) == 1
        and result.inputs[0]["rep"] is not None
        and result.inputs[0]["rep"]["rel"] == "start"
        and result.inputs[0]["rep"]["v"][1] == alarm["chain"]
        and not result.truncated
    )


def run_size(directory: str, target_events: int) -> Dict[str, Any]:
    t0 = time.perf_counter()
    built = build_store(directory, target_events)
    build_seconds = time.perf_counter() - t0
    store = built["store"]
    alarm = built["alarm"]

    cold = ForensicStore.open(directory)
    t0 = time.perf_counter()
    cold_slice = backward_slice(
        StoreProvider(cold), alarm["node"], alarm["tid"]
    )
    cold_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_slice = backward_slice(
        StoreProvider(cold), alarm["node"], alarm["tid"]
    )
    warm_seconds = time.perf_counter() - t0

    row = {
        "events": store.events_appended,
        "records": store.records_written,
        "segments": store.segments_written,
        "bytes": store.bytes_written,
        "raw_bytes": built["raw_bytes"],
        "compression_ratio": round(
            store.events_appended / store.records_written, 4
        ),
        "byte_ratio": round(built["raw_bytes"] / store.bytes_written, 4),
        "build_seconds": round(build_seconds, 4),
        "events_per_second": round(store.events_appended / build_seconds, 1),
        "slice_cold_seconds": round(cold_seconds, 6),
        "slice_warm_seconds": round(warm_seconds, 6),
        "slice_ok": bool(
            check_slice(cold_slice, alarm)
            and cold_slice.to_json() == warm_slice.to_json()
        ),
        "sub_second_slice": cold_seconds < 1.0,
    }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[10_000, 100_000, 1_000_000],
        help="logical-event counts to build and slice against",
    )
    parser.add_argument("--out", default=RESULTS_PATH)
    parser.add_argument(
        "--workdir",
        default=None,
        help="where to build the stores (default: a sibling tmp dir, "
        "removed afterwards)",
    )
    args = parser.parse_args(argv)

    workdir = args.workdir or os.path.join(
        os.path.dirname(os.path.abspath(args.out)) or ".",
        "_bench_forensics_tmp",
    )
    rows: List[Dict[str, Any]] = []
    for size in args.sizes:
        row = run_size(os.path.join(workdir, f"events{size}"), size)
        rows.append(row)
        print(
            f"events={row['events']:>9} segments={row['segments']:>5} "
            f"bytes={row['bytes']:>11} ratio={row['compression_ratio']:.2f}x "
            f"build={row['build_seconds']:.2f}s "
            f"slice cold={row['slice_cold_seconds'] * 1000:.1f}ms "
            f"warm={row['slice_warm_seconds'] * 1000:.1f}ms "
            f"ok={row['slice_ok']}"
        )
    if not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)

    report = {
        "bench": "forensics",
        "config": {
            "nodes": NODES,
            "noise_per_chain_event": NOISE_PER_CHAIN_EVENT,
            "segment_events": 8192,
        },
        "sizes": rows,
        "target": {
            "sub_second_slice_at": max(args.sizes),
            "met": all(r["sub_second_slice"] and r["slice_ok"] for r in rows),
        },
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0 if report["target"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
