"""Figure 7: overhead of consistent snapshots vs. rate.

Paper: snapshots at rates 1/32 ... 1 per second, measured on the
initiating node.  Memory grows linearly but more slowly than with
consistency probes, and CPU grows far less steeply — "consistent
snapshots are much less taxing on the system than the many parallel
lookups initiated by consistency probes for the same rates".

Note on transmitted messages: a snapshot round sends a marker on every
overlay link while a probe round sends one lookup per unique finger, so
the *message* ordering between Figures 6 and 7 depends on population
size (the paper's 21-node probes fan out ~3x wider than ours); the
robust cross-figure claims are CPU and state, which we assert.
"""

import pytest

from benchmarks.common import (
    PAPER_RATES,
    Row,
    build_stable_chord,
    measure_window,
    mostly_increasing,
    sample_to_row,
    write_results,
)
from benchmarks.test_fig6_consistency_probes import (
    POPULATION,
    WARMUP,
    WINDOW,
    rate_label,
    run_one as run_probe_rate,
)
from repro.monitors import SnapshotMonitor

SNAP_RATES = PAPER_RATES


def run_one(rate) -> Row:
    net = build_stable_chord(num_nodes=POPULATION, seed=19, settle=60.0)
    nodes = [net.node(a) for a in net.live_addresses()]
    initiator = nodes[-1]
    if rate is not None:
        SnapshotMonitor(snap_period=1.0 / rate).install_with_initiator(
            nodes, initiator
        )
    sample = measure_window(net.system, [initiator.address], WARMUP, WINDOW)
    return sample_to_row(rate_label(rate), sample)


def run_sweep():
    return [run_one(None)] + [run_one(rate) for rate in SNAP_RATES]


@pytest.mark.benchmark(group="fig7")
def test_fig7_snapshot_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_results(
        "fig7_snapshots",
        f"Figure 7: consistent snapshots, rate sweep "
        f"(window {WINDOW:.0f}s, measured on the initiator, "
        f"{POPULATION} nodes)",
        rows,
    )
    baseline, swept = rows[0], rows[1:]
    tx = [r.tx_messages for r in swept]
    cpu = [r.cpu_percent for r in swept]
    mem = [r.memory_bytes for r in swept]

    assert swept[0].tx_messages > baseline.tx_messages
    assert mostly_increasing(tx, tolerance=0.05), tx
    assert mostly_increasing(cpu, tolerance=0.10), cpu
    assert mostly_increasing(mem, tolerance=0.10), mem


@pytest.mark.benchmark(group="fig7")
def test_fig7_snapshots_cheaper_than_probes(benchmark):
    """The headline cross-figure comparison at the paper's top rate:
    snapshots cost the initiator much less CPU and less state than
    consistency probes."""

    def compare():
        probe = run_probe_rate(1.0)
        snap = run_one(1.0)
        return probe, snap

    probe, snap = benchmark.pedantic(compare, rounds=1, iterations=1)
    probe.label, snap.label = "probes", "snapshots"
    write_results(
        "fig6_vs_fig7",
        "Figures 6 vs 7 at rate 1/s: probes vs snapshots (initiator)",
        [probe, snap],
    )
    assert snap.cpu_percent < 0.66 * probe.cpu_percent
    assert snap.live_tuples < probe.live_tuples
    assert snap.memory_bytes < probe.memory_bytes
