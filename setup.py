"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-build-isolation` on offline hosts whose pip falls
back to the legacy `setup.py develop` code path.
"""

from setuptools import setup

setup()
