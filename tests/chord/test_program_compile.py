from repro.chord.program import ChordParams, chord_program, chord_source
from repro.overlog import ast


def test_default_program_compiles():
    program = chord_program()
    assert len(program.rules) > 30
    table_names = {m.name for m in program.materializations}
    for required in (
        "node",
        "succ",
        "bestSucc",
        "pred",
        "finger",
        "uniqueFinger",
        "pingNode",
        "faultyNode",
    ):
        assert required in table_names


def test_buggy_variant_compiles_and_differs():
    correct = chord_source()
    buggy = chord_source(recycle_dead_bug=True)
    assert correct != buggy
    assert "predCand" in correct      # the count-guard
    assert "predCand" not in buggy    # unconditional adoption
    chord_program(recycle_dead_bug=True)  # must compile


def test_params_flow_into_bindings():
    params = ChordParams(stabilize_period=2.0, ping_period=3.0)
    program = chord_program(params)
    periods = set()
    for rule in program.rules:
        for term in rule.body:
            if isinstance(term, ast.Functor) and term.name == "periodic":
                periods.add(term.args[2].value)
    assert 2.0 in periods
    assert 3.0 in periods


def test_paper_rule_names_present():
    """The rules the paper's monitors hook (lookup l1-l3, stabilization
    sb*, ping pg*) must exist under those names."""
    program = chord_program()
    rule_ids = {r.rule_id for r in program.rules}
    for rid in ("l1", "l2", "l3", "sb1", "sb2", "sb4", "sb7", "bs2", "f1"):
        assert rid in rule_ids, rid


def test_message_schemas_match_monitors():
    """Monitors pattern-match these heads; arities are load-bearing."""
    program = chord_program()
    heads = {}
    for rule in program.rules:
        heads.setdefault(rule.head.name, len(rule.head.args))
    assert heads["lookupResults"] == 6   # loc + 5 fields (paper ri1)
    assert heads["stabilizeRequest"] == 3  # loc + (NID, NAddr) (paper rp4)
    assert heads["sendPred"] == 4        # loc + (PID, PAddr, Src)
    assert heads["returnSucc"] == 4      # loc + (SID, SAddr, Src)
    assert heads["pingReq"] == 2         # loc + sender (paper bp1)
