"""Chord under adverse network conditions.

The paper's testbed had a clean LAN; these tests push the protocol
through lossy and jittery networks to show the soft-state design
(periodic refresh + TTL expiry) rides through what a one-shot protocol
could not.
"""

import pytest

from repro.chord import ChordNetwork, ChordParams
from repro.core.system import System
from repro.net.topology import UniformLatency
from repro.overlog.types import NodeID

pytestmark = pytest.mark.slow


def test_stabilizes_under_message_loss():
    net = ChordNetwork(num_nodes=6, seed=44)
    net.system.network.set_loss_rate(0.05)
    net.start()
    assert net.wait_stable(max_time=300.0), net.ring_errors()


def test_lookups_mostly_correct_under_loss_and_recover():
    """Under sustained loss the ring flaps (successor TTLs expire in
    loss bursts), so some answers are transiently stale — the very
    routing inconsistency §3.1.4's probes measure.  The soft-state
    design must keep the majority correct and fully recover once the
    network is clean again."""
    net = ChordNetwork(num_nodes=6, seed=45)
    net.system.network.set_loss_rate(0.05)
    net.start()
    assert net.wait_stable(max_time=300.0)
    net.run_for(60.0)
    import random

    rng = random.Random(9)
    answered = correct = 0
    for i in range(12):
        key = NodeID(rng.randrange(1 << 32))
        src = net.live_addresses()[i % len(net.live_addresses())]
        result = net.lookup(src, key, timeout=5.0)
        if result is not None:
            answered += 1
            if result.values[3] == net.lookup_owner(key):
                correct += 1
    assert answered >= 8
    assert correct >= answered * 0.6

    # Clean network -> full recovery and perfect answers again.
    net.system.network.set_loss_rate(0.0)
    assert net.wait_stable(max_time=120.0), net.ring_errors()
    net.run_for(30.0)
    for i in range(6):
        key = NodeID(rng.randrange(1 << 32))
        src = net.live_addresses()[i % len(net.live_addresses())]
        result = net.lookup(src, key, timeout=5.0)
        assert result is not None
        assert result.values[3] == net.lookup_owner(key)


def test_consistency_probes_detect_loss_induced_flapping():
    """The §3.1.4 probes observe what the previous test demonstrates:
    under loss the consistency metric is no longer uniformly 1.0 (some
    probes are dropped outright, shrinking clusters; some answers
    disagree)."""
    from repro.monitors import ConsistencyProbeMonitor

    net = ChordNetwork(num_nodes=6, seed=45)
    net.system.network.set_loss_rate(0.08)
    net.start()
    assert net.wait_stable(max_time=300.0)
    nodes = [net.node(a) for a in net.live_addresses()]
    handle = ConsistencyProbeMonitor(
        probe_period=10.0, tally_period=5.0
    ).install(nodes)
    net.run_for(240.0)
    values = [t.values[2] for t in handle.alarms["consistency"]]
    assert values
    assert any(v < 1 for v in values)


def test_stabilizes_under_latency_jitter():
    # Build a system with randomized latency but FIFO channels.
    params = ChordParams()
    net = ChordNetwork(num_nodes=6, seed=46, params=params)
    net.system.network._latency = UniformLatency(
        net.system.sim.random, 0.005, 0.08
    )
    net.start()
    assert net.wait_stable(max_time=300.0), net.ring_errors()


def test_snapshot_completes_under_jitter():
    from repro.monitors import SnapshotMonitor

    net = ChordNetwork(num_nodes=5, seed=47)
    net.system.network._latency = UniformLatency(
        net.system.sim.random, 0.005, 0.08
    )
    net.start()
    assert net.wait_stable(max_time=300.0)
    net.run_for(60.0)
    nodes = [net.node(a) for a in net.live_addresses()]
    monitor = SnapshotMonitor(snap_period=20.0)
    monitor.install_with_initiator(nodes, nodes[0])
    net.run_for(65.0)
    sid = nodes[0].query("currentSnap")[0].values[1]
    assert sid >= 2
    for node in nodes:
        assert SnapshotMonitor.snapshot_complete(
            node, sid
        ) or SnapshotMonitor.snapshot_complete(node, sid - 1)


def test_isolated_node_reintegrates():
    net = ChordNetwork(num_nodes=5, seed=48)
    net.start()
    assert net.wait_stable(max_time=300.0)
    victim = net.live_addresses()[2]
    from repro.faults import FaultInjector

    injector = FaultInjector(net.system)
    injector.isolate(victim)
    net.run_for(60.0)  # long enough to be declared faulty everywhere
    injector.rejoin(victim)
    # The returning node's soft state recovers (it may need a re-join
    # if its bestSucc expired entirely).
    if not net.node(victim).query("bestSucc"):
        nonce = net.system.sim.random.stream("test").randrange(1 << 31)
        net.node(victim).inject("join", (victim, nonce))
    assert net.wait_stable(max_time=300.0), net.ring_errors()
