from hypothesis import given, strategies as st

from repro.chord import ids as ring
from repro.overlog.types import NodeID


def make_ids(values):
    return {f"n{i}": NodeID(v) for i, v in enumerate(values)}


def test_node_id_deterministic():
    assert ring.node_id_for("n1:10001") == ring.node_id_for("n1:10001")
    assert ring.node_id_for("n1:10001") != ring.node_id_for("n2:10002")


def test_ring_order_sorts_by_value():
    ids = make_ids([30, 10, 20])
    assert ring.ring_order(ids) == ["n1", "n2", "n0"]


def test_successor_and_predecessor_maps_are_inverse():
    ids = make_ids([5, 99, 42, 7])
    succ = ring.successor_map(ids)
    pred = ring.predecessor_map(ids)
    for addr in ids:
        assert pred[succ[addr]] == addr


def test_owner_of_key():
    ids = make_ids([10, 20, 30])
    assert ring.owner_of(NodeID(15), ids) == "n1"  # id 20
    assert ring.owner_of(NodeID(10), ids) == "n0"  # exact hit
    assert ring.owner_of(NodeID(35), ids) == "n0"  # wraps around


def test_owner_of_empty_population():
    assert ring.owner_of(NodeID(1), {}) is None


def test_count_wraps_correct_ring_is_one():
    ids = make_ids([5, 10, 20, 200])
    assert ring.count_wraps(ids) == 1


def test_count_wraps_single_node():
    assert ring.count_wraps(make_ids([5])) == 1


@given(st.lists(st.integers(0, (1 << 32) - 1), min_size=2, max_size=20, unique=True))
def test_correct_ring_always_has_one_wrap(values):
    assert ring.count_wraps(make_ids(values)) == 1


@given(st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=20, unique=True))
def test_every_key_has_exactly_one_owner(values):
    ids = make_ids(values)
    key = NodeID(12345)
    owner = ring.owner_of(key, ids)
    assert owner in ids
    # The owner is the first node at-or-after the key, circularly:
    # no other node lies in (key, owner).
    for addr, nid in ids.items():
        if addr == owner:
            continue
        # No other node lies clockwise in [key, owner).
        assert not nid.in_interval(key - 1, ids[owner])
