"""Chord harness coverage beyond ring formation."""

import pytest

from repro.chord import ChordNetwork, ChordParams


def test_late_node_joins_established_ring():
    net = ChordNetwork(num_nodes=4, seed=61)
    net.start()
    assert net.wait_stable(max_time=200.0)
    late = net.add_late_node()
    assert len(net.addresses) == 5
    assert net.wait_stable(max_time=200.0), net.ring_errors()
    assert late in net.live_addresses()
    # The late node is fully wired: its neighbors point at it.
    assert net.pred_of(net.best_succ_of(late)) == late


def test_buggy_variant_forms_a_ring_too():
    """The recycled-dead-neighbor bug is latent: without failures, the
    buggy variant behaves identically."""
    net = ChordNetwork(num_nodes=5, seed=62, recycle_dead_bug=True)
    net.start()
    assert net.wait_stable(max_time=200.0), net.ring_errors()


def test_custom_params_respected():
    params = ChordParams(stabilize_period=2.0, succ_keep=3)
    net = ChordNetwork(num_nodes=5, seed=63, params=params)
    net.start()
    assert net.wait_stable(max_time=200.0)
    net.run_for(30.0)
    for addr in net.live_addresses():
        # Trimming keeps the list near succ_keep (one insert can
        # transiently exceed it before the evict rule fires).
        assert len(net.node(addr).query("succ")) <= params.succ_keep + 1


def test_live_addresses_excludes_unjoined_nodes():
    net = ChordNetwork(num_nodes=4, seed=64)
    # start() not called: nobody joined yet.
    assert net.live_addresses() == []


def test_lookup_before_join_times_out():
    from repro.overlog.types import NodeID

    net = ChordNetwork(num_nodes=3, seed=65)
    for addr in net.addresses:
        net._prepare(addr)  # identity, but no join event
    result = net.lookup(net.addresses[0], NodeID(123), timeout=2.0)
    assert result is None
