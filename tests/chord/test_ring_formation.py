"""Ring formation and lookup correctness (module-scoped network: these
populations take real CPU to stabilize, so they are built once)."""

import random

import pytest

from repro.chord import ChordNetwork
from repro.chord import ids as ring
from repro.overlog.types import NodeID


@pytest.fixture(scope="module")
def stable_net():
    net = ChordNetwork(num_nodes=8, seed=3)
    net.start()
    assert net.wait_stable(max_time=200.0), net.ring_errors()
    # Ring pointers stabilize before fingers: a full finger-fix cycle
    # (3 lookups at 10 s apart, plus eager fill) needs another ~60 s.
    net.run_for(60.0)
    return net


def test_all_nodes_joined(stable_net):
    assert len(stable_net.live_addresses()) == 8


def test_ring_matches_oracle(stable_net):
    expected = ring.successor_map(stable_net.live_ids())
    for addr in stable_net.live_addresses():
        assert stable_net.best_succ_of(addr) == expected[addr]


def test_predecessors_match_oracle(stable_net):
    expected = ring.predecessor_map(stable_net.live_ids())
    for addr in stable_net.live_addresses():
        assert stable_net.pred_of(addr) == expected[addr]


def test_mutual_ring_edges(stable_net):
    """Every node is its successor's predecessor (paper §3.1.1)."""
    for addr in stable_net.live_addresses():
        succ = stable_net.best_succ_of(addr)
        assert stable_net.pred_of(succ) == addr


def test_successor_lists_populated(stable_net):
    for addr in stable_net.live_addresses():
        succs = stable_net.node(addr).query("succ")
        assert len(succs) >= 2


def test_fingers_point_at_live_nodes(stable_net):
    live = set(stable_net.live_addresses())
    for addr in stable_net.live_addresses():
        for finger in stable_net.node(addr).query("finger"):
            assert finger.values[3] in live


def test_finger_invariant(stable_net):
    """finger[i] is the first live node at or after NID + 2**i."""
    live_ids = stable_net.live_ids()
    for addr in stable_net.live_addresses():
        nid = stable_net.ids[addr]
        for finger in stable_net.node(addr).query("finger"):
            position = finger.values[1]
            target = NodeID(nid.value + (1 << position))
            assert finger.values[3] == ring.owner_of(target, live_ids), (
                addr,
                position,
            )


def test_lookups_agree_with_oracle(stable_net):
    rng = random.Random(1)
    for i in range(15):
        key = NodeID(rng.randrange(1 << 32))
        src = stable_net.live_addresses()[i % 8]
        result = stable_net.lookup(src, key)
        assert result is not None, (src, key)
        assert result.values[3] == stable_net.lookup_owner(key)


def test_lookup_for_own_id_returns_self_region(stable_net):
    addr = stable_net.live_addresses()[0]
    result = stable_net.lookup(addr, stable_net.ids[addr])
    assert result is not None
    assert result.values[3] == addr  # a node owns its own ID


def test_routing_consistency_from_all_sources(stable_net):
    """The paper's §3.1 property: same key, same answer, any asker."""
    key = NodeID(0xDEADBEEF)
    answers = set()
    for src in stable_net.live_addresses():
        result = stable_net.lookup(src, key)
        assert result is not None
        answers.add(result.values[3])
    assert len(answers) == 1


def test_deterministic_given_seed():
    a = ChordNetwork(num_nodes=5, seed=9)
    a.start()
    a.run_for(40.0)
    b = ChordNetwork(num_nodes=5, seed=9)
    b.start()
    b.run_for(40.0)
    for addr in a.live_addresses():
        assert a.best_succ_of(addr) == b.best_succ_of(addr)
    assert (
        a.system.network.stats.messages_sent
        == b.system.network.stats.messages_sent
    )
