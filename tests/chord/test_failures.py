"""Failure detection and ring healing."""

import pytest

from repro.chord import ChordNetwork

# Multi-node Chord integration: excluded from the fast tier.
pytestmark = pytest.mark.slow


@pytest.fixture()
def net():
    net = ChordNetwork(num_nodes=6, seed=4)
    net.start()
    assert net.wait_stable(max_time=200.0), net.ring_errors()
    return net


def test_faulty_node_detected_by_neighbors(net):
    victim = net.live_addresses()[2]
    watchers = [a for a in net.live_addresses() if a != victim]
    net.kill(victim)
    net.run_for(30.0)
    detected = [
        a
        for a in watchers
        if any(
            t.values[1] == victim
            for t in net.node(a).query("faultyNode")
        )
        # faultyNode rows expire; detection may also be visible through
        # the victim having been purged from succ.
        or all(
            s.values[2] != victim for s in net.node(a).query("succ")
        )
    ]
    assert len(detected) == len(watchers)


def test_ring_heals_after_single_crash(net):
    victim = net.live_addresses()[3]
    net.kill(victim)
    assert net.wait_stable(max_time=120.0), net.ring_errors()
    assert victim not in net.live_addresses()


def test_dead_node_purged_from_all_state(net):
    victim = net.live_addresses()[1]
    net.kill(victim)
    net.wait_stable(max_time=120.0)
    net.run_for(60.0)  # let faultyNode/pingNode entries expire too
    for addr in net.live_addresses():
        node = net.node(addr)
        assert all(t.values[2] != victim for t in node.query("succ"))
        assert all(t.values[3] != victim for t in node.query("finger"))
        assert net.best_succ_of(addr) != victim
        assert net.pred_of(addr) != victim


def test_ring_heals_after_two_crashes(net):
    victims = [net.live_addresses()[0], net.live_addresses()[3]]
    for victim in victims:
        net.kill(victim)
    assert net.wait_stable(max_time=240.0), net.ring_errors()


def test_lookups_correct_after_healing(net):
    import random

    from repro.overlog.types import NodeID

    net.kill(net.live_addresses()[2])
    assert net.wait_stable(max_time=240.0)
    net.run_for(30.0)
    rng = random.Random(0)
    for i in range(8):
        key = NodeID(rng.randrange(1 << 32))
        src = net.live_addresses()[i % len(net.live_addresses())]
        result = net.lookup(src, key)
        assert result is not None
        assert result.values[3] == net.lookup_owner(key)


def test_partition_heals_after_network_repair():
    net = ChordNetwork(num_nodes=5, seed=8)
    net.start()
    assert net.wait_stable(max_time=200.0)
    a, b = net.live_addresses()[0], net.live_addresses()[1]
    net.system.network.partition(a, b)
    net.run_for(60.0)
    net.system.network.heal(a, b)
    assert net.wait_stable(max_time=240.0), net.ring_errors()
