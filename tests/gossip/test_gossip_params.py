from repro.gossip import GossipParams, gossip_program, gossip_source
from repro.overlog import ast


def test_params_flow_into_periodics():
    params = GossipParams(heartbeat_period=1.5, share_period=4.5)
    program = gossip_program(params)
    periods = set()
    for rule in program.rules:
        for term in rule.body:
            if isinstance(term, ast.Functor) and term.name == "periodic":
                periods.add(term.args[2].value)
    assert periods == {1.5, 4.5}


def test_table_bounds_from_params():
    params = GossipParams(member_ttl=7.0, member_max=9)
    program = gossip_program(params)
    (member,) = [m for m in program.materializations if m.name == "member"]
    assert member.lifetime == 7.0
    assert member.max_size == 9


def test_buggy_source_differs_only_in_sharing():
    correct = gossip_source()
    buggy = gossip_source(stale_share_bug=True)
    assert "heard@NAddr(QAddr)" in correct
    assert "heard@NAddr(QAddr)" not in buggy
    # Broadcast rules are identical in both variants.
    for fragment in ("b0 ", "b4 ", "b6 "):
        assert fragment in correct and fragment in buggy
