"""The epidemic overlay — and the monitoring toolkit applied to it.

§3.4's generality claim, executed: the same introspection, tracing,
forensics, console and watchpoint machinery built for Chord operates
unchanged on a completely different overlay.
"""

import pytest

from repro.analysis import trace_back
from repro.gossip import GossipNetwork, GossipParams, gossip_program


@pytest.fixture(scope="module")
def meshed():
    net = GossipNetwork(num_nodes=8, seed=2, tracing=True)
    net.start()
    net.run_for(30.0)
    return net


def test_program_compiles():
    program = gossip_program()
    assert {m.name for m in program.materializations} == {
        "self",
        "member",
        "heard",
        "seenMsg",
    }


def test_membership_densifies_from_sparse_contacts(meshed):
    assert meshed.fully_meshed()


def test_membership_is_soft_state():
    """A crashed node ages out of every view within a few TTLs."""
    net = GossipNetwork(num_nodes=6, seed=3)
    net.start()
    net.run_for(30.0)
    victim = net.addresses[2]
    net.system.crash(victim)
    net.run_for(3 * GossipParams().member_ttl)
    for address, view in net.membership_views().items():
        assert victim not in view, address


def test_stale_share_bug_recycles_dead_members():
    """The buggy variant (sharing without first-hand evidence) is this
    overlay's §3.1.3 pathology: the dead member circulates through the
    mesh faster than TTLs can expire it, so views never forget."""
    net = GossipNetwork(num_nodes=6, seed=3, stale_share_bug=True)
    net.start()
    net.run_for(30.0)
    victim = net.addresses[2]
    net.system.crash(victim)
    net.run_for(6 * GossipParams().member_ttl)
    stale_views = [
        address
        for address, view in net.membership_views().items()
        if victim in view
    ]
    assert stale_views  # the lie persists somewhere, indefinitely


def test_broadcast_reaches_everyone(meshed):
    meshed.publish(meshed.addresses[0], 500, "payload")
    meshed.run_for(5.0)
    assert meshed.coverage(500) == set(meshed.addresses)


def test_duplicate_suppression(meshed):
    """Each node delivers a message exactly once, despite the flood."""
    deliveries = meshed.system.collect("deliver")
    meshed.publish(meshed.addresses[1], 501, "once")
    meshed.run_for(5.0)
    delivered = [t for t in deliveries if t.values[1] == 501]
    assert len(delivered) == len(meshed.addresses)
    assert len({t.values[0] for t in delivered}) == len(meshed.addresses)


def test_duplicates_are_observable(meshed):
    """The flood does produce redundant arrivals — surfaced as
    dupDelivery events for redundancy monitoring."""
    dups = meshed.system.collect("dupDelivery")
    meshed.publish(meshed.addresses[2], 502, "noisy")
    meshed.run_for(5.0)
    assert len(dups) > 0


def test_provenance_of_a_delivery(meshed):
    """trace_back reconstructs the dissemination path across nodes —
    the same forensics used for Chord lookups, unchanged."""
    meshed.publish(meshed.addresses[0], 503, "traced")
    meshed.run_for(5.0)
    target = meshed.addresses[5]
    node = meshed.node(target)
    (seen,) = [t for t in node.query("seenMsg") if t.values[1] == 503]
    nodes = {a: meshed.node(a) for a in meshed.addresses}
    chain = trace_back(nodes, target, seen)
    rules = [link.rule for link in chain]
    assert rules[-1] == "b0"              # ends at the publish
    assert "b6" in rules                  # crossed at least one forward
    assert any(link.crossed_network for link in chain)
    origins = {link.node for link in chain}
    assert meshed.addresses[0] in origins  # the publisher


def test_hop_counts_bounded_by_graph(meshed):
    """With full membership, the flood reaches everyone in one hop from
    the publisher (direct forward), so recorded hops are small."""
    meshed.publish(meshed.addresses[3], 504, "hops")
    meshed.run_for(5.0)
    hops = []
    for address in meshed.addresses:
        for row in meshed.node(address).query("seenMsg"):
            if row.values[1] == 504:
                hops.append(row.values[3])
    assert max(hops) <= 2


def test_console_coverage_query(meshed):
    """The operator console works on this overlay too."""
    from repro.core.console import QueryConsole

    meshed.publish(meshed.addresses[0], 505, "covered")
    meshed.run_for(5.0)
    console = QueryConsole(meshed.system)
    counts = console.counts("member")
    assert all(count >= 7 for count in counts.values())


def test_partition_halves_coverage_then_heals():
    net = GossipNetwork(num_nodes=6, seed=4)
    net.start()
    net.run_for(30.0)
    # Cut the population into {0,1,2} and {3,4,5}.
    left = net.addresses[:3]
    right = net.addresses[3:]
    for a in left:
        for b in right:
            net.system.network.partition(a, b)
    net.run_for(GossipParams().member_ttl + 10.0)
    net.publish(left[0], 600, "partitioned")
    net.run_for(5.0)
    assert net.coverage(600) == set(left)
    # Heal the network.  If the halves fully forgot each other (member
    # TTLs elapsed) the epidemic has no rendezvous point, so reintroduce
    # one bridge contact — the operator's re-bootstrap.
    for a in left:
        for b in right:
            net.system.network.heal(a, b)
    net.node(left[0]).inject("member", (left[0], right[0]))
    net.run_for(30.0)
    assert net.fully_meshed()
    net.publish(left[0], 601, "healed")
    net.run_for(5.0)
    assert net.coverage(601) == set(net.addresses)
