"""Hypothesis properties of the reliable transport state machine.

The invariants the fault campaigns lean on:

- the app layer never sees a payload twice, and never out of order,
  whatever combination of loss, duplication, and reordering the fabric
  applies (delivery is a prefix-respecting subsequence of the send
  order; with a lossless fabric it is the whole sequence);
- the ack/retransmit/backoff machinery is deterministic per seed — two
  networks driven identically produce identical counter sets and
  delivery traces.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.net.network import Network, ReliableConfig
from repro.net.topology import ConstantLatency, UniformLatency
from repro.sim.simulator import Simulator

NODES = ["a", "b", "c"]

sends = st.lists(
    st.tuples(
        st.sampled_from(NODES), st.sampled_from(NODES)
    ).filter(lambda pair: pair[0] != pair[1]),
    min_size=1,
    max_size=60,
)


def run_network(
    send_list: List[Tuple[str, str]],
    seed: int,
    loss: float = 0.0,
    reorder: float = 0.0,
    duplicate: float = 0.0,
    jittered_latency: bool = False,
):
    sim = Simulator(seed=seed)
    latency = (
        UniformLatency(sim.random, 0.01, 0.15)
        if jittered_latency
        else ConstantLatency(0.01)
    )
    net = Network(
        sim,
        latency,
        loss_rate=loss,
        transport="reliable",
        reliable=ReliableConfig(rto=0.2, max_retries=5, jitter=0.05),
        reorder_rate=reorder,
        duplicate_rate=duplicate,
        reorder_window=0.2,
    )
    received = {n: [] for n in NODES}
    for node in NODES:
        net.attach(node, lambda m, _n=node: received[_n].append(m.payload))
    for i, (src, dst) in enumerate(send_list):
        net.send(src, dst, (src, dst, i))
    sim.run_until(600.0)
    return net, received


def per_channel(send_list):
    chans = {}
    for i, (src, dst) in enumerate(send_list):
        chans.setdefault((src, dst), []).append((src, dst, i))
    return chans


def is_ordered_subsequence(sub, full):
    it = iter(full)
    return all(item in it for item in sub)


@given(send_list=sends, seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_lossless_fabric_delivers_everything_in_fifo_order(send_list, seed):
    _, received = run_network(send_list, seed, jittered_latency=True)
    expected = per_channel(send_list)
    for node in NODES:
        for (src, dst), sent in expected.items():
            if dst != node:
                continue
            got = [p for p in received[node] if p[0] == src]
            assert got == sent


@given(
    send_list=sends,
    seed=st.integers(0, 2**16),
    reorder=st.floats(0.0, 0.9),
    duplicate=st.floats(0.0, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_reorder_and_duplication_preserve_exactly_once_fifo(
    send_list, seed, reorder, duplicate
):
    _, received = run_network(
        send_list,
        seed,
        reorder=reorder,
        duplicate=duplicate,
        jittered_latency=True,
    )
    expected = per_channel(send_list)
    for (src, dst), sent in expected.items():
        got = [p for p in received[dst] if p[0] == src]
        # No loss: duplication and reordering alone must be fully
        # masked — every payload exactly once, in send order.
        assert got == sent


@given(
    send_list=sends,
    seed=st.integers(0, 2**16),
    loss=st.floats(0.0, 0.6),
    reorder=st.floats(0.0, 0.5),
    duplicate=st.floats(0.0, 0.5),
)
@settings(max_examples=30, deadline=None)
def test_lossy_fabric_never_duplicates_or_reorders_deliveries(
    send_list, seed, loss, reorder, duplicate
):
    _, received = run_network(
        send_list, seed, loss=loss, reorder=reorder, duplicate=duplicate
    )
    expected = per_channel(send_list)
    for (src, dst), sent in expected.items():
        got = [p for p in received[dst] if p[0] == src]
        assert len(set(got)) == len(got), "payload delivered twice"
        assert is_ordered_subsequence(got, sent), "FIFO violated"


@given(
    send_list=sends,
    seed=st.integers(0, 2**16),
    loss=st.floats(0.0, 0.5),
)
@settings(max_examples=20, deadline=None)
def test_backoff_and_delivery_trace_deterministic_per_seed(
    send_list, seed, loss
):
    net1, received1 = run_network(send_list, seed, loss=loss)
    net2, received2 = run_network(send_list, seed, loss=loss)
    assert received1 == received2
    s1, s2 = net1.stats, net2.stats
    assert s1.messages_retransmitted == s2.messages_retransmitted
    assert s1.messages_delivered == s2.messages_delivered
    assert s1.drop_reasons == s2.drop_reasons
    assert s1.send_failures == s2.send_failures
    assert s1.acks_sent == s2.acks_sent
