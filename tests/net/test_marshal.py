import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.net.marshal import (
    decode_message,
    encode_delete,
    encode_message,
)
from repro.overlog.types import NodeID
from repro.runtime.tuples import Tuple


def roundtrip(tup, src="a:1", src_tid=7):
    return decode_message(encode_message(tup, src, src_tid))


def test_tuple_roundtrip():
    tup = Tuple("succ", ("n1:1", NodeID(42), "n2:1"))
    out = roundtrip(tup)
    assert out["kind"] == "tuple"
    assert out["name"] == "succ"
    assert out["values"] == tup.values
    assert isinstance(out["values"][1], NodeID)
    assert out["src"] == "a:1"
    assert out["src_tid"] == 7


def test_node_id_bits_preserved():
    tup = Tuple("t", ("n", NodeID(3, bits=8)))
    out = roundtrip(tup)
    assert out["values"][1].bits == 8


def test_nested_lists_decode_as_tuples():
    tup = Tuple("path", ("n", ("a", ("b", 1), 2.5)))
    out = roundtrip(tup)
    assert out["values"][1] == ("a", ("b", 1), 2.5)
    assert isinstance(out["values"][1], tuple)


def test_booleans_survive():
    tup = Tuple("t", ("n", True, False))
    out = roundtrip(tup)
    assert out["values"][1] is True
    assert out["values"][2] is False


def test_delete_roundtrip_with_wildcards():
    data = encode_delete("succ", ("n", None, "dead:1"))
    out = decode_message(data)
    assert out["kind"] == "delete"
    assert out["pattern"] == ("n", None, "dead:1")


def test_unmarshalable_value_fails_at_send():
    class Weird:
        pass

    with pytest.raises(NetworkError):
        encode_message(Tuple("t", ("n", Weird())), "a", None)


def test_garbage_bytes_rejected():
    with pytest.raises(NetworkError):
        decode_message(b"\xff\xfe not json")
    with pytest.raises(NetworkError):
        decode_message(b'{"kind": "mystery"}')


def test_wire_size_reflects_content():
    small = encode_message(Tuple("t", ("n", 1)), "a", None)
    big = encode_message(Tuple("t", ("n", "x" * 500)), "a", None)
    assert len(big) > len(small) + 400


values = st.recursive(
    st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.text(max_size=20),
        st.booleans(),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.builds(NodeID, st.integers(0, (1 << 32) - 1)),
    ),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=10,
)


@settings(max_examples=100, deadline=None)
@given(st.lists(values, min_size=1, max_size=5))
def test_any_overlog_value_roundtrips(vals):
    tup = Tuple("t", tuple(vals))
    out = roundtrip(tup)
    assert out["values"] == tup.values
