import pytest

from repro.errors import NetworkError
from repro.net.address import make_address, EMPTY_ADDRESS
from repro.net.channel import Channel
from repro.net.topology import (
    AsymmetricLatency,
    ConstantLatency,
    JitteredLatency,
    UniformLatency,
)
from repro.sim.rand import SimRandom


def test_constant_latency():
    model = ConstantLatency(0.02)
    assert model.delay("a", "b") == 0.02


def test_constant_latency_rejects_negative():
    with pytest.raises(NetworkError):
        ConstantLatency(-1.0)


def test_uniform_latency_in_range():
    model = UniformLatency(SimRandom(1), 0.01, 0.05)
    for _ in range(100):
        delay = model.delay("a", "b")
        assert 0.01 <= delay < 0.05


def test_uniform_latency_deterministic():
    a = UniformLatency(SimRandom(1), 0.01, 0.05)
    b = UniformLatency(SimRandom(1), 0.01, 0.05)
    assert [a.delay("x", "y") for _ in range(10)] == [
        b.delay("x", "y") for _ in range(10)
    ]


def test_uniform_latency_rejects_bad_range():
    with pytest.raises(NetworkError):
        UniformLatency(SimRandom(1), 0.05, 0.01)


def test_jittered_latency_stays_in_band():
    model = JitteredLatency(SimRandom(1), base=0.02, jitter=0.03)
    for _ in range(100):
        assert 0.02 <= model.delay("a", "b") < 0.05


def test_jittered_latency_zero_jitter_is_constant():
    model = JitteredLatency(SimRandom(1), base=0.02, jitter=0.0)
    assert model.delay("a", "b") == 0.02


def test_jittered_latency_deterministic_per_seed():
    a = JitteredLatency(SimRandom(9), 0.01, 0.05)
    b = JitteredLatency(SimRandom(9), 0.01, 0.05)
    assert [a.delay("x", "y") for _ in range(10)] == [
        b.delay("x", "y") for _ in range(10)
    ]


def test_jittered_latency_rejects_negative():
    with pytest.raises(NetworkError):
        JitteredLatency(SimRandom(1), -0.01, 0.05)
    with pytest.raises(NetworkError):
        JitteredLatency(SimRandom(1), 0.01, -0.05)


def test_asymmetric_latency_is_directional():
    model = AsymmetricLatency(ConstantLatency(0.01))
    model.set_link("a", "b", 0.5)
    assert model.delay("a", "b") == 0.5
    assert model.delay("b", "a") == 0.01  # reverse direction untouched
    assert model.delay("a", "c") == 0.01
    model.clear_link("a", "b")
    assert model.delay("a", "b") == 0.01


def test_asymmetric_latency_nested_model_override():
    model = AsymmetricLatency(
        ConstantLatency(0.01),
        overrides={("a", "b"): JitteredLatency(SimRandom(1), 0.1, 0.05)},
    )
    assert 0.1 <= model.delay("a", "b") < 0.15
    assert model.delay("b", "a") == 0.01


def test_asymmetric_latency_rejects_negative_override():
    model = AsymmetricLatency(ConstantLatency(0.01))
    with pytest.raises(NetworkError):
        model.set_link("a", "b", -0.5)


def test_channel_enforces_monotone_delivery():
    channel = Channel("a", "b")
    t1 = channel.next_delivery_time(now=0.0, delay=0.10)
    t2 = channel.next_delivery_time(now=0.01, delay=0.01)
    assert t2 >= t1
    assert channel.messages_sent == 2


def test_make_address():
    assert make_address(0) == "n0:10000"
    assert make_address(21) == "n21:10021"


def test_empty_address_convention():
    assert EMPTY_ADDRESS == "-"
