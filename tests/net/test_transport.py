"""Reliable transport mode: ack/retransmit/dedup/reorder behaviour."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import ReliableChannel
from repro.net.network import Network, ReliableConfig
from repro.net.topology import ConstantLatency, UniformLatency
from repro.sim.simulator import Simulator


def build(seed=0, loss=0.0, latency=0.01, config=None, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        ConstantLatency(latency),
        loss_rate=loss,
        transport="reliable",
        reliable=config,
        **kwargs,
    )
    return sim, net


# ----------------------------------------------------------------------
# ReliableChannel state machine (no simulator)


def test_channel_sequences_are_monotone():
    ch = ReliableChannel("a", "b")
    assert [ch.open_send(i).seq for i in range(5)] == [1, 2, 3, 4, 5]
    assert len(ch.pending) == 5


def test_channel_ack_retires_pending():
    ch = ReliableChannel("a", "b")
    entry = ch.open_send("m")
    assert ch.ack(entry.seq) is entry
    assert ch.ack(entry.seq) is None  # stale ack
    assert not ch.pending


def test_channel_in_order_accept_delivers_immediately():
    ch = ReliableChannel("a", "b")
    assert ch.accept(1, "m1") == ["m1"]
    assert ch.accept(2, "m2") == ["m2"]
    assert not ch.gapped


def test_channel_reorder_buffering_restores_fifo():
    ch = ReliableChannel("a", "b")
    assert ch.accept(2, "m2") == []
    assert ch.accept(3, "m3") == []
    assert ch.gapped
    assert ch.accept(1, "m1") == ["m1", "m2", "m3"]
    assert not ch.gapped


def test_channel_duplicate_accepts_are_empty():
    ch = ReliableChannel("a", "b")
    assert ch.accept(1, "m1") == ["m1"]
    assert ch.accept(1, "m1") == []  # already delivered
    assert ch.accept(3, "m3") == []
    assert ch.accept(3, "m3") == []  # duplicate of a held frame
    assert ch.accept(2, "m2") == ["m2", "m3"]


def test_channel_gap_skip_advances_past_lost_frame():
    ch = ReliableChannel("a", "b")
    ch.accept(3, "m3")
    ch.accept(4, "m4")
    assert ch.skip_gap() == ["m3", "m4"]
    assert ch.next_deliver == 5


def test_channel_base_tracks_lowest_unresolved_seq():
    ch = ReliableChannel("a", "b")
    assert ch.base == 1  # empty window
    e1, e2, e3 = (ch.open_send(f"m{i}") for i in range(3))
    assert ch.base == 1
    ch.ack(e1.seq)
    assert ch.base == 2
    ch.give_up(e2.seq)
    ch.ack(e3.seq)
    assert ch.base == 4  # == next_seq again


def test_channel_advance_base_delivers_held_and_skips_dead():
    ch = ReliableChannel("a", "b")
    ch.accept(3, "m3")
    ch.accept(6, "m6")
    # Sender says everything below 5 is resolved: m3 delivers, the dead
    # gaps (1, 2, 4) are skipped, m6 stays held behind the live gap 5.
    assert ch.advance_base(5) == ["m3"]
    assert ch.next_deliver == 5
    assert ch.gapped
    assert ch.accept(5, "m5") == ["m5", "m6"]
    # Stale frames from skipped seqs are duplicates now.
    assert ch.accept(2, "m2") == []
    # A base at or below next_deliver is a no-op.
    assert ch.advance_base(1) == []


# ----------------------------------------------------------------------
# End-to-end over the network


def test_lossless_delivery_acks_and_clears_pending():
    sim, net = build()
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(10):
        net.send("a", "b", i)
    sim.run_until(5.0)
    assert got == list(range(10))
    assert net.pending_reliable() == 0
    assert net.stats.messages_retransmitted == 0
    assert net.stats.acks_sent == 10


def test_lossy_link_is_masked_by_retransmission():
    sim, net = build(seed=7, loss=0.4)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(50):
        net.send("a", "b", i)
    sim.run_until(120.0)
    assert got == list(range(50))
    assert net.stats.messages_retransmitted > 0
    # App-level sends are counted once regardless of retransmissions.
    assert net.stats.messages_sent == 50


def test_duplicating_fabric_is_deduplicated():
    sim, net = build(seed=3, duplicate_rate=0.5)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(50):
        net.send("a", "b", i)
    sim.run_until(30.0)
    assert got == list(range(50))
    assert net.stats.messages_duplicated > 0
    assert net.stats.duplicates_suppressed > 0


def test_reordering_fabric_still_delivers_fifo():
    sim = Simulator(seed=5)
    net = Network(
        sim,
        UniformLatency(sim.random, 0.01, 0.2),
        transport="reliable",
        reorder_rate=0.5,
        reorder_window=0.3,
    )
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(100):
        net.send("a", "b", i)
    sim.run_until(60.0)
    assert got == list(range(100))


def test_retry_exhaustion_is_sender_visible():
    config = ReliableConfig(rto=0.1, backoff=2.0, max_retries=2, jitter=0.0)
    sim, net = build(config=config)
    failures = []
    net.on_send_failure.append(lambda m: failures.append(m.payload))
    net.send("a", "ghost", "lost")
    sim.run_until(10.0)
    assert failures == ["lost"]
    assert net.stats.send_failures == 1
    assert net.stats.per_node_failed["a"] == 1
    assert net.stats.drop_reasons == {"retries_exhausted": 1}
    assert net.pending_reliable() == 0


def test_partition_heal_inside_retry_horizon_recovers():
    config = ReliableConfig(rto=0.2, backoff=2.0, max_retries=6, jitter=0.0)
    sim, net = build(config=config)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    net.partition("a", "b")
    net.send("a", "b", "patient")
    sim.run_until(1.0)
    assert got == []
    net.heal("a", "b")
    sim.run_until(10.0)
    assert got == ["patient"]
    assert net.stats.messages_retransmitted >= 1
    assert net.stats.send_failures == 0


def test_abandoned_sends_do_not_stall_the_channel():
    # First message dies permanently (partition outlives its retries).
    # Later sends carry an advanced base, so the receiver skips the
    # dead gap immediately instead of stalling out the hold timer —
    # a channel idle across a give-up must not delay resumed traffic
    # (this is what kept post-heal pings timing out in the fault
    # campaigns before frames carried the sender base).
    config = ReliableConfig(
        rto=0.1, backoff=1.5, max_retries=2, jitter=0.0, hold_timeout=60.0
    )
    sim, net = build(config=config)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    net.partition("a", "b")
    net.send("a", "b", "doomed")
    sim.run_until(5.0)  # retries exhausted while partitioned
    assert net.stats.send_failures == 1
    net.heal("a", "b")
    net.send("a", "b", "second")
    net.send("a", "b", "third")
    sim.run_until(6.0)  # far less than the 60s hold timeout
    assert got == ["second", "third"]
    assert net.stats.gap_skips == 0


def test_gap_skip_backstops_sender_that_goes_silent():
    # seq 1's attempts all die inside the partition; seq 2 is sent just
    # after heal while seq 1 is still pending (base still 1), delivers
    # into the hold buffer, and no later frame arrives to advance the
    # base.  Only the hold timer can release it.
    config = ReliableConfig(
        rto=0.1, backoff=1.5, max_retries=2, jitter=0.0, hold_timeout=2.0
    )
    sim, net = build(config=config)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    net.partition("a", "b")
    net.send("a", "b", "doomed")  # attempts at 0, 0.1, 0.25; gives up at 0.475
    sim.run_until(0.3)
    net.heal("a", "b")
    net.send("a", "b", "second")  # arrives 0.31, held behind live gap 1
    sim.run_until(1.0)
    assert got == []  # still held: gap was live when the frame arrived
    sim.run_until(10.0)
    assert got == ["second"]
    assert net.stats.gap_skips == 1
    assert net.stats.send_failures == 1


def test_ack_loss_triggers_retransmit_but_single_delivery():
    # Loss hits data and ack frames alike; the app must still see each
    # payload exactly once.
    sim, net = build(seed=11, loss=0.35)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(30):
        net.send("a", "b", i)
    sim.run_until(60.0)
    assert got == list(range(30))


def test_bidirectional_channels_are_independent():
    sim, net = build(seed=2, loss=0.2)
    got_a, got_b = [], []
    net.attach("a", lambda m: got_a.append(m.payload))
    net.attach("b", lambda m: got_b.append(m.payload))
    for i in range(20):
        net.send("a", "b", ("ab", i))
        net.send("b", "a", ("ba", i))
    sim.run_until(60.0)
    assert got_b == [("ab", i) for i in range(20)]
    assert got_a == [("ba", i) for i in range(20)]


def test_transport_mode_cannot_change_mid_run():
    sim = Simulator()
    net = Network(sim, transport="udp")
    net.attach("b", lambda m: None)
    net.send("a", "b", 1)
    net.transport = "reliable"
    with pytest.raises(NetworkError):
        net.send("a", "b", 2)


def test_unknown_transport_rejected():
    with pytest.raises(NetworkError):
        Network(Simulator(), transport="tcp")


def test_invalid_rates_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Network(sim, reorder_rate=1.0)
    with pytest.raises(NetworkError):
        Network(sim, duplicate_rate=-0.1)
    net = Network(sim)
    with pytest.raises(NetworkError):
        net.set_reorder_rate(1.5)
    with pytest.raises(NetworkError):
        net.set_duplicate_rate(1.5)
    with pytest.raises(NetworkError):
        net.set_link_loss("a", "b", 1.0)
