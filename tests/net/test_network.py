import pytest

from repro.errors import NetworkError
from repro.net.network import Network
from repro.net.topology import ConstantLatency
from repro.sim.simulator import Simulator


def build(loss=0.0, latency=0.01, seed=0):
    sim = Simulator(seed=seed)
    return sim, Network(sim, ConstantLatency(latency), loss_rate=loss)


def test_delivery_with_latency():
    sim, net = build(latency=0.05)
    got = []
    net.attach("b", got.append)
    net.send("a", "b", "hello")
    sim.run_until(0.049)
    assert got == []
    sim.run_until(0.051)
    assert len(got) == 1
    assert got[0].payload == "hello"
    assert got[0].src == "a"


def test_fifo_per_channel():
    sim, net = build()
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(20):
        net.send("a", "b", i)
    sim.run_until(1.0)
    assert got == list(range(20))


def test_unknown_destination_drops():
    sim, net = build()
    net.send("a", "ghost", "x")
    sim.run_until(1.0)
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 0


def test_attach_twice_rejected():
    _, net = build()
    net.attach("a", lambda m: None)
    with pytest.raises(NetworkError):
        net.attach("a", lambda m: None)


def test_detach_stops_delivery():
    sim, net = build()
    got = []
    net.attach("b", got.append)
    net.send("a", "b", 1)
    net.detach("b")
    sim.run_until(1.0)
    assert got == []


def test_partition_blocks_both_directions():
    sim, net = build()
    got_a, got_b = [], []
    net.attach("a", got_a.append)
    net.attach("b", got_b.append)
    net.partition("a", "b")
    net.send("a", "b", 1)
    net.send("b", "a", 2)
    sim.run_until(1.0)
    assert got_a == [] and got_b == []


def test_heal_restores_traffic():
    sim, net = build()
    got = []
    net.attach("b", got.append)
    net.partition("a", "b")
    net.send("a", "b", 1)
    net.heal("a", "b")
    net.send("a", "b", 2)
    sim.run_until(1.0)
    assert [m.payload for m in got] == [2]


def test_take_down_drops_in_flight_messages():
    sim, net = build(latency=0.1)
    got = []
    net.attach("b", got.append)
    net.send("a", "b", 1)
    net.take_down("b")  # while the message is in flight
    sim.run_until(1.0)
    assert got == []
    assert net.stats.messages_dropped == 1


def test_bring_up_after_down():
    sim, net = build()
    got = []
    net.attach("b", got.append)
    net.take_down("b")
    net.send("a", "b", 1)
    sim.run_until(0.5)
    net.bring_up("b")
    net.send("a", "b", 2)
    sim.run_until(1.0)
    assert [m.payload for m in got] == [2]


def test_loss_rate_drops_some_messages():
    sim, net = build(loss=0.5, seed=3)
    got = []
    net.attach("b", got.append)
    for i in range(200):
        net.send("a", "b", i)
    sim.run_until(5.0)
    assert 0 < len(got) < 200
    # Delivered messages still arrive in FIFO order.
    payloads = [m.payload for m in got]
    assert payloads == sorted(payloads)


def test_invalid_loss_rate_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Network(sim, loss_rate=1.0)
    net = Network(sim)
    with pytest.raises(NetworkError):
        net.set_loss_rate(-0.1)


def test_stats_counters():
    sim, net = build()
    net.attach("b", lambda m: None)
    net.send("a", "b", "x", size=100)
    sim.run_until(1.0)
    stats = net.stats
    assert stats.messages_sent == 1
    assert stats.messages_delivered == 1
    assert stats.bytes_sent == 100
    assert stats.per_node_sent["a"] == 1
    assert stats.per_node_received["b"] == 1


def test_addresses_listing():
    _, net = build()
    net.attach("b", lambda m: None)
    net.attach("a", lambda m: None)
    assert net.addresses == ["a", "b"]


def test_every_drop_has_an_attributed_reason():
    sim, net = build(loss=0.4, seed=5)
    net.attach("b", lambda m: None)
    net.partition("a", "c")
    net.take_down("d")
    for i in range(100):
        net.send("a", "b", i)   # some lost
    net.send("a", "c", "x")     # partitioned
    net.send("a", "d", "y")     # down
    net.send("a", "ghost", "z") # never attached (loss may eat it first)
    sim.run_until(5.0)
    stats = net.stats
    assert stats.drop_reasons["loss"] > 0
    assert stats.drop_reasons["partition"] == 1
    assert stats.drop_reasons["down"] == 1
    assert sum(stats.drop_reasons.values()) == stats.messages_dropped


def test_per_link_loss_overrides_global_rate():
    sim, net = build(seed=2)
    got_b, got_c = [], []
    net.attach("b", lambda m: got_b.append(m.payload))
    net.attach("c", lambda m: got_c.append(m.payload))
    net.set_link_loss("a", "b", 0.8)
    for i in range(100):
        net.send("a", "b", i)
        net.send("a", "c", i)
    sim.run_until(5.0)
    assert len(got_b) < 100   # lossy override on a -> b
    assert len(got_c) == 100  # other links keep the global (zero) rate
    net.set_link_loss("a", "b", 0.0)  # restore
    net.send("a", "b", "after")
    sim.run_until(10.0)
    assert got_b[-1] == "after"


def test_udp_reorder_knob_breaks_fifo():
    sim = Simulator(seed=8)
    net = Network(
        sim, ConstantLatency(0.01), reorder_rate=0.5, reorder_window=0.5
    )
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(100):
        net.send("a", "b", i)
    sim.run_until(5.0)
    assert sorted(got) == list(range(100))  # nothing lost...
    assert got != sorted(got)               # ...but order was broken
    assert net.stats.messages_reordered > 0


def test_udp_duplicate_knob_delivers_copies():
    sim = Simulator(seed=8)
    net = Network(sim, ConstantLatency(0.01), duplicate_rate=0.5)
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(100):
        net.send("a", "b", i)
    sim.run_until(5.0)
    assert len(got) > 100  # UDP mode surfaces fabric duplicates
    assert net.stats.messages_duplicated == len(got) - 100
    assert set(got) == set(range(100))
