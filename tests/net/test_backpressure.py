"""Receiver pushback and bounded transport queues.

The reliable-transport half of overload protection: an admission gate
can refuse a frame (BUSY nack, sender backs off and retries), the
sender's in-flight window and backlog are capped (overflow is an
attributed drop, not silent), and the receiver's reorder buffer is
bounded (over-cap out-of-order frames go un-acked and are redelivered
by retransmission).
"""

from __future__ import annotations

from repro.net.network import DROP_BACKLOG, Network, ReliableConfig
from repro.net.topology import ConstantLatency
from repro.sim.simulator import Simulator


def build(seed=0, loss=0.0, config=None, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        ConstantLatency(0.01),
        loss_rate=loss,
        transport="reliable",
        reliable=config,
        **kwargs,
    )
    return sim, net


# ----------------------------------------------------------------------
# BUSY nacks


def test_refused_frame_is_nacked_and_retried():
    sim, net = build(config=ReliableConfig(rto=0.2, jitter=0.0))
    got = []
    admitted = []
    net.attach("b", lambda m: got.append(m.payload))
    # Refuse the first presentation of every frame, accept retries.
    def gate(message):
        if message.payload in admitted:
            return True
        admitted.append(message.payload)
        return False
    net.set_admission("b", gate)
    for i in range(5):
        net.send("a", "b", i)
    sim.run_until(10.0)
    assert got == list(range(5))  # delayed, never lost
    assert net.stats.busy_nacks == 5
    assert net.stats.messages_retransmitted >= 5


def test_permanently_busy_receiver_exhausts_retries():
    sim, net = build(config=ReliableConfig(rto=0.1, max_retries=3, jitter=0.0))
    failed = []
    net.attach("b", lambda m: None)
    net.set_admission("b", lambda m: False)
    net.on_send_failure.append(lambda m: failed.append(m.payload))
    net.send("a", "b", "m")
    sim.run_until(30.0)
    assert failed == ["m"]
    assert net.stats.busy_nacks >= 1
    assert net.stats.send_failures == 1


def test_accepting_gate_is_invisible():
    sim, net = build()
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    net.set_admission("b", lambda m: True)
    for i in range(10):
        net.send("a", "b", i)
    sim.run_until(5.0)
    assert got == list(range(10))
    assert net.stats.busy_nacks == 0


def test_detach_clears_the_admission_gate():
    sim, net = build()
    net.attach("b", lambda m: None)
    net.set_admission("b", lambda m: False)
    net.detach("b")
    net.attach("b", lambda m: None)
    net.send("a", "b", "m")
    sim.run_until(5.0)
    assert net.stats.busy_nacks == 0  # old gate did not survive detach


def test_duplicate_frames_bypass_the_gate():
    """Duplicates of already-delivered frames are re-acked without
    consulting admission — the receiver already owns that payload."""
    sim, net = build(seed=3, duplicate_rate=0.5)
    got = []
    gate_calls = []
    net.attach("b", lambda m: got.append(m.payload))
    def gate(message):
        gate_calls.append(message.payload)
        return True
    net.set_admission("b", gate)
    for i in range(30):
        net.send("a", "b", i)
    sim.run_until(30.0)
    assert got == list(range(30))
    assert len(gate_calls) == 30  # one admission decision per payload


# ----------------------------------------------------------------------
# Window and backlog caps


def test_window_cap_queues_sends_in_backlog():
    sim, net = build(config=ReliableConfig(window=2, backlog=100))
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(10):
        net.send("a", "b", i)
    assert net.stats.backlogged == 8  # only 2 in flight at once
    sim.run_until(10.0)
    assert got == list(range(10))  # backlog drains in order
    assert net.pending_reliable() == 0


def test_backlog_overflow_is_an_attributed_drop():
    sim, net = build(config=ReliableConfig(window=1, backlog=2))
    failed = []
    net.attach("b", lambda m: None)
    net.on_send_failure.append(lambda m: failed.append(m.payload))
    for i in range(6):
        net.send("a", "b", i)
    # 1 in flight + 2 backlogged; the other 3 overflow immediately.
    assert failed == [3, 4, 5]
    assert net.stats.drop_reasons.get(DROP_BACKLOG, 0) == 3


def test_unbounded_defaults_never_backlog():
    sim, net = build()
    net.attach("b", lambda m: None)
    for i in range(200):
        net.send("a", "b", i)
    assert net.stats.backlogged == 0
    assert net.stats.drop_reasons.get(DROP_BACKLOG, 0) == 0


# ----------------------------------------------------------------------
# Reorder-buffer cap


def test_reorder_cap_refuses_excess_held_frames():
    sim, net = build(
        seed=11,
        loss=0.3,
        config=ReliableConfig(rto=0.2, jitter=0.0, reorder_cap=1),
    )
    got = []
    net.attach("b", lambda m: got.append(m.payload))
    for i in range(40):
        net.send("a", "b", i)
    sim.run_until(120.0)
    assert net.stats.held_overflow > 0
    # Over-cap out-of-order frames went un-acked and were redelivered
    # by retransmission, so delivery stays in order; a frame may still
    # be abandoned (the cap makes its successors burn retries while
    # the gap persists), but only as an attributed sender-side failure.
    assert got == sorted(got)
    # Every missing frame maps to a sender-visible failure (the
    # converse is not one-to-one: a delivered frame whose acks were
    # all lost also exhausts its retries).
    missing = set(range(40)) - set(got)
    assert len(missing) <= net.stats.send_failures
