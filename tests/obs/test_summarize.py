"""The offline analyzer and its CLI entry point."""

import pytest

from repro.core.system import System
from repro.obs.summarize import Artifact, main, summarize

WORKLOAD = """
materialize(peer, 60, 50, keys(1,2)).
p1 peer@N(M) :- hello@N(M).
p2 echo@M(N) :- hello@N(M).
p3 tick@N(E) :- periodic@N(E, 0.5).
"""


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    system = System(seed=9, loss_rate=0.2, observability=True)
    a = system.add_node("a:1")
    system.add_node("b:2")
    system.install_source(WORKLOAD, name="w")
    for i in range(5):
        a.inject("hello", ("a:1", "b:2"))
    system.run_for(20.0)
    directory = tmp_path_factory.mktemp("artifacts")
    return system.export_telemetry(str(directory), prefix="run")


def test_artifact_roundtrip_from_jsonl(artifacts):
    art = Artifact.load(artifacts["jsonl"])
    assert art.meta["seed"] == 9
    assert art.spans and art.events
    rules = dict(art.rule_stats())
    assert "p3" in rules and rules["p3"]["count"] > 10
    assert art.drop_attribution().get("loss", 0) > 0
    assert "messages_sent" in art.transport_counters()
    assert art.event_counts("net.drop", "reason").get("loss", 0) > 0


def test_artifact_from_chrome_trace_falls_back_to_spans(artifacts):
    art = Artifact.load(artifacts["trace"])
    assert art.meta["seed"] == 9
    assert art.spans
    rules = dict(art.rule_stats())  # derived from rule_exec spans
    assert "p3" in rules


def test_summarize_sections(artifacts):
    text = summarize(artifacts["jsonl"], top=3)
    assert "telemetry summary" in text
    assert "top 3 slow rules" in text
    assert "per-link latency percentiles" in text
    assert "drop / retransmit attribution" in text
    assert "loss" in text
    # Deterministic: same artifact, same text.
    assert text == summarize(artifacts["jsonl"], top=3)


def test_cli_exit_codes(artifacts, capsys):
    assert main(["summarize", artifacts["jsonl"]]) == 0
    assert "slow rules" in capsys.readouterr().out
    assert main(["summarize", artifacts["trace"], "--top", "2"]) == 0
    capsys.readouterr()
    assert main(["summarize", "/nonexistent/artifact.jsonl"]) == 2
    assert "error" in capsys.readouterr().out
