"""The metrics registry: instruments, labels, log-linear histograms."""

import math

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_SUBBUCKETS,
    HistogramData,
    MetricsRegistry,
    ZERO_BUCKET,
    bucket_index,
    bucket_upper,
)


# ----------------------------------------------------------------------
# Log-linear bucket layout


def test_bucket_index_is_monotone():
    values = [1e-9, 1e-6, 0.001, 0.01, 0.5, 0.9, 1.0, 1.5, 2.0, 7.0, 1e6]
    indices = [bucket_index(v) for v in values]
    assert indices == sorted(indices)


def test_bucket_upper_bounds_its_values():
    for value in (1e-6, 0.004, 0.37, 1.0, 2.5, 9.99, 12345.6):
        index = bucket_index(value)
        assert value <= bucket_upper(index)
        # ...and within one sub-bucket of relative error.
        assert bucket_upper(index) <= value * (1 + 2.0 / DEFAULT_SUBBUCKETS)


def test_nonpositive_values_use_the_zero_bucket():
    assert bucket_index(0.0) == ZERO_BUCKET
    assert bucket_index(-3.5) == ZERO_BUCKET
    assert bucket_upper(ZERO_BUCKET) == 0.0


def test_histogram_percentiles_are_clamped_to_observed_max():
    data = HistogramData()
    for v in (0.001, 0.002, 0.003, 0.004, 0.1):
        data.observe(v)
    assert data.count == 5
    assert data.percentile(100) == pytest.approx(0.1)
    assert data.percentile(0) <= data.percentile(50) <= data.percentile(100)
    # p50 is within bucket error of the true median.
    assert data.percentile(50) <= 0.003 * (1 + 2.0 / DEFAULT_SUBBUCKETS)


def test_histogram_mean_and_empty_behaviour():
    data = HistogramData()
    assert data.mean() == 0.0
    assert data.percentile(99) == 0.0
    data.observe(2.0)
    data.observe(4.0)
    assert data.mean() == pytest.approx(3.0)


def test_histogram_merge_matches_combined_observations():
    a, b, combined = HistogramData(), HistogramData(), HistogramData()
    for i in range(1, 50):
        v = 0.001 * i
        (a if i % 2 else b).observe(v)
        combined.observe(v)
    a.merge(b)
    assert a.count == combined.count
    assert a.sum == pytest.approx(combined.sum)
    assert a.buckets == combined.buckets
    for p in (10, 50, 90, 99):
        assert a.percentile(p) == combined.percentile(p)


def test_histogram_dict_roundtrip():
    data = HistogramData()
    for v in (0.5, 1.5, 0.25, 8.0):
        data.observe(v)
    clone = HistogramData.from_dict(data.as_dict())
    assert clone.count == data.count
    assert clone.sum == pytest.approx(data.sum)
    assert clone.min == data.min and clone.max == data.max
    assert clone.buckets == data.buckets


def test_merge_rejects_mismatched_layouts():
    with pytest.raises(ReproError):
        HistogramData(subbuckets=8).merge(HistogramData(subbuckets=16))


# ----------------------------------------------------------------------
# Registry


def test_counter_and_gauge_with_labels():
    reg = MetricsRegistry()
    sent = reg.counter("sent_total", "msgs", ("node",))
    sent.inc(node="a")
    sent.inc(2, node="a")
    sent.inc(node="b")
    assert reg.value("sent_total", ("a",)) == 3
    assert reg.value("sent_total", ("b",)) == 1
    assert reg.value("sent_total", ("missing",)) == 0

    depth = reg.gauge("queue_depth", "", ("node",))
    depth.set(7, node="a")
    depth.set(2, node="a")  # gauges overwrite
    assert reg.value("queue_depth", ("a",)) == 2


def test_label_mismatch_is_an_error():
    reg = MetricsRegistry()
    c = reg.counter("c", "", ("node", "rule"))
    with pytest.raises(ReproError):
        c.inc(node="a")  # missing 'rule'


def test_declaration_is_get_or_create_but_kind_checked():
    reg = MetricsRegistry()
    first = reg.counter("x", "", ("node",))
    assert reg.counter("x") is first
    with pytest.raises(ReproError):
        reg.gauge("x")


def test_callback_metric_reads_lazily():
    reg = MetricsRegistry()
    state = {"calls": 0}

    def read():
        state["calls"] += 1
        return {("a",): state["calls"]}

    reg.register_callback("lazy_total", read, labelnames=("node",))
    assert state["calls"] == 0  # registration does not invoke
    assert reg.value("lazy_total", ("a",)) == 1
    assert reg.value("lazy_total", ("a",)) == 2  # fresh read each time


def test_callback_scalar_and_duplicate_name():
    reg = MetricsRegistry()
    reg.register_callback("scalar", lambda: 42)
    assert reg.snapshot("scalar") == {(): 42}
    with pytest.raises(ReproError):
        reg.register_callback("scalar", lambda: 0)


def test_snapshot_unknown_metric_degrades_to_empty():
    assert MetricsRegistry().snapshot("nope") == {}


def test_collect_is_name_sorted():
    reg = MetricsRegistry()
    reg.counter("zeta")
    reg.gauge("alpha")
    reg.histogram("mid")
    assert [name for name, _, _ in reg.collect()] == ["alpha", "mid", "zeta"]
