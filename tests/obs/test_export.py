"""Exporters: schema validity and byte-stability across same-seed runs."""

import json

import pytest

from repro.core.system import System
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    prometheus_text,
)

WORKLOAD = """
materialize(peer, 60, 50, keys(1,2)).
p1 peer@N(M) :- hello@N(M).
p2 echo@M(N) :- hello@N(M).
p3 tick@N(E) :- periodic@N(E, 0.5).
"""


def run_system(seed=11, loss_rate=0.0, observability=True):
    system = System(seed=seed, loss_rate=loss_rate, observability=observability)
    a = system.add_node("a:1")
    system.add_node("b:2")
    system.install_source(WORKLOAD, name="w")
    a.inject("hello", ("a:1", "b:2"))
    system.run_for(10.0)
    return system


@pytest.fixture(scope="module")
def system():
    return run_system()


def test_chrome_trace_is_schema_valid(system):
    payload = chrome_trace(system.telemetry, meta={"seed": 11})
    # Round-trip through the serializer: must be plain JSON.
    parsed = json.loads(json.dumps(payload))
    assert parsed["displayTimeUnit"] == "ms"
    assert parsed["otherData"] == {"seed": 11}
    events = parsed["traceEvents"]
    assert events, "no trace events exported"
    phases = {e["ph"] for e in events}
    assert "X" in phases and "M" in phases
    for event in events:
        assert event["ph"] in ("X", "i", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]
        if event["ph"] == "i":
            assert event["s"] == "t"
    # Every node appears as a named thread row.
    thread_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"a:1", "b:2", "fabric"} <= thread_names
    # Span rows land on their node's tid.
    tid_of = {
        e["args"]["name"]: e["tid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for event in events:
        if event["ph"] == "X" and "node" in event["args"]:
            assert event["tid"] == tid_of[event["args"]["node"]]


def test_jsonl_lines_parse_and_cover_everything(system):
    lines = jsonl_lines(system.telemetry, meta={"seed": 11})
    parsed = [json.loads(line) for line in lines]
    kinds = [p["type"] for p in parsed]
    assert kinds[0] == "meta"
    assert "span" in kinds and "metric" in kinds and "hist" in kinds
    hist = next(p for p in parsed if p["type"] == "hist")
    assert {"name", "labels", "count", "sum", "buckets"} <= set(hist)
    metric = next(p for p in parsed if p["type"] == "metric")
    assert {"name", "kind", "labels", "value"} <= set(metric)


def test_prometheus_text_format(system):
    text = prometheus_text(system.telemetry)
    lines = text.splitlines()
    assert any(l.startswith("# TYPE net_counters_total counter") for l in lines)
    assert any(l.startswith("# TYPE node_live_tuples gauge") for l in lines)
    assert any(
        l.startswith("# TYPE rule_duration_seconds histogram") for l in lines
    )
    assert any("rule_duration_seconds_bucket{" in l and 'le="' in l for l in lines)
    assert any(l.startswith("rule_duration_seconds_count") for l in lines)
    # Every non-comment line is "name{labels} value".
    for line in lines:
        if line.startswith("#") or not line:
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # parses
        assert name_part


def test_exports_are_byte_stable_across_same_seed_runs(tmp_path):
    def export_once(directory):
        system = run_system(seed=23, loss_rate=0.1)
        return system.export_telemetry(str(directory), prefix="stab")

    first = export_once(tmp_path / "one")
    second = export_once(tmp_path / "two")
    for key in ("trace", "jsonl", "prom"):
        with open(first[key], "rb") as f, open(second[key], "rb") as g:
            assert f.read() == g.read(), f"{key} artifact not byte-stable"


def test_different_seeds_differ(tmp_path):
    a = run_system(seed=23, loss_rate=0.1).export_telemetry(
        str(tmp_path / "a"), prefix="x"
    )
    b = run_system(seed=24, loss_rate=0.1).export_telemetry(
        str(tmp_path / "b"), prefix="x"
    )
    with open(a["jsonl"], "rb") as f, open(b["jsonl"], "rb") as g:
        assert f.read() != g.read()
