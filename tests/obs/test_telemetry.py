"""Spans, events, and the flight recorder."""

import random

import pytest

from repro.errors import ReproError
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import NULL_SPAN, Telemetry


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make_telemetry(enabled=True, **kwargs):
    clock = FakeClock()
    return Telemetry(clock, enabled=enabled, **kwargs), clock


# ----------------------------------------------------------------------
# Spans


def test_disabled_span_is_the_shared_noop():
    tel, _ = make_telemetry(enabled=False)
    span = tel.span("anything", x=1)
    assert span is NULL_SPAN
    with span as s:
        s.set(y=2)  # all no-ops
    assert tel.recorder.snapshot() == []
    tel.event("drop", reason="loss")
    assert tel.recorder.snapshot() == []


def test_span_records_times_and_attrs():
    tel, clock = make_telemetry()
    with tel.span("work", node="a") as span:
        clock.t = 1.5
        span.set(rows=3)
    (rec,) = tel.recorder.snapshot()
    assert rec["type"] == "span" and rec["name"] == "work"
    assert rec["t0"] == 0.0 and rec["t1"] == 1.5
    assert rec["attrs"] == {"node": "a", "rows": 3}
    assert rec["parent"] == 0


def test_nested_spans_carry_parent_child_causality():
    tel, clock = make_telemetry()
    with tel.span("outer") as outer:
        assert tel.current_span_id == outer.span_id
        with tel.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            tel.event("tick")
        with tel.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    assert tel.current_span_id == 0
    records = tel.recorder.snapshot()
    by_name = {r["name"]: r for r in records if r["type"] == "span"}
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["sibling"]["parent"] == by_name["outer"]["id"]
    # The event was attributed to the innermost open span.
    (event,) = [r for r in records if r["type"] == "event"]
    assert event["span"] == by_name["inner"]["id"]
    # Span ids are unique.
    ids = [r["id"] for r in records if r["type"] == "span"]
    assert len(set(ids)) == len(ids)


def test_span_clock_override():
    tel, clock = make_telemetry()
    micro = FakeClock()
    micro.t = 10.0
    with tel.span("rule", clock=micro):
        micro.t = 10.25
    (rec,) = tel.recorder.snapshot()
    assert rec["t0"] == 10.0 and rec["t1"] == 10.25
    assert clock.t == 0.0  # the telemetry clock was never consulted


def test_span_records_exceptions():
    tel, _ = make_telemetry()
    with pytest.raises(ValueError):
        with tel.span("risky"):
            raise ValueError("boom")
    (rec,) = tel.recorder.snapshot()
    assert rec["attrs"]["error"] == "ValueError"


def test_event_payload():
    tel, clock = make_telemetry()
    clock.t = 4.5
    tel.event("net.drop", reason="loss", link="a->b")
    (rec,) = tel.recorder.snapshot()
    assert rec == {
        "type": "event",
        "name": "net.drop",
        "t": 4.5,
        "span": 0,
        "attrs": {"reason": "loss", "link": "a->b"},
    }


# ----------------------------------------------------------------------
# Flight recorder


def test_recorder_ring_is_bounded_and_counts_drops():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record({"i": i})
    snapshot = rec.snapshot()
    assert [r["i"] for r in snapshot] == [6, 7, 8, 9]
    assert rec.recorded == 10
    assert rec.dropped == 6


def test_recorder_sampling_is_deterministic():
    def run():
        rec = FlightRecorder(capacity=100, sample_rate=0.5, rng=random.Random(7))
        for i in range(40):
            rec.record({"i": i})
        return [r["i"] for r in rec.snapshot()], rec.sampled_out

    first, out_first = run()
    second, out_second = run()
    assert first == second
    assert out_first == out_second > 0
    assert len(first) + out_first == 40


def test_recorder_validates_configuration():
    with pytest.raises(ReproError):
        FlightRecorder(capacity=0)
    with pytest.raises(ReproError):
        FlightRecorder(sample_rate=0.0)
    with pytest.raises(ReproError):
        FlightRecorder(sample_rate=0.5)  # sampling requires a seeded rng


def test_recorder_clear():
    rec = FlightRecorder(capacity=4)
    rec.record({"a": 1})
    rec.clear()
    assert rec.snapshot() == []
    assert rec.recorded == 0
