"""Batched firings count as N rule executions, everywhere counts surface.

The batch kernel's deltaset pump fires one strand over a run of N
triggers in a single call; the accounting contract (docs/SCALE.md) is
that this is N rule executions — the counter is semantic, never
call-counting.  These tests pin that contract at every layer an
operator reads:

- ``P2Node.rule_executions`` (the raw counter the lean batched pump
  increments by run length);
- the Dashboard's per-node ``rule-execs`` column (the
  ``node_rule_executions_total`` gauge);
- ``repro.obs summarize`` over an exported artifact (per-rule ``fires``
  from the ``rule_duration_seconds`` histogram).

Each comparison runs the same seeded Chord workload under the
per-tuple and the batched kernel and demands identical numbers.
"""

from __future__ import annotations

import pytest

from repro.chord.harness import ChordNetwork
from repro.obs.export import write_jsonl
from repro.obs.summarize import Artifact, summarize
from repro.report import Dashboard
from repro.runtime.strand import RuleStrand
from repro.sim.batch import DEFAULT_TICK, ExecutionConfig

PER_TUPLE = ExecutionConfig(batch_size=1, tick=DEFAULT_TICK)
BATCHED = ExecutionConfig(batch_size=None, tick=DEFAULT_TICK)

NODES = 6
SEED = 2
DURATION = 60.0


def run_chord(execution, observability=False):
    net = ChordNetwork(
        num_nodes=NODES,
        seed=SEED,
        execution=execution,
        observability=observability,
    )
    net.start()
    net.run_for(DURATION)
    return net


def executions_by_node(net):
    return {
        str(addr): net.system.node(addr).rule_executions
        for addr in net.addresses
    }


def test_lean_batched_pump_counts_run_lengths(monkeypatch):
    """Without observers the pump batches runs — and still counts N."""
    run_lengths = []
    orig = RuleStrand.fire_batch

    def spy(self, triggers, ctx, **kwargs):
        run_lengths.append(len(triggers))
        return orig(self, triggers, ctx, **kwargs)

    monkeypatch.setattr(RuleStrand, "fire_batch", spy)
    batched = executions_by_node(run_chord(BATCHED))
    monkeypatch.setattr(RuleStrand, "fire_batch", orig)
    per_tuple = executions_by_node(run_chord(PER_TUPLE))

    # The workload genuinely exercised multi-trigger deltasets.
    assert run_lengths and max(run_lengths) > 1
    assert batched == per_tuple
    assert sum(batched.values()) > 0


def test_dashboard_rule_execs_identical_across_kernels():
    renders = {}
    for label, execution in (("per-tuple", PER_TUPLE), ("batched", BATCHED)):
        net = run_chord(execution)
        renders[label] = Dashboard(net.system, title="ring").render()
    assert renders["per-tuple"] == renders["batched"]
    assert "rule-execs" in renders["batched"]


def test_summarize_fires_identical_across_kernels(tmp_path):
    artifacts = {}
    for label, execution in (("per-tuple", PER_TUPLE), ("batched", BATCHED)):
        net = run_chord(execution, observability=True)
        path = tmp_path / f"{label}.jsonl"
        write_jsonl(net.system.telemetry, str(path))
        artifacts[label] = path

    stats = {
        label: Artifact.load(str(path)).rule_stats()
        for label, path in artifacts.items()
    }
    fires = {
        label: {rule: row["count"] for rule, row in rows}
        for label, rows in stats.items()
    }
    assert fires["per-tuple"] == fires["batched"]
    assert sum(fires["batched"].values()) > 0

    # The full summaries agree too (durations come off the charged-work
    # micro-clock, which the differential battery pins bit-identical).
    texts = {
        label: summarize(str(path)).splitlines()[1:]
        for label, path in artifacts.items()
    }
    assert texts["per-tuple"] == texts["batched"]
