"""End-to-end instrumentation: spans and events from the live runtime."""

from repro.core.system import System
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.monitors.base import Monitor
from repro.net.network import ReliableConfig
from repro.runtime.strand import CompositeTraceHooks

WORKLOAD = """
materialize(nextHop, 60, 50, keys(1)).
f1 fwd@D(M) :- msg@N(M), nextHop@N(D).
f2 seen@N(M) :- fwd@N(M).
"""


def build(seed=3, observability=True, **kwargs):
    system = System(seed=seed, observability=observability, **kwargs)
    a = system.add_node("a:1")
    system.add_node("b:2")
    system.install_source(WORKLOAD, name="w")
    a.inject("nextHop", ("a:1", "b:2"))
    return system, a


def events_named(telemetry, name):
    return [
        r
        for r in telemetry.recorder.snapshot()
        if r["type"] == "event" and r["name"] == name
    ]


def spans_named(telemetry, name):
    return [
        r
        for r in telemetry.recorder.snapshot()
        if r["type"] == "span" and r["name"] == name
    ]


def test_rule_execution_spans_and_histograms():
    system, a = build()
    for i in range(5):
        a.inject("msg", ("a:1", f"m{i}"))
    system.run_for(5.0)

    spans = spans_named(system.telemetry, "rule_exec")
    assert spans, "no rule_exec spans recorded"
    fired = {(s["attrs"]["node"], s["attrs"]["rule"]) for s in spans}
    assert ("a:1", "f1") in fired and ("b:2", "f2") in fired
    for span in spans:
        assert span["t1"] >= span["t0"]

    reg = system.telemetry.metrics
    durations = reg.snapshot("rule_duration_seconds")
    assert ("a:1", "f1") in durations
    assert durations[("a:1", "f1")].count == 5
    # The join against nextHop examined rows, charged per firing.
    join = reg.snapshot("join_rows_examined")
    assert any(key[1] == "f1" and data.count > 0 for key, data in join.items())
    # Strand hooks counted inputs and outputs for the same rules.
    assert reg.value("strand_inputs_total", ("a:1", "f1")) == 5
    assert reg.value("strand_outputs_total", ("a:1", "f1")) == 5


def test_drop_events_carry_reasons():
    system, a = build(loss_rate=0.9)
    for i in range(4):
        a.inject("msg", ("a:1", f"m{i}"))
    system.run_for(5.0)
    drops = events_named(system.telemetry, "net.drop")
    assert drops and all(d["attrs"]["reason"] == "loss" for d in drops)
    assert system.telemetry.metrics.value("net_dropped_total", ("loss",)) == len(
        drops
    )


def test_reliable_transport_emits_retransmit_events_and_backoff():
    system, a = build(
        transport="reliable",
        loss_rate=0.5,
        reliable=ReliableConfig(rto=0.1, max_retries=8),
    )
    for i in range(10):
        a.inject("msg", ("a:1", f"m{i}"))
    system.run_for(30.0)
    retransmits = events_named(system.telemetry, "net.retransmit")
    assert retransmits
    for event in retransmits:
        assert event["attrs"]["attempt"] >= 1
    # Backoff is observed per transmission attempt (first sends too),
    # so its count dominates the retransmit event count.
    backoff = system.telemetry.metrics.snapshot(
        "net_retransmit_backoff_seconds"
    )
    attempts = sum(d.count for d in backoff.values())
    assert attempts >= len(retransmits) > 0
    assert ("a:1->b:2",) in backoff


def test_fault_and_phase_events():
    system, a = build()
    injector = FaultInjector(system)
    schedule = (
        FaultSchedule()
        .at(1.0, "partition", "a:1", "b:2")
        .at(2.0, "heal", "a:1", "b:2")
    )
    schedule.apply(injector, offset=0.0)
    system.run_for(5.0)

    phases = [e["attrs"]["phase"] for e in events_named(system.telemetry, "phase")]
    assert phases == [
        "fault_schedule_armed",
        "fault_window_begin",
        "fault_window_end",
    ]
    faults = events_named(system.telemetry, "fault")
    assert [f["attrs"]["kind"] for f in faults] == ["partition", "heal"]
    assert faults[0]["attrs"]["args"] == ["a:1", "b:2"]


def test_monitor_alarms_become_events():
    system, a = build()
    monitor = Monitor(
        "seen-watch",
        "m1 alarm@N(M) :- seen@N(M).",
        alarm_events=["alarm"],
    )
    handle = monitor.install(system.nodes.values())
    a.inject("msg", ("a:1", "m0"))
    system.run_for(5.0)
    assert handle.count("alarm") > 0
    alarms = events_named(system.telemetry, "monitor.alarm")
    assert len(alarms) == handle.count("alarm")
    assert alarms[0]["attrs"] == {
        "monitor": "seen-watch",
        "event": "alarm",
        "node": "b:2",
    }


def test_monitor_sink_is_plain_append_without_observability():
    system, a = build(observability=False)
    monitor = Monitor(
        "seen-watch", "m1 alarm@N(M) :- seen@N(M).", alarm_events=["alarm"]
    )
    handle = monitor.install(system.nodes.values())
    a.inject("msg", ("a:1", "m0"))
    system.run_for(5.0)
    assert handle.count("alarm") > 0
    assert system.telemetry.recorder.snapshot() == []


def test_tracer_composes_with_telemetry_hooks():
    system = System(seed=5, observability=True)
    node = system.add_node("a:1", tracing=True)
    assert isinstance(node.hooks, CompositeTraceHooks)
    node.install_source("r1 out@N(X) :- evt@N(X).")
    node.inject("evt", ("a:1", 1))
    system.run_for(1.0)
    # Both taps saw the firing: the tracer's ruleExec table and the
    # telemetry counters agree.
    assert len(node.query("ruleExec")) == 1
    assert system.telemetry.metrics.value(
        "strand_inputs_total", ("a:1", "r1")
    ) == 1
    assert spans_named(system.telemetry, "rule_exec")


def test_disabled_observability_leaves_hot_paths_untouched():
    system, a = build(observability=False)
    node = system.nodes["a:1"]
    assert node.obs is None and node.hooks is None
    assert system.network.obs is None
    a.inject("msg", ("a:1", "m0"))
    system.run_for(2.0)
    assert system.telemetry.recorder.snapshot() == []
    # The registry still answers reads (lazy callbacks over live state).
    assert system.telemetry.metrics.value(
        "net_counters_total", ("messages_sent",)
    ) > 0
