"""Batch-vs-per-tuple differential battery over the bundled programs.

Each test runs one workload twice on the same seed — per-tuple kernel
(``batch_size=1``) vs batched kernel — and asserts byte-identical
state: final tables, ordered alarm streams, work counters, exact
``busy_seconds`` bit patterns, and network accounting.  The fast tier
sweeps five seeds per workload; the slow sweep (CI nightly) covers
twenty-five on the heaviest workload.
"""

from __future__ import annotations

import pytest

from tests.batchexec.harness import (
    differential,
    run_aggtree,
    run_chord,
    run_gossip,
    run_monitors,
)

FAST_SEEDS = (0, 1, 2, 3, 4)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_chord_identical(seed):
    differential(run_chord, seed)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_chord_with_failure_identical(seed):
    differential(run_chord, seed, nodes=10, duration=120.0, kill_last=True)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_gossip_identical(seed):
    differential(run_gossip, seed)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_monitors_identical(seed):
    differential(run_monitors, seed)


@pytest.mark.parametrize("seed", (0, 1))
def test_aggtree_tree_mode_identical(seed):
    differential(run_aggtree, seed, mode="tree")


def test_aggtree_centralized_mode_identical():
    differential(run_aggtree, 0, mode="centralized")


def test_monitors_workload_is_not_vacuous():
    """The equivalence must be over a run that actually did something:
    rules fired, messages flowed, and at least one monitor alarmed
    (a killed node must trip the ring probe eventually)."""
    from tests.batchexec.harness import BATCHED

    state = run_monitors(0, BATCHED)
    assert state["net"]["delivered"] > 1000
    total_rules = sum(
        n["rule_executions"] for n in state["nodes"].values()
    )
    assert total_rules > 1000
    alarm_total = sum(
        len(stream)
        for per_monitor in state["alarms"].values()
        for stream in per_monitor.values()
    )
    assert alarm_total > 0


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25))
def test_monitors_sweep(seed):
    """The 25-seed nightly sweep on the monitor workload (the one with
    the richest cross-layer surface: ring maintenance + fan-in + kill
    + three monitors' alarm streams)."""
    differential(run_monitors, seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25))
def test_chord_sweep(seed):
    differential(run_chord, seed, nodes=16, duration=150.0)
