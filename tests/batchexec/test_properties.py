"""Hypothesis properties behind the batch kernel's equivalence claims.

Three families:

- *Chunking invariance*: splitting a tick's deltasets into chunks of
  any size (1, k, unbounded) never changes the fixpoint a program
  reaches — ``batch_size`` is a pure performance knob.
- *Wire-length exactness*: :func:`repro.net.marshal.wire_length`
  equals ``len(encode_message(...))`` for arbitrary marshalable
  tuples (the zero-copy send path's byte accounting can never drift).
- *Zero-copy payload fidelity*: :func:`repro.net.marshal.payload_for`
  produces exactly what decoding the real wire bytes would.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.system import System
from repro.net.marshal import (
    decode_message,
    encode_message,
    payload_for,
    wire_length,
)
from repro.overlog.program import Program
from repro.overlog.types import NodeID
from repro.runtime.tuples import Tuple
from repro.sim.batch import DEFAULT_TICK, ExecutionConfig

# ----------------------------------------------------------------------
# Chunking invariance

CASCADE_SOURCE = """
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
materialize(best, infinity, infinity, keys(1,2)).

p1 path@Y(Y, X, C) :- link@X(X, Y, C).
p2 path@Z(Z, X, C) :- path@Y(Y, X, C1), link@Y(Y, Z, C2),
    C := C1 + C2, C < 20.
b1 best@Y(Y, X, min<C>) :- path@Y(Y, X, C).
"""


def _fixpoint(batch_size, links):
    """Run the path cascade to quiescence; return all final tables."""
    execution = ExecutionConfig(batch_size=batch_size, tick=DEFAULT_TICK)
    system = System(seed=7, execution=execution)
    addrs = sorted({a for a, _, _ in links} | {b for _, b, _ in links})
    for addr in addrs:
        system.add_node(addr)
    program = Program.compile(CASCADE_SOURCE, name="paths")
    for addr in addrs:
        system.node(addr).install(program)
    for a, b, cost in links:
        system.node(a).inject("link", (a, b, cost))
    system.run_for(30.0)
    return {
        addr: {
            table.name: sorted(repr(t) for t in table.scan())
            for table in system.node(addr).store.tables()
        }
        for addr in addrs
    }


@st.composite
def link_sets(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    addrs = [f"h{i}:{i}" for i in range(n)]
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(addrs),
                st.sampled_from(addrs),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda e: (e[0], e[1]),
        )
    )
    return edges


@settings(max_examples=12, deadline=None)
@given(
    links=link_sets(),
    chunk=st.integers(min_value=2, max_value=9),
)
def test_chunking_never_changes_fixpoint(links, chunk):
    """A recursive join cascade reaches the same fixpoint whether
    deltasets fire per-tuple, in chunks of ``chunk``, or unbounded."""
    reference = _fixpoint(1, links)
    assert _fixpoint(chunk, links) == reference
    assert _fixpoint(None, links) == reference


# ----------------------------------------------------------------------
# Wire-length exactness and zero-copy payload fidelity

node_ids = st.builds(
    lambda bits, frac: NodeID(int(frac * (1 << bits)) % (1 << bits), bits),
    st.sampled_from((8, 32, 160)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=30),
    node_ids,
)

values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=10,
)

wire_tuples = st.builds(
    Tuple,
    st.text(min_size=1, max_size=20),
    st.lists(values, max_size=6).map(tuple),
)

addresses = st.text(max_size=16)
maybe_tid = st.one_of(st.none(), st.integers(min_value=0, max_value=10**9))


@settings(max_examples=400, deadline=None)
@given(tup=wire_tuples, src=addresses, tid=maybe_tid, mid=maybe_tid)
def test_wire_length_matches_encoder(tup, src, tid, mid):
    assert wire_length(tup, src, tid, mid=mid) == len(
        encode_message(tup, src, tid, mid=mid)
    )


def _nan_safe(value):
    """Replace NaN with a sentinel so payload dicts compare by value."""
    if isinstance(value, float) and value != value:
        return "<nan>"
    if isinstance(value, tuple):
        return tuple(_nan_safe(v) for v in value)
    return value


@settings(max_examples=400, deadline=None)
@given(tup=wire_tuples, src=addresses, tid=maybe_tid, mid=maybe_tid)
def test_payload_for_matches_wire_roundtrip(tup, src, tid, mid):
    via_wire = decode_message(encode_message(tup, src, tid, mid=mid))
    zero_copy = payload_for(tup, src, tid, mid=mid)
    carried = zero_copy.pop("tuple")
    assert _nan_safe(tuple(zero_copy.pop("values"))) == _nan_safe(
        tuple(via_wire.pop("values"))
    )
    assert zero_copy == via_wire
    # The ready-made Tuple the receiver adopts matches the values the
    # per-message decode path would have built its Tuple from.
    assert carried.name == tup.name
    assert _nan_safe(carried.values) == _nan_safe(
        tuple(decode_message(encode_message(tup, src, tid, mid=mid))["values"])
    )
