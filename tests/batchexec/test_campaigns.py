"""Campaign verdict fingerprints are execution-mode independent.

A :class:`~repro.faults.campaign.FaultCampaign` folds nearly every
subsystem into one canonical JSON verdict — randomized fault schedule,
reliable-transport counters, monitor alarm timeline with timestamps,
churn-mode restart outcomes, storm-mode overload ledgers.  If the
batched kernel perturbed *any* of it (an alarm 10 ms late, one extra
retransmission), the fingerprint flips.  These tests pin byte equality
between kernels per seed.
"""

from __future__ import annotations

import pytest

from tests.batchexec.harness import MODES, run_campaign_fingerprint


def _fingerprints(seed: int, **kwargs):
    return {
        label: run_campaign_fingerprint(seed, execution, **kwargs)
        for label, execution in MODES.items()
    }


@pytest.mark.parametrize("seed", (0, 1))
def test_fault_campaign_fingerprint_identical(seed):
    prints = _fingerprints(seed)
    assert prints["per-tuple"] == prints["batched"]


def test_churn_campaign_fingerprint_identical():
    prints = _fingerprints(3, churn=True)
    assert prints["per-tuple"] == prints["batched"]


@pytest.mark.slow
def test_storm_campaign_fingerprint_identical():
    # Storm campaigns force the overload controller on, which makes the
    # batched node take the per-tuple pump body verbatim — the ledger
    # identity (offered == admitted + shed + deferred) and queue-depth
    # peaks must still fingerprint identically.
    prints = _fingerprints(5, storm=True)
    assert prints["per-tuple"] == prints["batched"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25))
def test_campaign_fingerprint_sweep(seed):
    prints = _fingerprints(seed)
    assert prints["per-tuple"] == prints["batched"]
